"""Test package."""
