"""The microservices baseline: mesh, hosts, HTTP stubs, and parity."""

from __future__ import annotations

import pytest

from repro.baseline.service import BaselineApp, ServiceMesh, deploy_baseline
from repro.core.errors import RemoteApplicationError, Unavailable

from tests.conftest import Adder, Flaky, Greeter, KVStore


class TestServiceMesh:
    def test_register_and_resolve(self):
        mesh = ServiceMesh()
        mesh.register("svc", "tcp://1:1")
        assert mesh.resolve("svc") == "tcp://1:1"

    def test_round_robin(self):
        mesh = ServiceMesh()
        mesh.register("svc", "tcp://1:1")
        mesh.register("svc", "tcp://1:2")
        picks = {mesh.resolve("svc") for _ in range(10)}
        assert picks == {"tcp://1:1", "tcp://1:2"}

    def test_unknown_service_unavailable(self):
        with pytest.raises(Unavailable):
            ServiceMesh().resolve("ghost")

    def test_deregister(self):
        mesh = ServiceMesh()
        mesh.register("svc", "tcp://1:1")
        mesh.deregister("svc", "tcp://1:1")
        with pytest.raises(Unavailable):
            mesh.resolve("svc")


class TestBaselineApp:
    async def test_microservice_call(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry)
        assert await app.get(Adder).add(2, 2) == 4
        await app.shutdown()

    async def test_cross_service_dependency_via_http(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry)
        assert await app.get(Greeter).greet("Mia") == "Hello, Mia! (4)"
        await app.shutdown()

    async def test_one_host_per_component(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry)
        assert len(app.hosts) == 4
        assert len(app.mesh.services()) == 4
        await app.shutdown()

    async def test_errors_cross_http_with_type(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry)
        kv = app.get(KVStore)
        await kv.put("k", "v")  # routed annotation is ignored by baseline: fine
        from repro.core.errors import RPCError

        with pytest.raises((RemoteApplicationError, RPCError, Unavailable)):
            await app.get(Flaky).work(50)
        await app.shutdown()

    async def test_json_codec_flavor(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry, codec_name="json")
        assert await app.get(Adder).add_all([1, 2, 3]) == 6
        await app.shutdown()

    async def test_call_graph_records_http_calls(self, demo_registry):
        app = await deploy_baseline(registry=demo_registry)
        await app.get(Adder).add(1, 1)
        (edge,) = app.call_graph.edges()
        assert edge.remote_calls == 1
        assert edge.bytes_sent > 0
        await app.shutdown()


class TestParityWithWeaver:
    """The same business logic must produce identical results in both
    worlds — the measured differences are deployment-model only."""

    async def test_boutique_order_identical(self):
        import asyncio

        from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
        from repro.core.app import init

        address = Address("1 Main", "Springfield", "IL", "US", 62701)
        card = CreditCard("4432-8015-6152-0454", 672, 2030, 1)

        async def order_with(app):
            fe = app.get(Frontend)
            await fe.add_to_cart("parity-user", "OLJCESPC7Z", 2)
            order = await fe.checkout("parity-user", "EUR", address, "p@x.com", card)
            await app.shutdown()
            return [(oi.item.product_id, oi.item.quantity, oi.cost) for oi in order.items], order.shipping_cost

        weaver_app = await init(components=ALL_COMPONENTS)
        weaver_result = await order_with(weaver_app)

        baseline_app = await deploy_baseline(components=ALL_COMPONENTS)
        baseline_result = await order_with(baseline_app)

        assert weaver_result == baseline_result
