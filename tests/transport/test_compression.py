"""Wire compression (§5.1's transport optimization)."""

from __future__ import annotations

import asyncio
import zlib

import pytest

from repro.core.config import AppConfig
from repro.core.errors import TransportError
from repro.transport.client import ConnectionPool
from repro.transport.framing import COMPRESS_THRESHOLD, read_frame, write_frame
from repro.transport.server import RPCServer

from tests.transport.test_framing import loopback


async def roundtrip(payload: bytes, compress: bool) -> tuple[bytes, int]:
    """Send one frame; return (decoded payload, bytes on the wire)."""
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        await write_frame(cw, payload, compress=compress)
        out = await read_frame(sr)
        # Bytes actually on the wire: re-encode deterministically.
        wire = len(zlib.compress(payload, level=1)) if compress and len(
            payload
        ) >= COMPRESS_THRESHOLD and len(zlib.compress(payload, level=1)) < len(
            payload
        ) else len(payload)
        return out, wire + 4
    finally:
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()


class TestFraming:
    async def test_compressed_roundtrip(self):
        payload = b"the quick brown fox " * 200
        out, _ = await roundtrip(payload, compress=True)
        assert out == payload

    async def test_small_frames_not_compressed(self):
        # Below the threshold the flag bit stays clear: assert by reading
        # the raw frame word.
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            await write_frame(cw, b"tiny", compress=True)
            raw = await sr.readexactly(8)
            word = int.from_bytes(raw[:4], "big")
            assert word & 0x8000_0000 == 0
            assert raw[4:] == b"tiny"
        finally:
            cw.close(); sw.close(); server.close(); await server.wait_closed()

    async def test_incompressible_payload_sent_raw(self):
        import os

        payload = os.urandom(4096)  # random bytes: zlib cannot shrink
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            await write_frame(cw, payload, compress=True)
            raw_word = int.from_bytes(await sr.readexactly(4), "big")
            assert raw_word & 0x8000_0000 == 0  # fell back to raw
            assert await sr.readexactly(len(payload)) == payload
        finally:
            cw.close(); sw.close(); server.close(); await server.wait_closed()

    async def test_mixed_compressed_and_raw_frames(self):
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            big = b"z" * 10_000
            await write_frame(cw, big, compress=True)
            await write_frame(cw, b"small", compress=True)
            await write_frame(cw, big, compress=False)
            assert await read_frame(sr) == big
            assert await read_frame(sr) == b"small"
            assert await read_frame(sr) == big
        finally:
            cw.close(); sw.close(); server.close(); await server.wait_closed()

    async def test_corrupt_compressed_frame_rejected(self):
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            cw.write((0x8000_0000 | 5).to_bytes(4, "big") + b"junk!")
            await cw.drain()
            with pytest.raises(TransportError, match="corrupt"):
                await read_frame(sr)
        finally:
            cw.close(); sw.close(); server.close(); await server.wait_closed()


class TestEndToEnd:
    async def test_rpc_with_compression_enabled(self):
        async def handler(cid, mid, args, trace=(0, 0), deadline_ms=0):
            # args may be a zero-copy view into the request frame.
            return bytes(args) * 2

        server = RPCServer(handler, codec="compact", version="v1", compress=True)
        address = await server.start()
        pool = ConnectionPool(codec="compact", version="v1", compress=True)
        conn = await pool.get(address)
        payload = b"compressible " * 500
        assert await conn.call(1, 1, payload, timeout=5) == payload * 2
        await pool.close()
        await server.stop()

    async def test_compressing_client_plain_server(self):
        """Frames self-describe: mixed policies interoperate."""

        async def handler(cid, mid, args, trace=(0, 0), deadline_ms=0):
            return args

        server = RPCServer(handler, codec="compact", version="v1", compress=False)
        address = await server.start()
        pool = ConnectionPool(codec="compact", version="v1", compress=True)
        conn = await pool.get(address)
        payload = b"data " * 1000
        assert await conn.call(1, 1, payload, timeout=5) == payload
        await pool.close()
        await server.stop()

    async def test_boutique_deployment_with_compression(self, demo_registry):
        from repro.runtime.deployers.multi import deploy_multiprocess
        from tests.conftest import Adder

        app = await deploy_multiprocess(
            AppConfig(name="gz", compress_wire=True), registry=demo_registry
        )
        assert await app.get(Adder).add_all(list(range(2000))) == sum(range(2000))
        await app.shutdown()


def test_config_flag_parses():
    cfg = AppConfig.from_dict({"compress_wire": True})
    assert cfg.compress_wire is True
