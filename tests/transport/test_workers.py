"""Multi-core data plane: worker loops, accept strategies, lifecycle."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.transport.client import ConnectionPool
from repro.transport.server import RPCServer
from repro.transport.worker import make_loop, reuse_port_supported, uvloop_available


async def echo(component_id, method_index, args, trace=(0, 0), deadline_ms=0):
    return bytes(args)


def data_plane_threads() -> list[str]:
    return [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("rpc-worker", "rpc-acceptor"))
    ]


async def dial_n(address: str, n: int) -> list:
    """n independent connections (the pool caches one per loop+address,
    so spread tests need their own pools)."""
    pools = [ConnectionPool(codec="compact", version="v1") for _ in range(n)]
    conns = [await p.get(address) for p in pools]
    return pools, conns


class TestAcceptStrategies:
    @pytest.mark.skipif(not reuse_port_supported(), reason="no SO_REUSEPORT")
    async def test_reuseport_serves_across_workers(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=4)
        address = await server.start()
        try:
            assert server.accept_mode == "reuseport"
            pools, conns = await dial_n(address, 8)
            try:
                results = await asyncio.gather(
                    *[c.call(1, 1, b"m%d" % i, timeout=5) for i, c in enumerate(conns)]
                )
                assert results == [b"m%d" % i for i in range(8)]
                stats = server.worker_stats()
                assert sum(s["requests"] for s in stats) == 8
                assert sum(s["connections"] for s in stats) == 8
            finally:
                for p in pools:
                    await p.close()
        finally:
            await server.stop()

    async def test_acceptor_fallback_on_unix_socket(self, tmp_path):
        # Unix sockets have no SO_REUSEPORT spread: the acceptor thread
        # distributes, and least-loaded selection keeps it exactly even.
        server = RPCServer(
            echo, codec="compact", version="v1", workers=3,
            address=f"unix://{tmp_path}/w.sock",
        )
        address = await server.start()
        try:
            assert server.accept_mode == "acceptor"
            pools, conns = await dial_n(address, 6)
            try:
                results = await asyncio.gather(
                    *[c.call(1, 1, b"u%d" % i, timeout=5) for i, c in enumerate(conns)]
                )
                assert results == [b"u%d" % i for i in range(6)]
                accepted = sorted(s["connections"] for s in server.worker_stats())
                assert accepted == [2, 2, 2]
            finally:
                for p in pools:
                    await p.close()
        finally:
            await server.stop()

    async def test_acceptor_fallback_when_reuseport_disabled(self):
        server = RPCServer(
            echo, codec="compact", version="v1", workers=2, reuse_port=False
        )
        address = await server.start()
        try:
            assert server.accept_mode == "acceptor"
            pool = ConnectionPool(codec="compact", version="v1")
            try:
                conn = await pool.get(address)
                assert await conn.call(1, 1, b"f", timeout=5) == b"f"
            finally:
                await pool.close()
        finally:
            await server.stop()

    async def test_single_worker_stays_inline(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=1)
        await server.start()
        try:
            assert server.accept_mode == "inline"
            assert server.worker_stats() == []
            assert data_plane_threads() == []
        finally:
            await server.stop()


class TestLifecycle:
    async def test_stop_reaps_worker_threads(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=3)
        address = await server.start()
        assert len(data_plane_threads()) >= 3
        pool = ConnectionPool(codec="compact", version="v1")
        conn = await pool.get(address)
        assert await conn.call(1, 1, b"x", timeout=5) == b"x"
        await pool.close()
        await server.stop()
        for _ in range(100):
            if not data_plane_threads():
                break
            await asyncio.sleep(0.02)
        assert data_plane_threads() == []

    async def test_drain_closes_the_door_but_not_connections(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=2)
        address = await server.start()
        pool = ConnectionPool(codec="compact", version="v1")
        try:
            conn = await pool.get(address)
            await server.drain()
            # Existing connection still answers …
            assert await conn.call(1, 1, b"still", timeout=5) == b"still"
            # … but new dials are refused.
            late = ConnectionPool(codec="compact", version="v1", connect_timeout=0.5)
            with pytest.raises(Exception):
                await late.get(address)
            await late.close()
        finally:
            await pool.close()
            await server.stop()

    async def test_concurrent_calls_across_workers(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=2)
        address = await server.start()
        pools, conns = await dial_n(address, 4)
        try:
            results = await asyncio.gather(
                *[c.call(1, 1, b"n%d" % i, timeout=5) for _ in range(50) for i, c in enumerate(conns)]
            )
            assert len(results) == 200
            stats = server.worker_stats()
            assert sum(s["requests"] for s in stats) == 200
        finally:
            for p in pools:
                await p.close()
            await server.stop()


class TestLoopPolicy:
    def test_make_loop_off_is_stdlib(self):
        loop = make_loop("off")
        try:
            assert isinstance(loop, asyncio.AbstractEventLoop)
        finally:
            loop.close()

    def test_make_loop_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_loop("sometimes")

    @pytest.mark.skipif(uvloop_available(), reason="uvloop is installed")
    def test_make_loop_on_falls_back_with_warning(self, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.transport"):
            loop = make_loop("on")
        try:
            assert isinstance(loop, asyncio.AbstractEventLoop)
            assert any("uvloop" in r.message for r in caplog.records)
        finally:
            loop.close()

    @pytest.mark.skipif(not uvloop_available(), reason="uvloop not installed")
    def test_make_loop_auto_prefers_uvloop(self):
        import uvloop

        loop = make_loop("auto")
        try:
            assert isinstance(loop, uvloop.Loop)
        finally:
            loop.close()


class TestStats:
    async def test_worker_stats_shape(self):
        server = RPCServer(echo, codec="compact", version="v1", workers=2)
        await server.start()
        try:
            stats = server.worker_stats()
            assert [s["worker"] for s in stats] == [0, 1]
            for s in stats:
                assert set(s) == {
                    "worker", "connections", "requests",
                    "msgs_per_s", "queue_depth", "loop_lag_ms",
                }
        finally:
            await server.stop()
