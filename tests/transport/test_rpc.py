"""Dispatcher and RemoteInvoker over a real server."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.call_graph import CallGraph, ROOT
from repro.core.errors import DeadlineExceeded, RPCError, Unavailable
from repro.core.stub import LocalInvoker, make_stub
from repro.serde import COMPACT
from repro.transport.client import ConnectionPool
from repro.transport.rpc import Dispatcher, RemoteInvoker
from repro.transport.server import RPCServer

from tests.conftest import Adder, Greeter


class StaticResolver:
    def __init__(self, address):
        self.address = address
        self.failures = []

    async def resolve(self, reg, method, args, route_key=None):
        return self.address

    def report_failure(self, reg, address):
        self.failures.append((reg.name, address))


class ServedApp:
    """A build served over real RPC, plus a remote invoker pointed at it."""

    def __init__(self, build):
        self.build = build

    async def __aenter__(self):
        local = LocalInvoker(version=self.build.version, resolver=self)
        self._local = local
        self.dispatcher = Dispatcher(self.build, COMPACT, local, hosted=None)
        self.server = RPCServer(
            self.dispatcher.handle, codec="compact", version=self.build.version
        )
        address = await self.server.start()
        self.pool = ConnectionPool(codec="compact", version=self.build.version)
        self.resolver = StaticResolver(address)
        self.call_graph = CallGraph()
        self.remote = RemoteInvoker(
            codec=COMPACT,
            pool=self.pool,
            resolver=self.resolver,
            call_graph=self.call_graph,
            timeout_s=5.0,
        )
        return self

    def get_for(self, iface, caller):
        # Server-side nested calls stay local.
        return make_stub(self.build.by_iface(iface), self._local, caller)

    async def __aexit__(self, *exc):
        await self.pool.close()
        await self.server.stop()


async def test_remote_call_roundtrip(demo_build):
    async with ServedApp(demo_build) as served:
        stub = make_stub(demo_build.by_iface(Adder), served.remote, ROOT)
        assert await stub.add(19, 23) == 42


async def test_remote_call_with_containers(demo_build):
    async with ServedApp(demo_build) as served:
        stub = make_stub(demo_build.by_iface(Adder), served.remote, ROOT)
        assert await stub.add_all([1, 2, 3, 4]) == 10


async def test_remote_nested_dependency(demo_build):
    async with ServedApp(demo_build) as served:
        stub = make_stub(demo_build.by_iface(Greeter), served.remote, ROOT)
        assert await stub.greet("Zoe") == "Hello, Zoe! (4)"


async def test_call_graph_records_bytes(demo_build):
    async with ServedApp(demo_build) as served:
        stub = make_stub(demo_build.by_iface(Adder), served.remote, ROOT)
        await stub.add(1, 2)
        (edge,) = served.call_graph.edges()
        assert edge.bytes_sent > 0
        assert edge.bytes_received > 0
        assert edge.local_calls == 0


async def test_unknown_component_id_is_fatal(demo_build):
    async with ServedApp(demo_build) as served:
        with pytest.raises(RPCError):
            conn = await served.pool.get(served.resolver.address)
            await conn.call(250, 0, b"", timeout=2)


async def test_unknown_method_index_is_fatal(demo_build):
    async with ServedApp(demo_build) as served:
        conn = await served.pool.get(served.resolver.address)
        with pytest.raises(RPCError):
            await conn.call(0, 200, COMPACT.encode(
                demo_build.by_id(0).spec.methods[0].arg_schema, ()
            ) if False else b"", timeout=2)


async def test_unhosted_component_is_retryable(demo_build):
    async with ServedApp(demo_build) as served:
        served.dispatcher.set_hosted(set())  # hosts nothing now
        conn = await served.pool.get(served.resolver.address)
        reg = demo_build.by_iface(Adder)
        payload = COMPACT.encode(reg.spec.method("add").arg_schema, (1, 2))
        with pytest.raises(Unavailable):
            await conn.call(reg.component_id, reg.spec.method("add").index, payload, timeout=2)


class FlappingResolver(StaticResolver):
    """Returns a dead address first, then the live one."""

    def __init__(self, dead, live):
        super().__init__(live)
        self.sequence = [dead, live]
        self.calls = 0

    async def resolve(self, reg, method, args, route_key=None):
        address = self.sequence[min(self.calls, len(self.sequence) - 1)]
        self.calls += 1
        return address


async def test_retry_after_resolver_failure(demo_build):
    async with ServedApp(demo_build) as served:
        flapping = FlappingResolver("tcp://127.0.0.1:1", served.resolver.address)
        invoker = RemoteInvoker(
            codec=COMPACT,
            pool=ConnectionPool(codec="compact", version=demo_build.version, connect_timeout=0.3),
            resolver=flapping,
            timeout_s=5.0,
            max_retries=2,
        )
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        assert await stub.add(2, 2) == 4
        assert flapping.failures  # the dead address was reported


async def test_retries_exhausted_raises(demo_build):
    async with ServedApp(demo_build) as served:
        dead = StaticResolver("tcp://127.0.0.1:1")
        invoker = RemoteInvoker(
            codec=COMPACT,
            pool=ConnectionPool(codec="compact", version=demo_build.version, connect_timeout=0.2),
            resolver=dead,
            timeout_s=5.0,
            max_retries=1,
        )
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        with pytest.raises(Unavailable):
            await stub.add(1, 1)
        # Every attempt's outcome is reported at the failure site — the
        # original attempt plus one retry.
        assert len(dead.failures) == 2


async def test_deadline_across_retries(demo_build):
    async with ServedApp(demo_build) as served:
        dead = StaticResolver("tcp://127.0.0.1:1")
        invoker = RemoteInvoker(
            codec=COMPACT,
            pool=ConnectionPool(codec="compact", version=demo_build.version, connect_timeout=0.05),
            resolver=dead,
            timeout_s=0.08,
            max_retries=100,
        )
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        with pytest.raises((DeadlineExceeded, Unavailable)):
            await stub.add(1, 1)


async def test_rpcclient_is_deprecated_but_works(demo_build):
    """The old constructor-knob client still functions — with a warning."""
    import warnings

    from repro.transport.rpc import RPCClient

    async with ServedApp(demo_build) as served:
        with pytest.warns(DeprecationWarning, match="with_options"):
            client = RPCClient(
                codec=COMPACT,
                pool=served.pool,
                resolver=served.resolver,
                timeout_s=5.0,
            )
        stub = make_stub(demo_build.by_iface(Adder), client, ROOT)
        assert await stub.add(20, 22) == 42
