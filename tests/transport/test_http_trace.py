"""Trace context propagation over the HTTP baseline transport.

The modern runtime ships trace context inside its framed protocol for
free; the microservice baseline has to hand-roll it as an HTTP header
(``x-repro-trace``).  These tests cover the header round trip at the
transport layer and the end-to-end client/server span linkage through
the baseline deployment.
"""

from __future__ import annotations

import asyncio

from repro.baseline.service import deploy_baseline
from repro.transport.http_rpc import (
    HttpRpcClient,
    HttpRpcServer,
    _format_request,
    _parse_trace_header,
    incoming_trace,
)

from tests.conftest import Greeter


class TestHeaderParsing:
    def test_parse_round_trip(self):
        assert _parse_trace_header("12345-678") == (12345, 678)

    def test_parse_garbage_is_zero(self):
        for bad in ("", "abc", "12-", "-34", "1-2-3x", "nan-nan"):
            assert _parse_trace_header(bad) == (0, 0)

    def test_header_emitted_only_with_real_context(self):
        with_trace = _format_request("a:1", "C", "m", b"x", 0, trace=(77, 88))
        assert b"x-repro-trace: 77-88\r\n" in with_trace
        for trace in (None, (0, 0)):
            assert b"x-repro-trace" not in _format_request(
                "a:1", "C", "m", b"x", 0, trace=trace
            )

    def test_incoming_trace_defaults_to_zero(self):
        assert incoming_trace() == (0, 0)


class TestWireRoundTrip:
    async def test_server_sees_client_context(self):
        seen = []

        async def handler(component: str, method: str, body: bytes) -> bytes:
            seen.append(incoming_trace())
            return b"ok"

        server = HttpRpcServer(handler)
        address = await server.start()
        client = HttpRpcClient()
        try:
            await client.call(address, "C", "m", b"", timeout=2, trace=(42, 7))
            await client.call(address, "C", "m", b"", timeout=2)  # no context
            assert seen == [(42, 7), (0, 0)]
        finally:
            await client.close()
            await server.stop()

    async def test_context_is_per_request_not_sticky(self):
        """A traced request must not leak its context into the next
        request on the same kept-alive connection."""
        seen = []

        async def handler(component: str, method: str, body: bytes) -> bytes:
            seen.append(incoming_trace())
            return b"ok"

        server = HttpRpcServer(handler)
        address = await server.start()
        client = HttpRpcClient()
        try:
            await client.call(address, "C", "m", b"", timeout=2, trace=(1, 2))
            await client.call(address, "C", "m", b"", timeout=2)
            await client.call(address, "C", "m", b"", timeout=2, trace=(3, 4))
            assert seen == [(1, 2), (0, 0), (3, 4)]
        finally:
            await client.close()
            await server.stop()


class TestBaselineLinkage:
    async def test_client_and_server_spans_link_end_to_end(self, demo_registry):
        """driver -> http Greeter.greet -> serve Greeter.greet, joined by
        the header; the nested Adder hop stays in the same trace."""
        app = await deploy_baseline(registry=demo_registry)
        try:
            assert await app.get(Greeter).greet("bob") == "Hello, bob! (4)"

            spans = app.tracer.spans()
            clients = [s for s in spans if s.name == "http Greeter.greet"]
            servers = [s for s in spans if s.name == "serve Greeter.greet"]
            assert clients and servers
            client, server = clients[0], servers[0]
            assert server.trace_id == client.trace_id
            assert server.parent_id == client.span_id

            # The Greeter host's own outbound call to Adder continues the
            # same trace across a second HTTP hop.
            names_in_trace = {
                s.name for s in spans if s.trace_id == client.trace_id
            }
            assert "http Adder.add" in names_in_trace
            assert "serve Adder.add" in names_in_trace
        finally:
            await app.shutdown()

    async def test_untraced_client_still_served(self, demo_registry):
        """A host with a tracer must tolerate header-less callers."""
        app = await deploy_baseline(registry=demo_registry)
        try:
            app._client._tracer = None  # simulate a legacy caller
            assert await app.get(Greeter).greet("amy") == "Hello, amy! (4)"
            # Server spans exist but start fresh traces (no remote parent).
            serves = [
                s for s in app.tracer.spans() if s.name == "serve Greeter.greet"
            ]
            assert serves and serves[0].parent_id is None
        finally:
            await app.shutdown()
