"""Server-side admission control: bounded concurrency, bounded queue, shed.

Unit tests drive :class:`AdmissionController` directly; the end-to-end
tests deploy a slow component with ``max_inflight`` set and verify that
overload is shed with a retryable, provably-unexecuted
:class:`ResourceExhausted` while admitted requests still complete.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.codegen.compiler import idempotent
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import ResourceExhausted
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.transport.server import AdmissionController


class TestAdmissionController:
    async def test_disabled_by_default(self):
        admission = AdmissionController()
        assert not admission.enabled
        async with admission:
            assert admission.inflight == 0  # limiter is a no-op

    async def test_admits_up_to_max_inflight(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        async with admission:
            assert admission.inflight == 1
            async with admission:
                assert admission.inflight == 2
        assert admission.inflight == 0

    async def test_sheds_beyond_capacity_and_queue(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        release = asyncio.Event()

        async def occupant():
            async with admission:
                await release.wait()

        task = asyncio.ensure_future(occupant())
        await asyncio.sleep(0.01)
        with pytest.raises(ResourceExhausted) as info:
            async with admission:
                pass
        assert info.value.retryable
        assert not info.value.executed  # shed before any user code ran
        assert admission.shed_count == 1
        release.set()
        await task

    async def test_queued_request_gets_the_slot(self):
        admission = AdmissionController(max_inflight=1, max_queue=4)
        release = asyncio.Event()
        order: list[str] = []

        async def occupant():
            async with admission:
                order.append("first")
                await release.wait()

        async def waiter():
            async with admission:
                order.append("second")

        t1 = asyncio.ensure_future(occupant())
        await asyncio.sleep(0.01)
        t2 = asyncio.ensure_future(waiter())
        await asyncio.sleep(0.01)
        assert admission.queue_depth == 1
        release.set()
        await asyncio.gather(t1, t2)
        assert order == ["first", "second"]
        assert admission.inflight == 0

    async def test_cancelled_waiter_leaves_no_leak(self):
        admission = AdmissionController(max_inflight=1, max_queue=4)
        release = asyncio.Event()

        async def occupant():
            async with admission:
                await release.wait()

        t1 = asyncio.ensure_future(occupant())
        await asyncio.sleep(0.01)

        async def waiter():
            async with admission:
                pass

        t2 = asyncio.ensure_future(waiter())
        await asyncio.sleep(0.01)
        t2.cancel()
        with pytest.raises(asyncio.CancelledError):
            await t2
        release.set()
        await t1
        assert admission.inflight == 0
        assert admission.queue_depth == 0


# --------------------------------------------------------------------------
# End to end: a proclet with max_inflight sheds overload but stays up.
# --------------------------------------------------------------------------


class Busy(Component):
    @idempotent
    async def grind(self, seconds: float) -> str: ...


class BusyImpl:
    async def grind(self, seconds: float) -> str:
        await asyncio.sleep(seconds)
        return "done"


def busy_registry() -> Registry:
    registry = Registry()
    registry.register(Busy, BusyImpl)
    return registry


async def test_overload_is_shed_not_queued_forever():
    config = AppConfig(name="shed", max_inflight=1, max_queue_depth=0)
    app = await deploy_multiprocess(config, registry=busy_registry(), mode="inproc")
    try:
        busy = app.get(Busy).with_options(retries=0)
        results = await asyncio.gather(
            *[busy.grind(0.2) for _ in range(4)], return_exceptions=True
        )
        succeeded = [r for r in results if r == "done"]
        shed = [r for r in results if isinstance(r, ResourceExhausted)]
        assert len(succeeded) >= 1  # the admitted request finished
        assert len(shed) >= 1  # overload was rejected at the door
        assert len(succeeded) + len(shed) == 4
        for exc in shed:
            assert exc.retryable
            assert not exc.executed
    finally:
        await app.shutdown()


async def test_queue_absorbs_bursts_within_limit():
    config = AppConfig(name="shed", max_inflight=1, max_queue_depth=8)
    app = await deploy_multiprocess(config, registry=busy_registry(), mode="inproc")
    try:
        busy = app.get(Busy).with_options(retries=0)
        results = await asyncio.gather(*[busy.grind(0.02) for _ in range(4)])
        assert results == ["done"] * 4  # burst fits in the queue: no sheds
    finally:
        await app.shutdown()


async def test_shed_requests_are_retryable_elsewhere():
    """With retries enabled, a shed call succeeds on a later attempt once
    the replica drains — the shed is absorbed, the caller never sees it."""
    config = AppConfig(name="shed", max_inflight=1, max_queue_depth=0)
    app = await deploy_multiprocess(config, registry=busy_registry(), mode="inproc")
    try:
        busy = app.get(Busy).with_options(retries=8, deadline_s=10.0)
        results = await asyncio.gather(
            *[busy.grind(0.05) for _ in range(3)], return_exceptions=True
        )
        assert results == ["done"] * 3
    finally:
        await app.shutdown()
