"""Test package."""
