"""Streaming RPC edge cases: chunk boundaries at MAX_FRAME, interleaved
streams on one connection, mid-stream cancellation, and deadlines that
expire between chunks."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import DeadlineExceeded
from repro.transport import framing
from repro.transport import message as msg
from repro.transport.client import ConnectionPool
from repro.transport.connection import Connection, client_handshake
from repro.transport.framing import HEADER
from repro.transport.server import RPCServer

from tests.transport.test_framing import loopback

# Small knobs so the tests exercise many chunks without megabyte payloads.
THRESHOLD = 16 * 1024
CHUNK = 4 * 1024
WINDOW = 16 * 1024


async def echo(component_id, method_index, args, trace=(0, 0), deadline_ms=0):
    return bytes(args)


class StreamRig:
    """Echo server + pool, both configured with tiny streaming knobs."""

    def __init__(self, **server_kw):
        self.server_kw = server_kw

    async def __aenter__(self):
        self.server = RPCServer(
            echo,
            codec="compact",
            version="v1",
            stream_threshold=THRESHOLD,
            stream_chunk=CHUNK,
            **self.server_kw,
        )
        self.address = await self.server.start()
        self.pool = ConnectionPool(
            codec="compact",
            version="v1",
            stream_threshold=THRESHOLD,
            stream_chunk=CHUNK,
        )
        return self

    async def __aexit__(self, *exc):
        await self.pool.close()
        await self.server.stop()


def pattern(n: int) -> bytes:
    """A non-repeating payload: reassembly-order bugs can't cancel out."""
    return bytes((i * 7 + (i >> 8)) & 0xFF for i in range(n))


class TestStreamingRoundtrip:
    async def test_large_payload_streams_both_ways(self):
        async with StreamRig() as rig:
            conn = await rig.pool.get(rig.address)
            payload = pattern(5 * WINDOW + 123)  # several credit refills
            result = await conn.call(1, 1, payload, timeout=10)
            assert result == payload
            # Registries must be empty again: streams are not leaked.
            assert not conn._up_streams and not conn._resp_streams

    async def test_payload_larger_than_max_frame(self, monkeypatch):
        # A stream may carry more than one frame could: shrink MAX_FRAME
        # below the payload and the chunked upload must still round-trip.
        monkeypatch.setattr(framing, "MAX_FRAME", 64 * 1024)
        async with StreamRig() as rig:
            conn = await rig.pool.get(rig.address)
            payload = pattern(256 * 1024)
            assert len(payload) > framing.MAX_FRAME
            assert await conn.call(1, 1, payload, timeout=10) == payload

    async def test_chunk_boundary_exactly_at_max_frame(self, monkeypatch):
        # Size chunks so each STREAM_CHUNK frame body lands exactly on
        # MAX_FRAME (prefix is kind + varint req_id + flags; req_ids in
        # this test are small, so the varint is one byte).
        prefix = bytearray()
        msg.encode_stream_chunk_prefix(prefix, 1, 0)
        monkeypatch.setattr(framing, "MAX_FRAME", 4096)
        chunk = 4096 - len(prefix)
        server = RPCServer(
            echo, codec="compact", version="v1",
            stream_threshold=chunk, stream_chunk=chunk,
        )
        address = await server.start()
        pool = ConnectionPool(
            codec="compact", version="v1",
            stream_threshold=chunk, stream_chunk=chunk,
        )
        try:
            conn = await pool.get(address)
            payload = pattern(3 * chunk)  # exact-boundary END chunk too
            assert await conn.call(1, 1, payload, timeout=10) == payload
            payload = pattern(3 * chunk + 17)  # short final chunk
            assert await conn.call(1, 1, payload, timeout=10) == payload
        finally:
            await pool.close()
            await server.stop()

    async def test_small_calls_still_inline(self):
        async with StreamRig() as rig:
            conn = await rig.pool.get(rig.address)
            assert await conn.call(1, 1, b"tiny", timeout=5) == b"tiny"
            assert not conn._up_streams  # below threshold: no stream


class TestInterleaving:
    async def test_interleaved_streams_on_one_connection(self):
        async with StreamRig() as rig:
            conn = await rig.pool.get(rig.address)
            bigs = [pattern(3 * WINDOW + i) for i in range(4)]
            smalls = [b"s%d" % i for i in range(50)]
            results = await asyncio.gather(
                *[conn.call(1, 1, b, timeout=15) for b in bigs],
                *[conn.call(1, 1, s, timeout=15) for s in smalls],
            )
            assert results[: len(bigs)] == bigs
            assert results[len(bigs):] == smalls

    async def test_two_connections_stream_concurrently(self):
        async with StreamRig() as rig:
            conn = await rig.pool.get(rig.address)
            other_pool = ConnectionPool(
                codec="compact", version="v1",
                stream_threshold=THRESHOLD, stream_chunk=CHUNK,
            )
            try:
                other = await other_pool.get(rig.address)
                a, b = pattern(2 * WINDOW), pattern(2 * WINDOW + 1)
                ra, rb = await asyncio.gather(
                    conn.call(1, 1, a, timeout=15),
                    other.call(1, 1, b, timeout=15),
                )
                assert (ra, rb) == (a, b)
            finally:
                await other_pool.close()


async def raw_pair(handler=None):
    """A hand-built client/server Connection pair over a loopback socket,
    with tiny stream knobs — for tests that drive the protocol directly."""
    server_holder = {}

    async def on_accept(reader, writer):
        from repro.transport.connection import server_handshake

        await server_handshake(reader, writer, codec="compact", version="v1")
        conn = Connection(
            reader, writer, handler=handler, name="server",
            stream_threshold=THRESHOLD, stream_chunk=CHUNK, stream_window=WINDOW,
        )
        conn.start()
        server_holder["conn"] = conn

    server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    reader, writer = await asyncio.open_connection(host, port)
    await client_handshake(reader, writer, codec="compact", version="v1")
    client = Connection(
        reader, writer, name="client",
        stream_threshold=THRESHOLD, stream_chunk=CHUNK, stream_window=WINDOW,
    )
    client.start()
    for _ in range(100):
        if "conn" in server_holder:
            break
        await asyncio.sleep(0.01)
    return server, client, server_holder["conn"]


class TestCancellation:
    async def test_timeout_mid_upload_cancels_and_releases(self):
        # Freeze the receiver's credit grants so the upload pump parks on
        # credit, then let the client timeout fire mid-stream.  The pump
        # must wake, observe the dead call, cancel toward the receiver,
        # and leave no stream state behind on either side.
        server, client, server_conn = await raw_pair(handler=echo)
        try:
            server_conn._grant_credit = lambda st, consumed: None
            payload = pattern(4 * WINDOW)  # needs credit beyond the window
            with pytest.raises(DeadlineExceeded):
                await client.call(1, 1, payload, timeout=0.3)
            assert not client._up_streams  # pump exited, stream reaped
            for _ in range(100):
                if not server_conn._in_streams:
                    break
                await asyncio.sleep(0.01)
            assert not server_conn._in_streams  # partial upload discarded
        finally:
            await client.close()
            await server_conn.close()
            server.close()
            await server.wait_closed()

    async def test_peer_cancel_wakes_parked_pump(self):
        # A STREAM_CANCEL(to-sender) must release a pump waiting on credit
        # immediately — cancellation releases credits, not just data flow.
        server, client, server_conn = await raw_pair(handler=echo)
        try:
            server_conn._grant_credit = lambda st, consumed: None
            payload = pattern(4 * WINDOW)
            task = asyncio.ensure_future(client.call(1, 1, payload, timeout=30))
            for _ in range(200):  # wait until the pump is credit-parked
                out = next(iter(client._up_streams.values()), None)
                if out is not None and out.credit <= 0:
                    break
                await asyncio.sleep(0.01)
            else:
                pytest.fail("upload pump never parked on credit")
            req_id = next(iter(client._up_streams))
            server_conn._post(msg.StreamCancel(req_id, msg.STREAM_TO_SENDER))
            for _ in range(200):
                if not client._up_streams:
                    break
                await asyncio.sleep(0.01)
            assert not client._up_streams  # pump released without credit
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
        finally:
            await client.close()
            await server_conn.close()
            server.close()
            await server.wait_closed()


class TestDeadlines:
    async def test_deadline_expiry_between_chunks(self):
        # Hand-feed a stream whose deadline lapses between two chunks: the
        # server must fail the call without executing it and tell the
        # sender to stop.
        server, client, server_conn = await raw_pair(handler=echo)
        try:
            future = asyncio.get_running_loop().create_future()
            client._pending[7] = future
            client._post(msg.StreamOpen(7, 1, 1, 0, 0, 40, 2 * CHUNK))
            client._post(msg.StreamChunk(7, 0, pattern(CHUNK)))
            await asyncio.sleep(0.15)  # let the 40ms budget lapse
            client._post(msg.StreamChunk(7, msg.STREAM_END, pattern(CHUNK)))
            with pytest.raises(DeadlineExceeded):
                await asyncio.wait_for(future, 5)
            assert not server_conn._in_streams  # reaped, not executed
        finally:
            await client.close()
            await server_conn.close()
            server.close()
            await server.wait_closed()

    async def test_deadline_inside_budget_executes(self):
        # Control case: same shape, budget not exceeded.
        server, client, server_conn = await raw_pair(handler=echo)
        try:
            payload = pattern(2 * CHUNK)
            result = await client.call(1, 1, b"ok-sized", timeout=5)
            assert result == b"ok-sized"
            big = pattern(2 * THRESHOLD)
            assert await client.call(1, 1, big, timeout=5, deadline_ms=5000) == big
        finally:
            await client.close()
            await server_conn.close()
            server.close()
            await server.wait_closed()
