"""Data-plane edge cases: framing limits, read-side parsing, coalescing,
and connection-pool pruning."""

from __future__ import annotations

import asyncio
import zlib

import pytest

from repro.core.errors import TransportError, Unavailable
from repro.transport import framing
from repro.transport.client import ConnectionPool
from repro.transport.connection import SEND_HIGH_WATER, Connection
from repro.transport.framing import (
    _COMPRESSED_BIT,
    HEADER,
    MAX_FRAME,
    FrameParser,
    frame_chunks,
    new_frame,
    read_frame,
)
from repro.transport.server import RPCServer

from tests.transport.test_framing import loopback


def encode_frame(payload: bytes, *, compress: bool = False) -> bytes:
    return b"".join(
        bytes(c) for c in frame_chunks(new_frame(), payload, compress=compress)
    )


class TestFramingLimits:
    async def test_frame_at_exactly_max_frame(self, monkeypatch):
        # Shrink the limit so the boundary is testable without a 64 MiB
        # allocation; both encoder and parser read the module global.
        monkeypatch.setattr(framing, "MAX_FRAME", 1024)
        payload = b"x" * 1024
        wire = encode_frame(payload)
        assert FrameParser().feed(wire) == [payload]

    async def test_frame_one_past_max_frame_rejected_by_sender(self, monkeypatch):
        monkeypatch.setattr(framing, "MAX_FRAME", 1024)
        with pytest.raises(TransportError, match="exceeds MAX_FRAME"):
            frame_chunks(new_frame(), b"x" * 1025)

    async def test_announced_oversize_rejected_by_parser(self, monkeypatch):
        monkeypatch.setattr(framing, "MAX_FRAME", 1024)
        wire = (2048).to_bytes(4, "big") + b"x" * 2048
        with pytest.raises(TransportError, match="MAX_FRAME"):
            FrameParser().feed(wire)

    def test_incompressible_payload_keeps_flag_clear(self):
        import os

        payload = os.urandom(4096)  # random bytes: zlib cannot shrink these
        wire = encode_frame(payload, compress=True)
        word = int.from_bytes(wire[:HEADER], "big")
        assert word & _COMPRESSED_BIT == 0
        assert word == len(payload)
        assert wire[HEADER:] == payload

    def test_compressed_bit_roundtrip(self):
        payload = b"the quick brown fox " * 200
        wire = encode_frame(payload, compress=True)
        word = int.from_bytes(wire[:HEADER], "big")
        assert word & _COMPRESSED_BIT
        assert (word & ~_COMPRESSED_BIT) == len(wire) - HEADER < len(payload)
        assert zlib.decompress(wire[HEADER:]) == payload
        assert FrameParser().feed(wire) == [payload]

    async def test_truncated_mid_length_word(self):
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            cw.write(b"\x00\x00")  # half a length word, then EOF
            await cw.drain()
            cw.close()
            with pytest.raises(TransportError, match="mid-frame"):
                await read_frame(sr)
        finally:
            sw.close()
            server.close()
            await server.wait_closed()

    async def test_truncated_mid_payload(self):
        server, (cr, cw), (sr, sw) = await loopback()
        try:
            cw.write((64).to_bytes(4, "big") + b"short")
            await cw.drain()
            cw.close()
            with pytest.raises(TransportError, match="mid-frame"):
                await read_frame(sr)
        finally:
            sw.close()
            server.close()
            await server.wait_closed()


class TestFrameParser:
    def test_single_byte_feeds(self):
        wire = encode_frame(b"hello") + encode_frame(b"", compress=False)
        parser = FrameParser()
        frames = []
        for i in range(len(wire)):
            frames.extend(parser.feed(wire[i : i + 1]))
        assert frames == [b"hello", b""]
        assert not parser.mid_frame

    def test_many_frames_in_one_chunk(self):
        payloads = [str(i).encode() for i in range(50)]
        wire = b"".join(encode_frame(p) for p in payloads)
        assert FrameParser().feed(wire) == payloads

    def test_split_across_chunks_mid_payload(self):
        wire = encode_frame(b"A" * 100)
        parser = FrameParser()
        assert parser.feed(wire[:50]) == []
        assert parser.mid_frame
        assert parser.feed(wire[50:]) == [b"A" * 100]
        assert not parser.mid_frame

    def test_compressed_frame_via_parser(self):
        payload = b"z" * 10_000
        wire = encode_frame(payload, compress=True)
        parser = FrameParser()
        out = parser.feed(wire[:7]) + parser.feed(wire[7:])
        assert out == [payload]

    def test_corrupt_compressed_frame(self):
        wire = (_COMPRESSED_BIT | 5).to_bytes(4, "big") + b"junk!"
        with pytest.raises(TransportError, match="corrupt"):
            FrameParser().feed(wire)


async def echo(component_id, method_index, args, trace=(0, 0), deadline_ms=0):
    return bytes(args)


class Rig:
    def __init__(self, coalesce: bool = True, **server_kw):
        self.coalesce = coalesce
        self.server_kw = server_kw

    async def __aenter__(self):
        self.server = RPCServer(
            echo, codec="compact", version="v1",
            coalesce=self.coalesce, **self.server_kw,
        )
        self.address = await self.server.start()
        self.pool = ConnectionPool(
            codec="compact", version="v1", coalesce=self.coalesce
        )
        return self

    async def __aexit__(self, *exc):
        await self.pool.close()
        await self.server.stop()


class TestCoalescing:
    async def test_concurrent_calls_preserve_pairing(self):
        async with Rig() as rig:
            conn = await rig.pool.get(rig.address)
            results = await asyncio.gather(
                *[conn.call(1, 1, b"m%d" % i, timeout=5) for i in range(300)]
            )
            assert results == [b"m%d" % i for i in range(300)]

    async def test_batches_form_under_load(self):
        async with Rig() as rig:
            conn = await rig.pool.get(rig.address)
            await asyncio.gather(
                *[conn.call(1, 1, b"x", timeout=5) for _ in range(400)]
            )
            assert conn.frames_sent == 400
            # If every frame had flushed alone there would be 400 rounds;
            # coalescing must have merged at least some.
            assert conn.flushes < conn.frames_sent

    async def test_legacy_mode_still_works(self):
        async with Rig(coalesce=False) as rig:
            conn = await rig.pool.get(rig.address)
            results = await asyncio.gather(
                *[conn.call(1, 1, b"y%d" % i, timeout=5) for i in range(100)]
            )
            assert results == [b"y%d" % i for i in range(100)]
            assert conn.flushes == 0  # the flusher never ran

    async def test_backpressure_bounds_the_outbox(self):
        async with Rig() as rig:
            conn = await rig.pool.get(rig.address)
            big = b"B" * (64 * 1024)
            await asyncio.gather(
                *[conn.call(1, 1, big, timeout=30) for _ in range(64)]
            )
            # Senders wait at the high-water mark, so the outbox can never
            # have grown past one frame beyond it.
            assert conn._outbox_bytes <= SEND_HIGH_WATER + len(big) + HEADER + 16

    async def test_close_wakes_backpressured_sender(self):
        server, (cr, cw), (sr, sw) = await loopback()
        conn = Connection(cr, cw, name="t")
        conn.start()
        try:
            conn._outbox_bytes = SEND_HIGH_WATER  # simulate a full outbox
            send = asyncio.ensure_future(conn._send(new_frame(), b"x"))
            await asyncio.sleep(0.01)
            assert not send.done()
            await conn.close()
            with pytest.raises(TransportError, match="closed"):
                await send
        finally:
            await conn.close()
            sw.close()
            server.close()
            await server.wait_closed()

    async def test_single_frame_flushes_immediately(self):
        async with Rig() as rig:
            conn = await rig.pool.get(rig.address)
            assert await asyncio.wait_for(
                conn.call(1, 1, b"lone", timeout=5), 1.0
            ) == b"lone"


class TestPoolPruning:
    async def test_dead_connection_pruned_and_redialed(self):
        async with Rig() as rig:
            first = await rig.pool.get(rig.address)
            await first.close()
            second = await rig.pool.get(rig.address)
            assert second is not first
            assert not second.closed
            assert await second.call(1, 1, b"ok", timeout=5) == b"ok"
            assert rig.pool.tracked_addresses == 1

    async def test_failed_dial_leaves_no_tracking(self):
        pool = ConnectionPool(codec="compact", version="v1", connect_timeout=0.5)
        with pytest.raises(Unavailable):
            await pool.get("tcp://127.0.0.1:1")  # nothing listens there
        assert pool.tracked_addresses == 0
        await pool.close()

    async def test_drop_prunes_both_maps(self):
        async with Rig() as rig:
            await rig.pool.get(rig.address)
            assert rig.pool.tracked_addresses == 1
            rig.pool.drop(rig.address)
            await asyncio.sleep(0)  # let the close task run
            assert rig.pool.tracked_addresses == 0

    async def test_churn_does_not_accumulate_state(self):
        """The long-lived-proclet leak: talk to many ephemeral peers."""
        pool = ConnectionPool(codec="compact", version="v1")
        try:
            for _ in range(5):
                server = RPCServer(echo, codec="compact", version="v1")
                address = await server.start()
                conn = await pool.get(address)
                assert await conn.call(1, 1, b"hi", timeout=5) == b"hi"
                pool.drop(address)
                await server.stop()
                await asyncio.sleep(0)
            assert pool.tracked_addresses == 0
            assert pool.open_count == 0
        finally:
            await pool.close()
