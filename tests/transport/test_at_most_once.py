"""The idempotency gate: ambiguous failures never re-execute unsafe methods.

An RPC failure is *ambiguous* when the request may already have executed
server-side (connection died mid-call, timeout in flight).  Retrying such
a failure re-executes the method; for a payment charge that is the classic
double-charge bug.  The invoker therefore only retries:

* failures that provably happened before execution (``executed=False`` —
  dial errors, admission sheds, expired-at-the-door), for any method; or
* anything retryable, if the method is declared ``@idempotent``.
"""

from __future__ import annotations

import pytest

from repro.codegen.compiler import idempotent
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import Unavailable
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.faults import FaultPlan, FaultRule


class Ledger(Component):
    async def debit(self, amount: int) -> int: ...

    @idempotent
    async def balance(self) -> int: ...


class LedgerImpl:
    def __init__(self) -> None:
        self.debits: list[int] = []

    async def debit(self, amount: int) -> int:
        self.debits.append(amount)
        return sum(self.debits)

    async def balance(self) -> int:
        return sum(self.debits)


def ledger_registry() -> Registry:
    registry = Registry()
    registry.register(Ledger, LedgerImpl)
    return registry


def ambiguous_failure() -> Exception:
    # executed=True: "the connection died after the request was sent; the
    # server may or may not have run it" — the ambiguous case.
    return Unavailable("connection lost mid-call", executed=True)


def ledger_instance(app):
    for envelope in app.envelopes.values():
        proclet = getattr(envelope, "proclet", None)
        if proclet is None:
            continue
        for instance in proclet._local.instances().values():
            if isinstance(instance, LedgerImpl):
                return instance
    raise AssertionError("no LedgerImpl instance found")


async def test_ambiguous_failure_not_retried_for_non_idempotent():
    plan = FaultPlan(
        [FaultRule(component="Ledger", method="debit", failure_rate=1.0,
                   max_failures=1, error=ambiguous_failure)]
    )
    app = await deploy_multiprocess(
        AppConfig(name="ledger"), registry=ledger_registry(), mode="inproc"
    )
    app._driver._remote.fault_plan = plan
    try:
        ledger = app.get(Ledger)
        # One injected ambiguous failure; a retry would succeed.  The
        # invoker must NOT take it: the error surfaces instead.
        with pytest.raises(Unavailable):
            await ledger.debit(100)
        assert plan.total_injected == 1
        assert ledger_instance(app).debits == []  # never executed twice — or at all
    finally:
        await app.shutdown()


async def test_ambiguous_failure_retried_for_idempotent():
    plan = FaultPlan(
        [FaultRule(component="Ledger", method="balance", failure_rate=1.0,
                   max_failures=1, error=ambiguous_failure)]
    )
    app = await deploy_multiprocess(
        AppConfig(name="ledger"), registry=ledger_registry(), mode="inproc"
    )
    app._driver._remote.fault_plan = plan
    try:
        ledger = app.get(Ledger)
        assert await ledger.balance() == 0  # retried through the fault
        assert plan.total_injected == 1
    finally:
        await app.shutdown()


async def test_pre_execution_failure_retried_for_any_method():
    # executed=False faults model a replica found dead at dial time: the
    # request never reached user code, so even debit may retry safely.
    plan = FaultPlan(
        [FaultRule(component="Ledger", method="debit", failure_rate=1.0,
                   max_failures=1)]  # default error: Unavailable(executed=False)
    )
    app = await deploy_multiprocess(
        AppConfig(name="ledger"), registry=ledger_registry(), mode="inproc"
    )
    app._driver._remote.fault_plan = plan
    try:
        ledger = app.get(Ledger)
        assert await ledger.debit(100) == 100
        assert plan.total_injected == 1
        assert ledger_instance(app).debits == [100]  # exactly once
    finally:
        await app.shutdown()
