"""End-to-end deadline propagation: budgets on the wire, across hops.

The invariant under test: a chain of calls can never outlive the root
caller's deadline, no matter how deep it goes or which transport carries
it — the remaining budget ships with every request (``deadline_ms`` on
the framed transport, ``X-Repro-Deadline`` over HTTP), shrinks at every
hop, and is enforced both client-side and at each server's door.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.codegen.compiler import idempotent
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import DeadlineExceeded, RPCError
from repro.core.options import remaining_budget_s
from repro.core.registry import Registry
from repro.core.stub import LocalInvoker
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.serde import COMPACT
from repro.transport.rpc import Dispatcher


# --------------------------------------------------------------------------
# A three-hop chain: Front -> Middle -> Leaf, where Leaf is slow.
# --------------------------------------------------------------------------


class Leaf(Component):
    @idempotent
    async def work(self, delay_s: float) -> str: ...

    @idempotent
    async def budget(self) -> float: ...


class Middle(Component):
    @idempotent
    async def relay(self, delay_s: float) -> str: ...

    @idempotent
    async def budget_via_hop(self) -> float: ...


class Front(Component):
    @idempotent
    async def call_chain(self, delay_s: float) -> str: ...


class LeafImpl:
    async def work(self, delay_s: float) -> str:
        await asyncio.sleep(delay_s)
        return "leaf"

    async def budget(self) -> float:
        remaining = remaining_budget_s()
        return -1.0 if remaining is None else remaining


class MiddleImpl:
    async def init(self, ctx) -> None:
        self._leaf = ctx.get(Leaf)

    async def relay(self, delay_s: float) -> str:
        return await self._leaf.work(delay_s)

    async def budget_via_hop(self) -> float:
        return await self._leaf.budget()


class FrontImpl:
    async def init(self, ctx) -> None:
        self._middle = ctx.get(Middle)

    async def call_chain(self, delay_s: float) -> str:
        return await self._middle.relay(delay_s)


def chain_registry() -> Registry:
    registry = Registry()
    registry.register(Front, FrontImpl)
    registry.register(Middle, MiddleImpl)
    registry.register(Leaf, LeafImpl)
    return registry


async def test_three_hop_chain_respects_root_deadline_tcp():
    """A 200ms root budget fails the whole chain in ~200ms, not 1s+."""
    app = await deploy_multiprocess(
        AppConfig(name="chain"), registry=chain_registry(), mode="inproc"
    )
    try:
        front = app.get(Front).with_options(deadline_s=0.2)
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            await front.call_chain(1.0)  # leaf would sleep 1s
        elapsed = time.perf_counter() - start
        assert elapsed < 0.45, f"chain outlived its deadline: {elapsed:.3f}s"
    finally:
        await app.shutdown()


async def test_budget_shrinks_across_hops():
    """The leaf sees strictly less budget than the root granted."""
    app = await deploy_multiprocess(
        AppConfig(name="chain"), registry=chain_registry(), mode="inproc"
    )
    try:
        middle = app.get(Middle).with_options(deadline_s=5.0)
        remaining = await middle.budget_via_hop()
        assert 0 < remaining < 5.0
    finally:
        await app.shutdown()


async def test_default_timeout_travels_as_budget():
    """Without an explicit deadline the deployment default still ships, so
    no server ever works on a request its caller has already abandoned."""
    app = await deploy_multiprocess(
        AppConfig(name="chain", call_timeout_s=30.0),
        registry=chain_registry(),
        mode="inproc",
    )
    try:
        leaf = app.get(Leaf)
        remaining = await leaf.budget()
        assert 0 < remaining <= 30.0
    finally:
        await app.shutdown()


async def test_expired_budget_rejected_at_the_door():
    """A request whose budget is gone fails server-side, pre-execution."""
    build = chain_registry().freeze()
    local = LocalInvoker(version=build.version)
    dispatcher = Dispatcher(build, COMPACT, local)
    reg = build.by_iface(Leaf)
    spec = reg.spec.method("work")
    payload = COMPACT.encode(spec.arg_schema, (0.5,))
    with pytest.raises(DeadlineExceeded):
        # 10ms budget, 500ms of work: the dispatcher must cut it off.
        await dispatcher.handle(reg.component_id, spec.index, payload, deadline_ms=10)


async def test_deadline_exceeded_is_not_retried():
    """DeadlineExceeded is terminal: retrying cannot grow the budget."""
    exc = DeadlineExceeded("late")
    assert isinstance(exc, RPCError)
    assert not exc.retryable


async def test_three_hop_chain_respects_root_deadline_http():
    """Same invariant on the HTTP/JSON baseline plane."""
    from repro.baseline.service import BaselineApp

    app = BaselineApp(chain_registry().freeze(), AppConfig(name="chain"))
    await app.start()
    try:
        front = app.get(Front).with_options(deadline_s=0.2)
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            await front.call_chain(1.0)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.45, f"chain outlived its deadline: {elapsed:.3f}s"
    finally:
        await app.shutdown()


async def test_http_budget_shrinks_across_hops():
    from repro.baseline.service import BaselineApp

    app = BaselineApp(chain_registry().freeze(), AppConfig(name="chain"))
    await app.start()
    try:
        middle = app.get(Middle).with_options(deadline_s=5.0)
        remaining = await middle.budget_via_hop()
        assert 0 < remaining < 5.0
    finally:
        await app.shutdown()


# --------------------------------------------------------------------------
# Hedging: only idempotent methods, second attempt races the first.
# --------------------------------------------------------------------------


async def test_hedged_call_succeeds_and_counts():
    app = await deploy_multiprocess(
        AppConfig(name="chain"), registry=chain_registry(), mode="inproc"
    )
    try:
        leaf = app.get(Leaf).with_options(hedge=0.02)
        assert await leaf.work(0.15) == "leaf"
        assert app._driver._remote.hedges >= 1
    finally:
        await app.shutdown()


async def test_fast_call_is_not_hedged():
    app = await deploy_multiprocess(
        AppConfig(name="chain"), registry=chain_registry(), mode="inproc"
    )
    try:
        leaf = app.get(Leaf).with_options(hedge=5.0)
        assert await leaf.work(0.0) == "leaf"
        assert app._driver._remote.hedges == 0
    finally:
        await app.shutdown()
