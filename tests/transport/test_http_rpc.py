"""The HTTP/1.1 baseline transport."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    RemoteApplicationError,
    RPCError,
    Unavailable,
)
from repro.transport.http_rpc import HttpRpcClient, HttpRpcServer, _format_request


async def handler(component: str, method: str, body: bytes) -> bytes:
    if method == "app_error":
        raise KeyError("missing key")
    if method == "unavailable":
        raise Unavailable("try later")
    if method == "slow":
        await asyncio.sleep(0.5)
        return b"slow"
    return f"{component}/{method}:".encode() + body


class Harness:
    async def __aenter__(self):
        self.server = HttpRpcServer(handler)
        self.address = await self.server.start()
        self.client = HttpRpcClient()
        return self

    async def __aexit__(self, *exc):
        await self.client.close()
        await self.server.stop()


async def test_basic_call():
    async with Harness() as h:
        out = await h.client.call(h.address, "Cart", "add", b"item", timeout=2)
        assert out == b"Cart/add:item"


async def test_empty_body():
    async with Harness() as h:
        assert await h.client.call(h.address, "C", "m", b"", timeout=2) == b"C/m:"


async def test_binary_body_roundtrip():
    async with Harness() as h:
        body = bytes(range(256)) * 4
        out = await h.client.call(h.address, "C", "m", body, timeout=2)
        assert out.endswith(body)


async def test_keepalive_reuses_connection():
    async with Harness() as h:
        for i in range(25):
            await h.client.call(h.address, "C", "m", str(i).encode(), timeout=2)
        assert len(h.client._idle.get(h.address, [])) == 1


async def test_concurrent_calls_open_multiple_sockets():
    """HTTP/1.1 has no multiplexing: concurrency costs sockets."""
    async with Harness() as h:
        await asyncio.gather(
            *[h.client.call(h.address, "C", "slow", b"", timeout=5) for _ in range(3)]
        )
        assert len(h.client._idle.get(h.address, [])) == 3


async def test_app_error_maps_to_remote_application_error():
    async with Harness() as h:
        with pytest.raises(RemoteApplicationError) as info:
            await h.client.call(h.address, "C", "app_error", b"", timeout=2)
        assert info.value.exc_type == "KeyError"


async def test_unavailable_maps_to_503():
    async with Harness() as h:
        with pytest.raises(Unavailable, match="try later"):
            await h.client.call(h.address, "C", "unavailable", b"", timeout=2)


async def test_timeout():
    async with Harness() as h:
        with pytest.raises(DeadlineExceeded):
            await h.client.call(h.address, "C", "slow", b"", timeout=0.05)


async def test_connection_survives_error_response():
    async with Harness() as h:
        with pytest.raises(RemoteApplicationError):
            await h.client.call(h.address, "C", "app_error", b"", timeout=2)
        assert await h.client.call(h.address, "C", "m", b"ok", timeout=2) == b"C/m:ok"


async def test_dead_endpoint_is_unavailable():
    client = HttpRpcClient(connect_timeout=0.5)
    with pytest.raises(Unavailable):
        await client.call("tcp://127.0.0.1:1", "C", "m", b"", timeout=1)
    await client.close()


def test_request_headers_are_heavy():
    """Quantifies the per-message text-header cost the paper deletes."""
    raw = _format_request("tcp://127.0.0.1:80", "boutique.Cart", "add_item", b"", 1)
    head = raw[: raw.index(b"\r\n\r\n") + 4]
    assert len(head) > 150  # vs ~9 bytes for the custom protocol
    assert b"POST /rpc/boutique.Cart/add_item" in raw
    assert b"content-length" in raw


async def test_not_found_for_bad_path():
    async with Harness() as h:
        # Raw request with a non-/rpc path.
        from repro.transport.server import parse_address

        _, host, port = parse_address(h.address)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"POST /other HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
        await writer.drain()
        line = await reader.readline()
        assert b"404" in line
        writer.close()
