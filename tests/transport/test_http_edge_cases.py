"""HTTP baseline: malformed input must never take the server down."""

from __future__ import annotations

import asyncio

import pytest

from repro.transport.http_rpc import HttpRpcServer
from repro.transport.server import parse_address


async def handler(component, method, body):
    return b"ok:" + body


class Rig:
    async def __aenter__(self):
        self.server = HttpRpcServer(handler)
        self.address = await self.server.start()
        _, self.host, self.port = parse_address(self.address)
        return self

    async def __aexit__(self, *exc):
        await self.server.stop()

    async def raw(self, data: bytes, *, read: int = 1) -> list[bytes]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(data)
        await writer.drain()
        lines = []
        try:
            for _ in range(read):
                line = await asyncio.wait_for(reader.readline(), timeout=2)
                if not line:
                    break
                lines.append(line)
        except asyncio.TimeoutError:
            pass
        writer.close()
        return lines

    async def good_request(self) -> bytes:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(
            b"POST /rpc/C/m HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"
        )
        await writer.drain()
        status = await reader.readline()
        writer.close()
        return status


class TestMalformedRequests:
    async def test_garbage_bytes_then_server_still_serves(self):
        async with Rig() as rig:
            await rig.raw(b"\x00\x01\x02 total garbage\r\n\r\n")
            assert b"200" in await rig.good_request()

    async def test_missing_content_length_treated_as_zero(self):
        async with Rig() as rig:
            lines = await rig.raw(b"POST /rpc/C/m HTTP/1.1\r\n\r\n")
            assert lines and b"200" in lines[0]

    async def test_bad_method_404(self):
        async with Rig() as rig:
            lines = await rig.raw(b"GET /rpc/C/m HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
            assert lines and b"404" in lines[0]

    async def test_malformed_path_400(self):
        async with Rig() as rig:
            lines = await rig.raw(
                b"POST /rpc/only-one-part HTTP/1.1\r\ncontent-length: 0\r\n\r\n"
            )
            assert lines and b"400" in lines[0]

    async def test_half_request_then_disconnect(self):
        async with Rig() as rig:
            reader, writer = await asyncio.open_connection(rig.host, rig.port)
            writer.write(b"POST /rpc/C/m HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort")
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.05)
            assert b"200" in await rig.good_request()

    async def test_header_without_colon(self):
        async with Rig() as rig:
            await rig.raw(b"POST /rpc/C/m HTTP/1.1\r\nbroken header line\r\n\r\n")
            assert b"200" in await rig.good_request()

    async def test_oversized_body_rejected_cleanly(self):
        async with Rig() as rig:
            lines = await rig.raw(
                b"POST /rpc/C/m HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n"
            )
            # Connection dropped without serving; server survives.
            assert b"200" in await rig.good_request()

    async def test_pipelined_keepalive_requests(self):
        async with Rig() as rig:
            reader, writer = await asyncio.open_connection(rig.host, rig.port)
            one = b"POST /rpc/C/m HTTP/1.1\r\ncontent-length: 1\r\n\r\nx"
            writer.write(one + one)
            await writer.drain()
            blob = await asyncio.wait_for(reader.read(400), timeout=2)
            assert blob.count(b"200 OK") == 2
            writer.close()
