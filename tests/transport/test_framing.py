"""Frame encoding over asyncio streams."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import TransportError
from repro.transport.framing import MAX_FRAME, read_frame, write_frame


async def loopback():
    server_streams = asyncio.Queue()

    async def on_connect(reader, writer):
        await server_streams.put((reader, writer))

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()
    creader, cwriter = await asyncio.open_connection(host, port)
    sreader, swriter = await server_streams.get()
    return server, (creader, cwriter), (sreader, swriter)


async def test_roundtrip_frames():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        for payload in (b"", b"x", b"hello" * 1000, bytes(range(256))):
            await write_frame(cw, payload)
            assert await read_frame(sr) == payload
    finally:
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()


async def test_many_frames_preserve_order():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        for i in range(100):
            await write_frame(cw, str(i).encode())
        for i in range(100):
            assert await read_frame(sr) == str(i).encode()
    finally:
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()


async def test_eof_raises_transport_error():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        cw.close()
        with pytest.raises(TransportError, match="closed"):
            await read_frame(sr)
    finally:
        sw.close()
        server.close()
        await server.wait_closed()


async def test_partial_frame_raises():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        cw.write((100).to_bytes(4, "big") + b"only-some")
        await cw.drain()
        cw.close()
        with pytest.raises(TransportError, match="mid-frame"):
            await read_frame(sr)
    finally:
        sw.close()
        server.close()
        await server.wait_closed()


async def test_oversized_frame_announcement_rejected():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        cw.write((MAX_FRAME + 1).to_bytes(4, "big"))
        await cw.drain()
        with pytest.raises(TransportError, match="MAX_FRAME"):
            await read_frame(sr)
    finally:
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()


async def test_oversized_write_rejected_locally():
    server, (cr, cw), (sr, sw) = await loopback()
    try:
        with pytest.raises(TransportError):
            await write_frame(cw, b"\0" * (MAX_FRAME + 1))
    finally:
        cw.close()
        sw.close()
        server.close()
        await server.wait_closed()
