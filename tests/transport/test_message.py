"""Wire message encode/decode."""

from __future__ import annotations

import pytest

from repro.core.errors import TransportError
from repro.transport import message as msg


ALL_MESSAGES = [
    msg.Hello("compact", "deadbeef00112233"),
    msg.Welcome("compact", "deadbeef00112233"),
    msg.Request(1, 0, 0, b""),
    msg.Request(2**40, 11, 3, b"payload bytes"),
    msg.Response(7, b"result"),
    msg.Response(7, b""),
    msg.AppError(9, "ValueError", "bad input"),
    msg.AppError(9, "E", ""),
    msg.RpcError(3, True, "unavailable"),
    msg.RpcError(3, False, "fatal"),
    msg.Ping(123456),
    msg.Pong(123456),
]


@pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__ + repr(getattr(m, "req_id", "")))
def test_roundtrip(message):
    assert msg.decode(msg.encode(message)) == message


def test_request_header_is_tiny():
    """The whole point: component+method+id (+trace) in a handful of bytes."""
    encoded = msg.encode(msg.Request(1, 5, 2, b""))
    assert len(encoded) <= 8  # type + 3 varints + 2 one-byte trace zeros


def test_request_trace_context_roundtrips():
    m = msg.Request(9, 3, 1, b"args", trace_id=2**62 + 5, parent_span_id=77)
    out = msg.decode(msg.encode(m))
    assert out == m
    assert out.trace_id == 2**62 + 5
    assert out.parent_span_id == 77


def test_empty_frame_rejected():
    with pytest.raises(TransportError, match="empty"):
        msg.decode(b"")


def test_unknown_kind_rejected():
    with pytest.raises(TransportError, match="unknown"):
        msg.decode(b"\xee\x01\x02")


def test_truncated_message_rejected():
    encoded = msg.encode(msg.Hello("compact", "version123"))
    with pytest.raises(TransportError, match="malformed"):
        msg.decode(encoded[:3])


def test_unicode_in_errors():
    m = msg.AppError(1, "Error", "bad thing: éñ→")
    assert msg.decode(msg.encode(m)) == m


def test_oversized_short_string_rejected():
    with pytest.raises(TransportError, match="too long"):
        msg.encode(msg.Hello("c" * 300, "v"))


def test_retryable_flag_survives():
    assert msg.decode(msg.encode(msg.RpcError(1, True, "x"))).retryable is True
    assert msg.decode(msg.encode(msg.RpcError(1, False, "x"))).retryable is False
