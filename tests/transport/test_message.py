"""Wire message encode/decode."""

from __future__ import annotations

import pytest

from repro.core import errors
from repro.core.errors import TransportError
from repro.transport import message as msg


ALL_MESSAGES = [
    msg.Hello("compact", "deadbeef00112233"),
    msg.Welcome("compact", "deadbeef00112233"),
    msg.Request(1, 0, 0, b""),
    msg.Request(2**40, 11, 3, b"payload bytes"),
    msg.Response(7, b"result"),
    msg.Response(7, b""),
    msg.AppError(9, "ValueError", "bad input"),
    msg.AppError(9, "E", ""),
    msg.RpcError(3, int(errors.ErrorCode.UNAVAILABLE), "unavailable", False),
    msg.RpcError(3, int(errors.ErrorCode.INTERNAL), "fatal"),
    msg.Request(5, 1, 2, b"x", deadline_ms=1500),
    msg.Ping(123456),
    msg.Pong(123456),
]


@pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__ + repr(getattr(m, "req_id", "")))
def test_roundtrip(message):
    assert msg.decode(msg.encode(message)) == message


def test_request_header_is_tiny():
    """The whole point: component+method+id (+trace+deadline) in a handful
    of bytes."""
    encoded = msg.encode(msg.Request(1, 5, 2, b""))
    assert len(encoded) <= 9  # type + 3 varints + trace zeros + deadline zero


def test_request_trace_context_roundtrips():
    m = msg.Request(9, 3, 1, b"args", trace_id=2**62 + 5, parent_span_id=77)
    out = msg.decode(msg.encode(m))
    assert out == m
    assert out.trace_id == 2**62 + 5
    assert out.parent_span_id == 77


def test_empty_frame_rejected():
    with pytest.raises(TransportError, match="empty"):
        msg.decode(b"")


def test_unknown_kind_rejected():
    with pytest.raises(TransportError, match="unknown"):
        msg.decode(b"\xee\x01\x02")


def test_truncated_message_rejected():
    encoded = msg.encode(msg.Hello("compact", "version123"))
    with pytest.raises(TransportError, match="malformed"):
        msg.decode(encoded[:3])


def test_unicode_in_errors():
    m = msg.AppError(1, "Error", "bad thing: éñ→")
    assert msg.decode(msg.encode(m)) == m


def test_oversized_short_string_rejected():
    with pytest.raises(TransportError, match="too long"):
        msg.encode(msg.Hello("c" * 300, "v"))


def test_error_code_and_executed_survive():
    wire = msg.decode(
        msg.encode(
            msg.RpcError(1, int(errors.ErrorCode.RESOURCE_EXHAUSTED), "x", False)
        )
    )
    assert wire.code == int(errors.ErrorCode.RESOURCE_EXHAUSTED)
    assert wire.executed is False
    exc = errors.error_from_code(wire.code, wire.message, executed=wire.executed)
    assert isinstance(exc, errors.ResourceExhausted)
    assert exc.retryable and not exc.executed

    wire = msg.decode(msg.encode(msg.RpcError(1, int(errors.ErrorCode.INTERNAL), "x")))
    exc = errors.error_from_code(wire.code, wire.message, executed=wire.executed)
    assert not exc.retryable and exc.executed


def test_request_deadline_roundtrips():
    m = msg.Request(9, 3, 1, b"args", deadline_ms=200)
    assert msg.decode(msg.encode(m)).deadline_ms == 200
    assert msg.decode(msg.encode(msg.Request(1, 0, 0, b""))).deadline_ms == 0
