"""RPC connections: handshake, pipelining, errors, health."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    RemoteApplicationError,
    RPCError,
    Unavailable,
    VersionMismatch,
)
from repro.transport.client import ConnectionPool
from repro.transport.server import RPCServer


async def echo_handler(
    component_id: int, method_index: int, args: bytes, trace=(0, 0), deadline_ms=0
) -> bytes:
    if method_index == 99:
        raise ValueError("application blew up")
    if method_index == 98:
        raise RPCError("rpc-level failure", retryable=False)
    if method_index == 97:
        await asyncio.sleep(0.5)
        return b"slow"
    return bytes([component_id, method_index]) + args


class Harness:
    def __init__(self, version="v1"):
        self.version = version

    async def __aenter__(self):
        self.server = RPCServer(echo_handler, codec="compact", version=self.version)
        self.address = await self.server.start()
        self.pool = ConnectionPool(codec="compact", version=self.version)
        return self

    async def __aexit__(self, *exc):
        await self.pool.close()
        await self.server.stop()


async def test_basic_call():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        assert await conn.call(3, 4, b"abc", timeout=2) == b"\x03\x04abc"


async def test_pipelined_concurrent_calls():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        results = await asyncio.gather(
            *[conn.call(0, 1, str(i).encode(), timeout=5) for i in range(200)]
        )
        for i, r in enumerate(results):
            assert r == b"\x00\x01" + str(i).encode()


async def test_single_connection_per_address():
    async with Harness() as h:
        c1 = await h.pool.get(h.address)
        c2 = await h.pool.get(h.address)
        assert c1 is c2
        assert h.pool.open_count == 1


async def test_application_error_propagates_with_type():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        with pytest.raises(RemoteApplicationError) as info:
            await conn.call(0, 99, b"", timeout=2)
        assert info.value.exc_type == "ValueError"
        assert "blew up" in info.value.exc_message


async def test_app_error_does_not_poison_connection():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        with pytest.raises(RemoteApplicationError):
            await conn.call(0, 99, b"", timeout=2)
        assert await conn.call(0, 1, b"ok", timeout=2) == b"\x00\x01ok"


async def test_rpc_error_not_retryable():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        with pytest.raises(RPCError) as info:
            await conn.call(0, 98, b"", timeout=2)
        assert not info.value.retryable


async def test_deadline_exceeded():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        with pytest.raises(DeadlineExceeded):
            await conn.call(0, 97, b"", timeout=0.05)


async def test_ping_health_probe():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        assert await conn.ping(timeout=2) is True


async def test_version_mismatch_rejected():
    async with Harness(version="v1") as h:
        other = ConnectionPool(codec="compact", version="v2")
        with pytest.raises(VersionMismatch, match="cross-version"):
            await other.get(h.address)
        await other.close()


async def test_codec_mismatch_rejected():
    async with Harness() as h:
        other = ConnectionPool(codec="json", version="v1")
        with pytest.raises(VersionMismatch):
            await other.get(h.address)
        await other.close()


async def test_server_stop_fails_inflight_calls():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        task = asyncio.ensure_future(conn.call(0, 97, b"", timeout=5))
        await asyncio.sleep(0.05)
        await h.server.stop()
        with pytest.raises((Unavailable, RPCError)):
            await task


async def test_pool_reconnects_after_drop():
    async with Harness() as h:
        conn = await h.pool.get(h.address)
        await conn.close()
        conn2 = await h.pool.get(h.address)
        assert conn2 is not conn
        assert await conn2.call(0, 1, b"x", timeout=2) == b"\x00\x01x"


async def test_connect_to_dead_address_is_unavailable():
    pool = ConnectionPool(codec="compact", version="v1", connect_timeout=0.5)
    with pytest.raises(Unavailable):
        await pool.get("tcp://127.0.0.1:1")  # nothing listens on port 1
    await pool.close()


async def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "rpc.sock")
    server = RPCServer(echo_handler, codec="compact", version="v1", address=f"unix://{path}")
    address = await server.start()
    assert address.startswith("unix://")
    pool = ConnectionPool(codec="compact", version="v1")
    conn = await pool.get(address)
    assert await conn.call(1, 2, b"u", timeout=2) == b"\x01\x02u"
    await pool.close()
    await server.stop()


async def test_connection_count_tracked():
    async with Harness() as h:
        await h.pool.get(h.address)
        await asyncio.sleep(0.05)
        assert h.server.connection_count == 1
