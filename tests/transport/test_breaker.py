"""Circuit breaker state machine, clock-injected (no sleeping)."""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry
from repro.transport.breaker import (
    BreakerPolicy,
    BreakerSet,
    BreakerState,
    CircuitBreaker,
)

import pytest


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make(policy=None, clock=None):
    clock = clock or FakeClock()
    return CircuitBreaker(policy or BreakerPolicy(), clock=clock), clock


class TestTripConditions:
    def test_consecutive_failures_trip(self):
        breaker, _ = make(BreakerPolicy(consecutive_failures=3))
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_consecutive_count(self):
        breaker, _ = make(BreakerPolicy(consecutive_failures=3))
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_error_rate_trips_with_volume(self):
        policy = BreakerPolicy(
            consecutive_failures=100, error_rate=0.5, min_volume=10
        )
        breaker, _ = make(policy)
        # Alternate so the consecutive condition never fires; at 10
        # outcomes the windowed rate hits 50%.
        tripped = False
        for _ in range(5):
            breaker.record_success()
            tripped = breaker.record_failure() or tripped
        assert tripped
        assert breaker.state is BreakerState.OPEN

    def test_error_rate_needs_min_volume(self):
        policy = BreakerPolicy(consecutive_failures=100, error_rate=0.5, min_volume=10)
        breaker, _ = make(policy)
        for _ in range(4):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_window_expiry_forgets_old_failures(self):
        policy = BreakerPolicy(
            consecutive_failures=100, error_rate=0.5, min_volume=4, window_s=10.0
        )
        breaker, clock = make(policy)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # old failures age out of the window
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestOpenAndRecovery:
    def test_open_blocks_until_cooldown(self):
        breaker, clock = make(BreakerPolicy(consecutive_failures=1, open_for_s=2.0))
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.peek() is False
        assert breaker.admit() is False
        clock.advance(2.0)
        assert breaker.peek() is True

    def test_half_open_admits_single_probe(self):
        policy = BreakerPolicy(consecutive_failures=1, open_for_s=1.0, half_open_probes=1)
        breaker, clock = make(policy)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit() is True  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.admit() is False  # second caller boxed out

    def test_probe_successes_close(self):
        policy = BreakerPolicy(
            consecutive_failures=1, open_for_s=1.0, half_open_successes=2
        )
        breaker, clock = make(policy)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.admit()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_with_doubled_cooldown(self):
        policy = BreakerPolicy(consecutive_failures=1, open_for_s=1.0)
        breaker, clock = make(policy)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit()
        breaker.record_failure()  # probe failed
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.0)  # base cooldown no longer enough
        assert breaker.peek() is False
        clock.advance(1.0)  # 2x base reached
        assert breaker.peek() is True

    def test_cooldown_backoff_caps(self):
        policy = BreakerPolicy(
            consecutive_failures=1, open_for_s=1.0, open_for_max_s=4.0
        )
        breaker, clock = make(policy)
        for _ in range(6):  # re-trip repeatedly; backoff 1,2,4,4,4...
            breaker.record_failure()
            clock.advance(4.0)
            assert breaker.admit() is True
        # After many re-trips, the cap still admits a probe within 4s.
        breaker.record_failure()
        clock.advance(3.9)
        assert breaker.peek() is False
        clock.advance(0.1)
        assert breaker.peek() is True

    def test_close_resets_backoff(self):
        policy = BreakerPolicy(
            consecutive_failures=1, open_for_s=1.0, half_open_successes=1
        )
        breaker, clock = make(policy)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit()
        breaker.record_failure()  # re-trip: streak = 2
        clock.advance(2.0)
        assert breaker.admit()
        breaker.record_success()  # closes, streak resets
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # fresh trip: base cooldown again
        clock.advance(1.0)
        assert breaker.peek() is True

    def test_stale_probe_slot_is_reclaimed(self):
        policy = BreakerPolicy(consecutive_failures=1, open_for_s=1.0)
        breaker, clock = make(policy)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit()  # probe whose outcome never arrives
        assert breaker.admit() is False
        clock.advance(1.1)  # probe considered lost; slot reopens
        assert breaker.admit() is True


class TestBreakerSet:
    def test_record_and_filter(self):
        clock = FakeClock()
        breakers = BreakerSet(BreakerPolicy(consecutive_failures=2), clock=clock)
        addrs = ["a", "b", "c"]
        breakers.record("Comp", "b", ok=False)
        tripped = breakers.record("Comp", "b", ok=False)
        assert tripped
        assert breakers.filter("Comp", addrs) == ["a", "c"]
        assert breakers.open_count("Comp") == 1

    def test_least_recently_tripped(self):
        clock = FakeClock()
        breakers = BreakerSet(BreakerPolicy(consecutive_failures=1), clock=clock)
        breakers.record("Comp", "a", ok=False)
        clock.advance(1e-3)
        breakers.record("Comp", "b", ok=False)
        # Untouched address wins outright (never tripped)...
        assert breakers.least_recently_tripped("Comp", ["a", "b", "c"]) == "c"
        # ...otherwise the oldest trip.
        assert breakers.least_recently_tripped("Comp", ["a", "b"]) == "a"

    def test_retain_prunes_departed_replicas(self):
        breakers = BreakerSet(BreakerPolicy(consecutive_failures=1), clock=FakeClock())
        breakers.record("Comp", "a", ok=False)
        breakers.record("Comp", "b", ok=True)
        breakers.record("Other", "a", ok=False)
        breakers.retain("Comp", ["b"])
        assert breakers.states("Comp") == {"b": BreakerState.CLOSED}
        # Other component's breakers untouched.
        assert breakers.open_count("Other") == 1

    def test_transition_metrics(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        breakers = BreakerSet(
            BreakerPolicy(consecutive_failures=1, open_for_s=1.0,
                          half_open_successes=1),
            clock=clock,
            metrics=registry,
        )
        breakers.record("Comp", "a", ok=False)  # closed -> open
        clock.advance(1.0)
        assert breakers.admit("Comp", "a")  # open -> half_open
        breakers.record("Comp", "a", ok=True)  # half_open -> closed
        transitions = registry.counter("breaker_transitions")
        assert transitions.get(component="Comp", to="open").value == 1
        assert transitions.get(component="Comp", to="half_open").value == 1
        assert transitions.get(component="Comp", to="closed").value == 1
        assert registry.gauge("breaker_open_replicas").get(component="Comp").value == 0

    def test_skipped_picks_counted(self):
        registry = MetricsRegistry()
        breakers = BreakerSet(
            BreakerPolicy(consecutive_failures=1), clock=FakeClock(), metrics=registry
        )
        breakers.record("Comp", "a", ok=False)
        assert breakers.filter("Comp", ["a", "b"]) == ["b"]
        assert (
            registry.counter("breaker_skipped_picks").get(component="Comp").value == 1
        )


def test_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(consecutive_failures=0)
    with pytest.raises(ValueError):
        BreakerPolicy(error_rate=0.0)
    with pytest.raises(ValueError):
        BreakerPolicy(open_for_s=0.0)
