"""Boutique test fixtures: a fresh single-process app per test."""

from __future__ import annotations

import asyncio

import pytest

from repro.boutique import ALL_COMPONENTS
from repro.core.app import init


@pytest.fixture
def boutique_app():
    """A started single-process boutique application.

    Yielded to sync *and* async tests; async tests run inside asyncio.run
    (see tests/conftest.py), so the fixture creates the app lazily via a
    getter the test awaits.
    """

    async def make():
        return await init(components=ALL_COMPONENTS)

    return make
