"""Money arithmetic and order types (units/nanos semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.boutique.types import (
    Address,
    CartItem,
    Money,
    NANOS_PER_UNIT,
    OrderItem,
    OrderResult,
    from_nanos,
    zero,
)


def usd(units, nanos=0):
    return Money("USD", units, nanos)


class TestMoneyAdd:
    def test_simple(self):
        assert usd(1, 500_000_000) + usd(2, 250_000_000) == usd(3, 750_000_000)

    def test_carry(self):
        assert usd(1, 900_000_000) + usd(0, 200_000_000) == usd(2, 100_000_000)

    def test_negative_carry(self):
        assert usd(-1, -900_000_000) + usd(0, -200_000_000) == usd(-2, -100_000_000)

    def test_mixed_signs_normalize(self):
        assert usd(2, 0) + usd(-1, -500_000_000) == usd(0, 500_000_000)
        assert usd(-2, 0) + usd(1, 500_000_000) == usd(0, -500_000_000)

    def test_currency_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot add"):
            usd(1) + Money("EUR", 1, 0)

    def test_zero_identity(self):
        assert usd(5, 123) + zero("USD") == usd(5, 123)


class TestMoneyMultiply:
    def test_simple(self):
        assert usd(2, 500_000_000).multiply(3) == usd(7, 500_000_000)

    def test_zero(self):
        assert usd(9, 990_000_000).multiply(0) == usd(0)

    def test_one(self):
        assert usd(9, 990_000_000).multiply(1) == usd(9, 990_000_000)

    def test_large_quantity_no_drift(self):
        # 19.99 * 1000 == 19990 exactly (integer nanos, no float).
        assert usd(19, 990_000_000).multiply(1000) == usd(19990, 0)


class TestValidation:
    def test_valid(self):
        usd(1, 999_999_999).validate()
        usd(-1, -999_999_999).validate()

    def test_nanos_out_of_range(self):
        with pytest.raises(ValueError):
            usd(0, NANOS_PER_UNIT).validate()

    def test_sign_disagreement(self):
        with pytest.raises(ValueError):
            usd(1, -1).validate()
        with pytest.raises(ValueError):
            usd(-1, 1).validate()


class TestFromNanos:
    def test_positive(self):
        assert from_nanos("USD", 1_500_000_000) == usd(1, 500_000_000)

    def test_negative(self):
        assert from_nanos("USD", -1_500_000_000) == usd(-1, -500_000_000)

    def test_zero(self):
        assert from_nanos("USD", 0) == usd(0)


money_strategy = st.builds(
    lambda n: from_nanos("USD", n),
    st.integers(min_value=-(10**15), max_value=10**15),
)


@settings(max_examples=200, deadline=None)
@given(money_strategy, money_strategy)
def test_property_add_matches_integer_nanos(a, b):
    total = a + b
    total.validate()
    expected = (a.units * NANOS_PER_UNIT + a.nanos) + (b.units * NANOS_PER_UNIT + b.nanos)
    assert total.units * NANOS_PER_UNIT + total.nanos == expected


@settings(max_examples=200, deadline=None)
@given(money_strategy, money_strategy, money_strategy)
def test_property_add_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@settings(max_examples=200, deadline=None)
@given(money_strategy, st.integers(min_value=0, max_value=1000))
def test_property_multiply_is_repeated_add(m, q):
    by_mult = m.multiply(q)
    by_add = zero("USD")
    for _ in range(min(q, 50)):  # cap loop; compare via nanos formula
        by_add = by_add + m
    if q <= 50:
        assert by_mult == by_add
    total_nanos = (m.units * NANOS_PER_UNIT + m.nanos) * q
    assert by_mult == from_nanos("USD", total_nanos)


def test_order_total_sums_items_and_shipping():
    order = OrderResult(
        order_id="o1",
        shipping_tracking_id="t1",
        shipping_cost=usd(8, 990_000_000),
        shipping_address=Address("1 St", "Town", "TS", "US", 12345),
        items=[
            OrderItem(CartItem("p1", 2), usd(10, 0)),
            OrderItem(CartItem("p2", 1), usd(5, 500_000_000)),
        ],
    )
    assert order.total("USD") == usd(34, 490_000_000)
