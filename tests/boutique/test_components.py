"""Per-component behaviour of the Online Boutique port."""

from __future__ import annotations

import pytest

from repro.boutique import (
    Ads,
    Cart,
    CartStore,
    Checkout,
    Currency,
    Email,
    Payment,
    ProductCatalog,
    Recommendation,
    Shipping,
)
from repro.boutique.catalog import ProductNotFound
from repro.boutique.currency import UnsupportedCurrency
from repro.boutique.payment import card_network, luhn_valid
from repro.boutique.types import (
    Address,
    CartItem,
    CreditCard,
    Money,
    PaymentError,
)

ADDRESS = Address("1 Main St", "Springfield", "IL", "US", 62701)
GOOD_CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


class TestCatalog:
    async def test_list_products(self, boutique_app):
        app = await boutique_app()
        products = await app.get(ProductCatalog).list_products()
        assert len(products) == 9
        assert all(p.price.currency_code == "USD" for p in products)
        await app.shutdown()

    async def test_get_product(self, boutique_app):
        app = await boutique_app()
        p = await app.get(ProductCatalog).get_product("OLJCESPC7Z")
        assert p.name == "Sunglasses"
        await app.shutdown()

    async def test_unknown_product(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(ProductNotFound):
            await app.get(ProductCatalog).get_product("NOPE")
        await app.shutdown()

    async def test_search(self, boutique_app):
        app = await boutique_app()
        catalog = app.get(ProductCatalog)
        hits = await catalog.search_products("kitchen")
        assert {p.id for p in hits} >= {"9SIQT8TOJO"}
        assert await catalog.search_products("zzzznothing") == []
        await app.shutdown()


class TestCurrency:
    async def test_supported_currencies(self, boutique_app):
        app = await boutique_app()
        codes = await app.get(Currency).get_supported_currencies()
        assert "USD" in codes and "EUR" in codes and len(codes) > 30
        await app.shutdown()

    async def test_identity_conversion(self, boutique_app):
        app = await boutique_app()
        m = Money("USD", 10, 500_000_000)
        assert await app.get(Currency).convert(m, "USD") == m
        await app.shutdown()

    async def test_usd_to_eur_and_back_is_close(self, boutique_app):
        app = await boutique_app()
        currency = app.get(Currency)
        eur = await currency.convert(Money("USD", 100, 0), "EUR")
        assert eur.currency_code == "EUR"
        back = await currency.convert(eur, "USD")
        assert abs(back.as_float() - 100.0) < 0.001
        await app.shutdown()

    async def test_conversion_uses_demo_rate(self, boutique_app):
        app = await boutique_app()
        eur = await app.get(Currency).convert(Money("USD", 113, 50_000_000), "EUR")
        assert abs(eur.as_float() - 113.05 / 1.1305) < 0.01
        await app.shutdown()

    async def test_unknown_currency(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(UnsupportedCurrency):
            await app.get(Currency).convert(Money("USD", 1, 0), "XXX")
        await app.shutdown()


class TestCart:
    async def test_add_and_get(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("p1", 2))
        await cart.add_item("u1", CartItem("p2", 1))
        items = await cart.get_cart("u1")
        assert items == [CartItem("p1", 2), CartItem("p2", 1)]
        await app.shutdown()

    async def test_quantities_merge(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("p1", 2))
        await cart.add_item("u1", CartItem("p1", 3))
        assert await cart.get_cart("u1") == [CartItem("p1", 5)]
        await app.shutdown()

    async def test_users_isolated(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("p1", 1))
        assert await cart.get_cart("u2") == []
        await app.shutdown()

    async def test_empty_cart(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("p1", 1))
        await cart.empty_cart("u1")
        assert await cart.get_cart("u1") == []
        await app.shutdown()

    async def test_invalid_quantity(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(ValueError):
            await app.get(Cart).add_item("u1", CartItem("p1", 0))
        await app.shutdown()

    async def test_empty_user_id(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(ValueError):
            await app.get(Cart).add_item("", CartItem("p1", 1))
        await app.shutdown()

    async def test_store_stats(self, boutique_app):
        app = await boutique_app()
        store = app.get(CartStore)
        await store.add("u1", CartItem("p", 1))
        await store.get("u1")
        await store.get("unknown")
        stats = await store.stats("u1")
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["users"] == 1
        await app.shutdown()


class TestPayment:
    def test_luhn(self):
        assert luhn_valid("4432801561520454")
        assert not luhn_valid("4432801561520455")
        assert not luhn_valid("abc")
        assert not luhn_valid("1234")

    def test_network_detection(self):
        assert card_network("4432801561520454") == "visa"
        assert card_network("5105105105105100") == "mastercard"
        assert card_network("378282246310005") == "amex"
        assert card_network("6011111111111117") == "unknown"

    async def test_successful_charge(self, boutique_app):
        app = await boutique_app()
        result = await app.get(Payment).charge(Money("USD", 10, 0), GOOD_CARD)
        assert result.transaction_id.startswith("txn-")
        assert result.amount == Money("USD", 10, 0)
        await app.shutdown()

    async def test_transaction_ids_unique(self, boutique_app):
        app = await boutique_app()
        payment = app.get(Payment)
        a = await payment.charge(Money("USD", 1, 0), GOOD_CARD)
        b = await payment.charge(Money("USD", 1, 0), GOOD_CARD)
        assert a.transaction_id != b.transaction_id
        await app.shutdown()

    async def test_bad_luhn_rejected(self, boutique_app):
        app = await boutique_app()
        bad = CreditCard("4432-8015-6152-0455", 1, 2030, 1)
        with pytest.raises(PaymentError, match="invalid card"):
            await app.get(Payment).charge(Money("USD", 1, 0), bad)
        await app.shutdown()

    async def test_amex_not_accepted(self, boutique_app):
        app = await boutique_app()
        amex = CreditCard("378282246310005", 1, 2030, 1)
        with pytest.raises(PaymentError, match="amex"):
            await app.get(Payment).charge(Money("USD", 1, 0), amex)
        await app.shutdown()

    async def test_expired_card(self, boutique_app):
        app = await boutique_app()
        expired = CreditCard("4432-8015-6152-0454", 1, 2020, 1)
        with pytest.raises(PaymentError, match="expired"):
            await app.get(Payment).charge(Money("USD", 1, 0), expired)
        await app.shutdown()

    async def test_nonpositive_amount_rejected(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(PaymentError, match="positive"):
            await app.get(Payment).charge(Money("USD", 0, 0), GOOD_CARD)
        await app.shutdown()


class TestShipping:
    async def test_flat_quote_for_small_orders(self, boutique_app):
        app = await boutique_app()
        quote = await app.get(Shipping).get_quote(ADDRESS, [CartItem("p", 2)])
        assert quote.cost == Money("USD", 8, 990_000_000)
        assert quote.tracking_eta_days == 3
        await app.shutdown()

    async def test_bulk_surcharge(self, boutique_app):
        app = await boutique_app()
        quote = await app.get(Shipping).get_quote(ADDRESS, [CartItem("p", 7)])
        assert quote.cost == Money("USD", 9, 990_000_000)  # +2 * $0.50
        assert quote.tracking_eta_days == 5
        await app.shutdown()

    async def test_tracking_id_deterministic_for_address(self, boutique_app):
        app = await boutique_app()
        shipping = app.get(Shipping)
        a = await shipping.ship_order(ADDRESS, [CartItem("p", 1)])
        b = await shipping.ship_order(ADDRESS, [CartItem("p", 1)])
        assert a == b
        assert a.startswith("SP-")
        await app.shutdown()


class TestEmailAdsRecommendation:
    async def test_ads_by_category(self, boutique_app):
        app = await boutique_app()
        ads = await app.get(Ads).get_ads(["kitchen"])
        assert len(ads) == 2
        await app.shutdown()

    async def test_ads_fallback_random(self, boutique_app):
        app = await boutique_app()
        ads = await app.get(Ads).get_ads([])
        assert len(ads) == 1
        await app.shutdown()

    async def test_recommendations_exclude_context(self, boutique_app):
        app = await boutique_app()
        recs = await app.get(Recommendation).list_recommendations("u1", ["OLJCESPC7Z"])
        assert "OLJCESPC7Z" not in recs
        assert 0 < len(recs) <= 5
        await app.shutdown()

    async def test_recommendations_differ_per_user(self, boutique_app):
        app = await boutique_app()
        rec = app.get(Recommendation)
        r1 = await rec.list_recommendations("user-a", [])
        r2 = await rec.list_recommendations("user-xyz", [])
        assert r1 != r2  # rotation is user-keyed
        await app.shutdown()

    async def test_email_renders_order(self, boutique_app):
        app = await boutique_app()
        from repro.boutique.types import OrderItem, OrderResult

        order = OrderResult(
            "o-1",
            "TRACK-1",
            Money("USD", 8, 990_000_000),
            ADDRESS,
            [OrderItem(CartItem("OLJCESPC7Z", 2), Money("USD", 19, 990_000_000))],
        )
        email = app.get(Email)
        confirmation = await email.send_order_confirmation("a@b.com", order)
        assert "o-1" in confirmation.body
        assert "TRACK-1" in confirmation.body
        assert await email.sent_count() == 1
        await app.shutdown()

    async def test_email_validates_address(self, boutique_app):
        app = await boutique_app()
        from repro.boutique.types import OrderResult

        order = OrderResult("o", "t", Money("USD", 0, 1), ADDRESS, [])
        with pytest.raises(ValueError, match="email"):
            await app.get(Email).send_order_confirmation("not-an-email", order)
        await app.shutdown()
