"""The boutique's HTTP front door (what the Locust workload targets)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.boutique import ALL_COMPONENTS
from repro.boutique.httpfront import BoutiqueHttpServer
from repro.core.app import init
from repro.transport.server import parse_address


class Browser:
    """A tiny HTTP client speaking just enough for the tests."""

    def __init__(self, address: str):
        _, self.host, self.port = parse_address(address)

    async def request(self, method: str, path: str, body: dict | None = None, user="u1"):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = json.dumps(body).encode() if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"x-user: {user}\r\n"
            f"content-length: {len(payload)}\r\n\r\n"
        ).encode()
        writer.write(head + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        data = await reader.readexactly(length)
        writer.close()
        return status, json.loads(data)


@pytest.fixture
def front():
    async def make():
        app = await init(components=ALL_COMPONENTS)
        server = BoutiqueHttpServer(app)
        await server.start()
        return app, server, Browser(server.address)

    return make


class TestRoutes:
    async def test_healthz(self, front):
        app, server, browser = await front()
        status, body = await browser.request("GET", "/_healthz")
        assert status == 200 and body["status"] == "serving"
        await server.stop(); await app.shutdown()

    async def test_home(self, front):
        app, server, browser = await front()
        status, body = await browser.request("GET", "/?currency=EUR")
        assert status == 200
        assert len(body["products"]) == 9
        assert body["products"][0]["price"]["currency"] == "EUR"
        assert body["ad"]["text"]
        await server.stop(); await app.shutdown()

    async def test_product_page(self, front):
        app, server, browser = await front()
        status, body = await browser.request("GET", "/product/OLJCESPC7Z")
        assert status == 200 and body["name"] == "Sunglasses"
        await server.stop(); await app.shutdown()

    async def test_unknown_product_is_500_class(self, front):
        app, server, browser = await front()
        status, body = await browser.request("GET", "/product/NOPE")
        assert status in (400, 500)
        assert "error" in body
        await server.stop(); await app.shutdown()

    async def test_cart_flow(self, front):
        app, server, browser = await front()
        status, body = await browser.request(
            "POST", "/cart", {"product_id": "OLJCESPC7Z", "quantity": 2}
        )
        assert status == 200 and body["cart_size"] == 2
        status, body = await browser.request("GET", "/cart")
        assert body["items"] == [{"product_id": "OLJCESPC7Z", "quantity": 2}]
        await server.stop(); await app.shutdown()

    async def test_users_isolated_by_header(self, front):
        app, server, browser = await front()
        await browser.request("POST", "/cart", {"product_id": "OLJCESPC7Z"}, user="alice")
        status, body = await browser.request("GET", "/cart", user="bob")
        assert body["items"] == []
        await server.stop(); await app.shutdown()

    async def test_checkout(self, front):
        app, server, browser = await front()
        await browser.request("POST", "/cart", {"product_id": "OLJCESPC7Z", "quantity": 1})
        status, body = await browser.request("POST", "/cart/checkout", {"currency": "USD"})
        assert status == 200
        assert body["items"] == 1
        assert body["order_id"]
        # 19.99 + 8.99 shipping
        assert body["total"]["units"] == 28
        await server.stop(); await app.shutdown()

    async def test_checkout_empty_cart_is_503(self, front):
        app, server, browser = await front()
        status, body = await browser.request("POST", "/cart/checkout", {})
        assert status == 500 or status == 503
        await server.stop(); await app.shutdown()

    async def test_unknown_route_404(self, front):
        app, server, browser = await front()
        status, body = await browser.request("GET", "/admin")
        assert status == 404
        await server.stop(); await app.shutdown()

    async def test_against_multiprocess_deployment(self):
        """The same front door binds to a distributed deployment."""
        from repro.core.config import AppConfig
        from repro.runtime.deployers.multi import deploy_multiprocess

        app = await deploy_multiprocess(
            AppConfig(name="http"), components=ALL_COMPONENTS, mode="inproc"
        )
        server = BoutiqueHttpServer(app)
        await server.start()
        browser = Browser(server.address)
        status, body = await browser.request("GET", "/")
        assert status == 200 and len(body["products"]) == 9
        assert server.requests_served == 1
        await server.stop()
        await app.shutdown()
