"""Checkout orchestration and the frontend facade — the end-to-end flows."""

from __future__ import annotations

import pytest

from repro.boutique import (
    Cart,
    Checkout,
    Email,
    Frontend,
    ProductCatalog,
)
from repro.boutique.types import Address, CartItem, CheckoutError, CreditCard, Money

ADDRESS = Address("1600 Amphitheatre Pkwy", "Mountain View", "CA", "US", 94043)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)
BAD_CARD = CreditCard("4432-8015-6152-0455", 672, 2030, 1)


class TestCheckout:
    async def test_full_order(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("OLJCESPC7Z", 2))  # 2 x $19.99
        await cart.add_item("u1", CartItem("9SIQT8TOJO", 1))  # 1 x $5.49

        order = await app.get(Checkout).place_order("u1", "USD", ADDRESS, "a@b.com", CARD)
        assert len(order.items) == 2
        # 2*19.99 + 5.49 + 8.99 shipping = 54.46
        assert order.total("USD") == Money("USD", 54, 460_000_000)
        assert order.shipping_tracking_id
        await app.shutdown()

    async def test_cart_emptied_after_order(self, boutique_app):
        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("OLJCESPC7Z", 1))
        await app.get(Checkout).place_order("u1", "USD", ADDRESS, "a@b.com", CARD)
        assert await cart.get_cart("u1") == []
        await app.shutdown()

    async def test_confirmation_email_sent(self, boutique_app):
        app = await boutique_app()
        await app.get(Cart).add_item("u1", CartItem("OLJCESPC7Z", 1))
        await app.get(Checkout).place_order("u1", "USD", ADDRESS, "a@b.com", CARD)
        assert await app.get(Email).sent_count() == 1
        await app.shutdown()

    async def test_empty_cart_rejected(self, boutique_app):
        app = await boutique_app()
        with pytest.raises(CheckoutError, match="empty"):
            await app.get(Checkout).place_order("u1", "USD", ADDRESS, "a@b.com", CARD)
        await app.shutdown()

    async def test_payment_failure_keeps_cart(self, boutique_app):
        """A declined card must not destroy the cart (no partial commit)."""
        from repro.boutique.types import PaymentError

        app = await boutique_app()
        cart = app.get(Cart)
        await cart.add_item("u1", CartItem("OLJCESPC7Z", 1))
        with pytest.raises(PaymentError):
            await app.get(Checkout).place_order("u1", "USD", ADDRESS, "a@b.com", BAD_CARD)
        assert await cart.get_cart("u1") != []
        await app.shutdown()

    async def test_order_in_foreign_currency(self, boutique_app):
        app = await boutique_app()
        await app.get(Cart).add_item("u1", CartItem("OLJCESPC7Z", 1))
        order = await app.get(Checkout).place_order("u1", "EUR", ADDRESS, "a@b.com", CARD)
        assert order.shipping_cost.currency_code == "EUR"
        assert all(oi.cost.currency_code == "EUR" for oi in order.items)
        # 19.99 + 8.99 = 28.98 USD ~= 25.63 EUR at the demo rate.
        assert abs(order.total("EUR").as_float() - 28.98 / 1.1305) < 0.02
        await app.shutdown()

    async def test_order_ids_unique(self, boutique_app):
        app = await boutique_app()
        cart, checkout = app.get(Cart), app.get(Checkout)
        ids = set()
        for i in range(3):
            await cart.add_item("u1", CartItem("OLJCESPC7Z", 1))
            order = await checkout.place_order("u1", "USD", ADDRESS, "a@b.com", CARD)
            ids.add(order.order_id)
        assert len(ids) == 3
        await app.shutdown()


class TestFrontend:
    async def test_home(self, boutique_app):
        app = await boutique_app()
        home = await app.get(Frontend).home("u1", "EUR")
        assert len(home.products) == 9
        assert all(p.price.currency_code == "EUR" for p in home.products)
        assert home.cart_size == 0
        assert home.ad.text
        assert "EUR" in home.currency_codes
        await app.shutdown()

    async def test_home_shows_cart_size(self, boutique_app):
        app = await boutique_app()
        fe = app.get(Frontend)
        await fe.add_to_cart("u1", "OLJCESPC7Z", 3)
        home = await fe.home("u1", "USD")
        assert home.cart_size == 3
        await app.shutdown()

    async def test_browse_product_converts_price(self, boutique_app):
        app = await boutique_app()
        p = await app.get(Frontend).browse_product("u1", "1YMWWN1N4O", "JPY")
        assert p.price.currency_code == "JPY"
        assert p.id == "1YMWWN1N4O"
        await app.shutdown()

    async def test_add_to_cart_validates_product(self, boutique_app):
        from repro.boutique.catalog import ProductNotFound

        app = await boutique_app()
        with pytest.raises(ProductNotFound):
            await app.get(Frontend).add_to_cart("u1", "FAKE", 1)
        await app.shutdown()

    async def test_add_to_cart_returns_running_total(self, boutique_app):
        app = await boutique_app()
        fe = app.get(Frontend)
        assert await fe.add_to_cart("u1", "OLJCESPC7Z", 2) == 2
        assert await fe.add_to_cart("u1", "6E92ZMYYFZ", 1) == 3
        await app.shutdown()

    async def test_recommendations_resolve_to_products(self, boutique_app):
        app = await boutique_app()
        recs = await app.get(Frontend).get_recommendations("u1", ["OLJCESPC7Z"])
        assert recs
        assert all(p.id != "OLJCESPC7Z" for p in recs)
        assert all(p.name for p in recs)
        await app.shutdown()

    async def test_full_shopping_journey(self, boutique_app):
        """The classic user story across every frontend route."""
        app = await boutique_app()
        fe = app.get(Frontend)
        home = await fe.home("shopper", "USD")
        product = await fe.browse_product("shopper", home.products[0].id, "USD")
        await fe.add_to_cart("shopper", product.id, 2)
        cart = await fe.view_cart("shopper", "USD")
        assert sum(i.quantity for i in cart) == 2
        order = await fe.checkout("shopper", "USD", ADDRESS, "s@example.com", CARD)
        assert order.items[0].item.product_id == product.id
        assert await fe.view_cart("shopper", "USD") == []
        await app.shutdown()

    async def test_frontend_logs_orders(self, boutique_app):
        app = await boutique_app()
        fe = app.get(Frontend)
        await fe.add_to_cart("u1", "OLJCESPC7Z", 1)
        await fe.checkout("u1", "USD", ADDRESS, "a@b.com", CARD)
        # Single-process app: the component logger defaults to the plain
        # logging logger; at least the order flow completes and the call
        # graph saw every component.
        touched = {c.rsplit(".", 1)[-1] for c in app.call_graph.components()}
        assert {"Frontend", "Checkout", "Payment", "Shipping", "Email"} <= touched
        await app.shutdown()
