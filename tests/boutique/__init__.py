"""Test package."""
