"""Payment.charge executes at most once per checkout, under fault injection.

The latent bug this guards against: an ambiguous RPC failure on the
charge (the connection died after the request was sent) used to be
retried like any other Unavailable, charging the card twice.  Charge is
not idempotent and checkout pins ``retries=0`` on its payment stub, so
an ambiguous failure must surface instead of re-executing.
"""

from __future__ import annotations

import pytest

from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.boutique.payment import PaymentImpl
from repro.testing.faults import FaultPlan, FaultRule
from repro.testing.harness import weavertest

ADDRESS = Address("1 Main St", "Springfield", "IL", "US", 62701)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


def payment_instance(app) -> PaymentImpl:
    for envelope in app.envelopes.values():
        proclet = getattr(envelope, "proclet", None)
        if proclet is None:
            continue
        for instance in proclet._local.instances().values():
            if isinstance(instance, PaymentImpl):
                return instance
    raise AssertionError("no PaymentImpl instance found")


async def test_charge_at_most_once_under_ambiguous_faults():
    from repro.core.errors import Unavailable

    # Every charge attempt is hit by an ambiguous mid-call failure (the
    # server may or may not have executed it).  A retry here would be the
    # double-charge bug.
    plan = FaultPlan(
        [
            FaultRule(
                component="Payment",
                method="charge",
                failure_rate=1.0,
                max_failures=1,
                error=lambda: Unavailable("connection lost mid-call", executed=True),
            )
        ]
    )
    async with weavertest(
        components=ALL_COMPONENTS, mode="multi", faults=plan
    ) as app:
        fe = app.get(Frontend)
        user = "shopper-1"
        await fe.add_to_cart(user, "OLJCESPC7Z", 1)
        with pytest.raises(Exception):
            await fe.checkout(user, "USD", ADDRESS, f"{user}@x.com", CARD)
        # The injected failure was ambiguous, so the charge was issued at
        # most once — and since injection preempted it, exactly zero times.
        assert plan.total_injected == 1
        assert len(payment_instance(app)._charged) == 0

        # The fault budget is spent: the next checkout goes through, and
        # the card carries exactly one charge in total.
        await fe.add_to_cart(user, "OLJCESPC7Z", 1)
        order = await fe.checkout(user, "USD", ADDRESS, f"{user}@x.com", CARD)
        assert order.order_id
        assert len(payment_instance(app)._charged) == 1


async def test_checkout_succeeds_despite_faults_on_idempotent_reads():
    # Read-side faults (catalog, currency) are absorbed by retries; the
    # charge still happens exactly once per order.
    plan = FaultPlan(
        [
            FaultRule(component="ProductCatalog", failure_rate=0.5, max_failures=4),
            FaultRule(component="Currency", failure_rate=0.5, max_failures=4),
        ],
        seed=11,
    )
    async with weavertest(
        components=ALL_COMPONENTS, mode="multi", faults=plan
    ) as app:
        fe = app.get(Frontend)
        for i in range(3):
            user = f"shopper-{i}"
            await fe.add_to_cart(user, "OLJCESPC7Z", 1)
            order = await fe.checkout(user, "USD", ADDRESS, f"{user}@x.com", CARD)
            assert order.order_id
        assert len(payment_instance(app)._charged) == 3
