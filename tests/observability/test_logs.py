"""Structured logs: buffer, aggregation, wire form."""

from __future__ import annotations

from repro.observability.logs import (
    ComponentLogger,
    LogAggregator,
    LogBuffer,
    LogRecord,
    records_from_wire,
    records_to_wire,
)


def test_logger_writes_to_buffer():
    buf = LogBuffer()
    logger = ComponentLogger(buf, "app.Cart", replica_id=2)
    logger.info("item added", user="u1", qty=3)
    (record,) = buf.drain()
    assert record.component == "app.Cart"
    assert record.replica_id == 2
    assert record.level == "info"
    assert dict(record.attributes) == {"user": "u1", "qty": 3}


def test_all_levels():
    buf = LogBuffer()
    logger = ComponentLogger(buf, "c", 0)
    logger.debug("d")
    logger.info("i")
    logger.warning("w")
    logger.error("e")
    assert [r.level for r in buf.drain()] == ["debug", "info", "warning", "error"]


def test_drain_empties_buffer():
    buf = LogBuffer()
    ComponentLogger(buf, "c", 0).info("x")
    assert len(buf.drain()) == 1
    assert buf.drain() == []


def test_ring_buffer_drops_oldest():
    buf = LogBuffer(capacity=3)
    logger = ComponentLogger(buf, "c", 0)
    for i in range(5):
        logger.info(f"m{i}")
    records = buf.drain()
    assert [r.message for r in records] == ["m2", "m3", "m4"]
    assert buf.dropped == 2


def test_aggregator_merges_time_ordered():
    agg = LogAggregator()
    agg.ingest([LogRecord(2.0, "info", "B", 0, "later")])
    agg.ingest([LogRecord(1.0, "info", "A", 0, "earlier")])
    assert [r.message for r in agg.merged()] == ["earlier", "later"]


def test_aggregator_filters():
    agg = LogAggregator()
    agg.ingest(
        [
            LogRecord(1.0, "info", "A", 0, "a-info"),
            LogRecord(2.0, "error", "A", 0, "a-error"),
            LogRecord(3.0, "info", "B", 0, "b-info"),
        ]
    )
    assert [r.message for r in agg.merged(component="A")] == ["a-info", "a-error"]
    assert [r.message for r in agg.merged(level="error")] == ["a-error"]
    assert len(agg) == 3


def test_wire_roundtrip():
    records = [
        LogRecord(1.5, "warning", "app.X", 3, "careful", (("k", "v"), ("n", 2))),
    ]
    assert records_from_wire(records_to_wire(records)) == records


def test_wire_is_jsonable():
    import json

    records = [LogRecord(1.0, "info", "c", 0, "m", (("a", 1),))]
    json.dumps(records_to_wire(records))
