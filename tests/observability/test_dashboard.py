"""The live dashboard: HTTP surfaces, terminal renderer, CLI fetch path."""

from __future__ import annotations

import asyncio
import json

from repro.core.config import AppConfig
from repro.observability.dashboard import fetch, fetch_json, render_dashboard
from repro.runtime.status import render_trace, status_wire
from repro.testing.harness import weavertest

from tests.conftest import Greeter


async def _warm(app, calls: int = 5) -> None:
    g = app.get(Greeter)
    for i in range(calls):
        await g.greet(f"user{i}")
    # Spans/metrics ship on heartbeats; ticks derive series from them.
    for _ in range(30):
        await asyncio.sleep(0.1)
        app.manager.telemetry_tick()
        if app.manager.tracer.spans():
            break


class TestDashboardServer:
    async def test_routes_serve_live_telemetry(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await _warm(app)
            url = await app.serve_dashboard(port=0)

            html = await asyncio.to_thread(fetch, f"{url}/")
            assert "<!doctype html>" in html and "repro live dashboard" in html

            status = await asyncio.to_thread(fetch_json, f"{url}/status.json")
            assert status["replicas"] >= 1
            assert "signals" in status and "series" in status
            assert status["trace_stats"]["sample_rate"] == 1.0

            text = await asyncio.to_thread(fetch, f"{url}/dashboard.txt")
            assert "deployment" in text and "replicas:" in text

            prom = await asyncio.to_thread(fetch, f"{url}/metrics")
            assert "component_method_calls" in prom

    async def test_trace_route_renders_tree(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await _warm(app)
            url = await app.serve_dashboard(port=0)
            spans = app.manager.tracer.spans()
            assert spans
            tid = spans[0].trace_id
            body = await asyncio.to_thread(fetch, f"{url}/trace/{tid:x}")
            assert f"trace {tid:x}" in body

    async def test_unknown_routes_and_bad_ids(self, demo_registry):
        from urllib.error import HTTPError

        async with weavertest(registry=demo_registry, mode="multi") as app:
            url = await app.serve_dashboard(port=0)
            for path, code in (("/nope", 404), ("/trace/zzz", 400)):
                try:
                    await asyncio.to_thread(fetch, f"{url}{path}")
                    raise AssertionError("expected HTTPError")
                except HTTPError as exc:
                    assert exc.code == code

    async def test_serve_dashboard_is_idempotent(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            first = await app.serve_dashboard(port=0)
            second = await app.serve_dashboard(port=0)
            assert first == second


class TestRenderDashboard:
    async def test_plain_frame_has_all_sections(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await _warm(app)
            frame = render_dashboard(app.manager, color=False)
            assert "signals nominal" in frame or "FIRING" in frame
            assert "replicas:" in frame
            assert "\x1b[" not in frame  # no ANSI without color

    async def test_color_frame_has_ansi(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            frame = render_dashboard(app.manager, color=True, clear=True)
            assert "\x1b[" in frame


class TestStatusWire:
    async def test_wire_is_json_serializable(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await _warm(app)
            wire = status_wire(app.manager)
            encoded = json.dumps(wire)
            assert "Greeter" in encoded
            assert wire["traces"], "trace index should not be empty after calls"

    async def test_render_trace_not_found(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            assert "not found" in render_trace(app.manager, 0xDEAD)


class TestCli:
    async def test_status_and_top_and_trace_subcommands(self, demo_registry):
        import contextlib
        import io

        from repro.cli import main

        async with weavertest(registry=demo_registry, mode="multi") as app:
            await _warm(app)
            url = await app.serve_dashboard(port=0)
            tid = app.manager.tracer.spans()[0].trace_id

            def run(*argv):
                buf = io.StringIO()
                with contextlib.redirect_stdout(buf):
                    # main() uses asyncio.run, which cannot nest inside the
                    # running test loop; run it in a thread instead (also
                    # exactly how a real shell invocation executes).
                    code = main(list(argv))
                return code, buf.getvalue()

            code, out = await asyncio.to_thread(
                run, "status", "--json", "--address", url
            )
            assert code == 0
            assert json.loads(out)["replicas"] >= 1

            code, out = await asyncio.to_thread(run, "status", "--address", url)
            assert code == 0 and "replicas:" in out

            code, out = await asyncio.to_thread(
                run, "top", "--once", "--address", url
            )
            assert code == 0 and "deployment" in out

            code, out = await asyncio.to_thread(
                run, "trace", f"{tid:x}", "--address", url
            )
            assert code == 0 and f"trace {tid:x}" in out

    async def test_cli_reports_unreachable_dashboard(self):
        from repro.cli import main

        code = await asyncio.to_thread(
            main, ["status", "--address", "http://127.0.0.1:1"]
        )
        assert code == 1
