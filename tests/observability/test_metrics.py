"""Metrics: counters, gauges, histograms, cross-process merging."""

from __future__ import annotations

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    Timer,
)


class TestCounters:
    def test_inc(self):
        r = MetricsRegistry()
        c = r.counter("requests")
        c.inc()
        c.inc(4)
        assert c.get().value == 5

    def test_labels_are_separate_series(self):
        r = MetricsRegistry()
        c = r.counter("requests")
        c.inc(component="A")
        c.inc(component="B")
        c.inc(component="A")
        assert c.get(component="A").value == 2
        assert c.get(component="B").value == 1

    def test_label_order_irrelevant(self):
        r = MetricsRegistry()
        c = r.counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.get(a="1", b="2").value == 2

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("m")


class TestGauges:
    def test_set_overwrites(self):
        r = MetricsRegistry()
        g = r.gauge("replicas")
        g.set(3)
        g.set(7)
        assert g.get().value == 7


class TestHistograms:
    def test_observe_and_mean(self):
        r = MetricsRegistry()
        h = r.histogram("latency")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        cell = h.get()
        assert cell.count == 3
        assert cell.mean == pytest.approx(0.002)

    def test_quantiles_ordered(self):
        r = MetricsRegistry()
        h = r.histogram("latency")
        for i in range(1, 101):
            h.observe(i / 1000)
        cell = h.get()
        assert cell.quantile(0.5) <= cell.quantile(0.95) <= cell.quantile(0.99)

    def test_median_in_right_bucket(self):
        r = MetricsRegistry()
        h = r.histogram("latency")
        for _ in range(100):
            h.observe(0.004)  # between buckets 3.2ms and 6.4ms
        q = h.get().quantile(0.5)
        assert 0.0032 <= q <= 0.0064

    def test_empty_quantile_zero(self):
        assert HistogramValue(DEFAULT_BUCKETS).quantile(0.5) == 0.0

    def test_merge_requires_same_buckets(self):
        a = HistogramValue((1.0, 2.0))
        b = HistogramValue((1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_counts(self):
        a = HistogramValue(DEFAULT_BUCKETS)
        b = HistogramValue(DEFAULT_BUCKETS)
        a.observe(0.001)
        b.observe(0.002)
        b.observe(0.004)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(0.007)


class TestSnapshots:
    def test_merge_snapshot_counters_add(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        source.counter("calls").inc(3, component="X")
        sink.counter("calls").inc(1, component="X")
        sink.merge_snapshot(source.snapshot())
        assert sink.counter("calls").get(component="X").value == 4

    def test_merge_snapshot_histograms_merge(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        for v in (0.001, 0.002):
            source.histogram("lat").observe(v)
        sink.histogram("lat").observe(0.003)
        sink.merge_snapshot(source.snapshot())
        assert sink.histogram("lat").get().count == 3

    def test_merge_snapshot_gauges_take_latest(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        source.gauge("g").set(9)
        sink.gauge("g").set(1)
        sink.merge_snapshot(source.snapshot())
        assert sink.gauge("g").get().value == 9

    def test_snapshot_is_jsonable(self):
        import json

        r = MetricsRegistry()
        r.counter("c").inc(component="A")
        r.histogram("h").observe(0.001)
        json.dumps(r.snapshot())  # must not raise

    def test_merge_into_empty_registry(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        source.counter("new_metric").inc(7)
        sink.merge_snapshot(source.snapshot())
        assert sink.counter("new_metric").get().value == 7


class TestPrometheusExport:
    def test_counters_and_gauges(self):
        from repro.observability.metrics import render_prometheus

        r = MetricsRegistry()
        r.counter("requests_total").inc(5, component="Cart")
        r.gauge("replicas").set(3)
        text = render_prometheus(r)
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{component="Cart"} 5' in text
        assert "replicas 3" in text

    def test_histogram_cumulative_buckets(self):
        from repro.observability.metrics import render_prometheus

        r = MetricsRegistry()
        h = r.histogram("latency_s", buckets=(0.001, 0.01, 0.1))
        h.observe(0.0005)
        h.observe(0.005)
        h.observe(0.05)
        text = render_prometheus(r)
        assert 'latency_s_bucket{le="0.001"} 1' in text
        assert 'latency_s_bucket{le="0.01"} 2' in text
        assert 'latency_s_bucket{le="0.1"} 3' in text
        assert 'latency_s_bucket{le="+Inf"} 3' in text
        assert "latency_s_count 3" in text

    def test_label_escaping(self):
        from repro.observability.metrics import render_prometheus

        r = MetricsRegistry()
        r.counter("c").inc(component='we"ird\nname')
        text = render_prometheus(r)
        assert '\\"' in text and "\\n" in text

    def test_empty_registry(self):
        from repro.observability.metrics import render_prometheus

        assert render_prometheus(MetricsRegistry()) == ""

    def test_manager_metrics_renderable(self):
        """The aggregated metrics of a real deployment export cleanly."""
        import asyncio

        from repro.observability.metrics import render_prometheus
        from repro.core.config import AppConfig
        from repro.runtime.deployers.multi import deploy_multiprocess
        from tests.conftest import Adder, AdderImpl
        from repro.core.registry import Registry

        async def run():
            registry = Registry()
            registry.register(Adder, AdderImpl)
            app = await deploy_multiprocess(AppConfig(name="prom"), registry=registry)
            await app.get(Adder).add(1, 2)
            for _ in range(30):
                if app.manager.metrics.cells():
                    break
                await asyncio.sleep(0.1)
            text = render_prometheus(app.manager.metrics)
            await app.shutdown()
            return text

        text = asyncio.run(run())
        assert "component_method_latency_s_bucket" in text
        assert "component_method_calls" in text


def test_timer_observes_elapsed():
    r = MetricsRegistry()
    h = r.histogram("op")
    with Timer(h, op="x") as t:
        sum(range(1000))
    assert t.elapsed > 0
    assert h.get(op="x").count == 1
