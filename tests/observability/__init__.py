"""Test package."""
