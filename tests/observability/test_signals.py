"""Anomaly detectors, SLO burn rates, and the signal board."""

from __future__ import annotations

from repro.observability.signals import (
    EwmaDetector,
    SignalBoard,
    Slo,
    default_slos,
)
from repro.observability.timeseries import TimeSeriesStore


class TestEwmaDetector:
    def test_steady_series_never_fires(self):
        det = EwmaDetector()
        for i in range(50):
            assert det.update(10.0 + (i % 3) * 0.1, now=float(i)) is False

    def test_step_change_fires_after_warmup(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        assert det.update(100.0, now=20.0) is True
        assert det.firing and det.since == 20.0

    def test_no_fire_during_warmup(self):
        det = EwmaDetector(min_samples=5)
        assert det.update(0.0, now=0.0) is False
        # Huge spike on sample 2: still warming up, must not fire.
        assert det.update(1000.0, now=1.0) is False

    def test_baseline_frozen_while_firing(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        baseline = det.mean
        for i in range(20, 40):
            assert det.update(100.0, now=float(i)) is True
        # 20 ticks of anomaly did not get absorbed into "normal".
        assert det.mean == baseline

    def test_recovery_unfires(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        det.update(100.0, now=20.0)
        assert det.firing
        assert det.update(10.0, now=21.0) is False
        assert not det.firing and det.since is None

    def test_min_value_floor_suppresses_tiny_absolute_moves(self):
        det = EwmaDetector(min_value=0.05)
        for i in range(20):
            det.update(0.0001, now=float(i))
        # Relative spike but absolutely tiny: below the floor, no fire.
        assert det.update(0.01, now=20.0) is False


class TestSlo:
    def _store_with(self, good_per_s, bad_per_s, seconds=40):
        store = TimeSeriesStore()
        for i in range(seconds):
            store.record("requests", "_total", float(i), good_per_s)
            store.record("errors", "_total", float(i), bad_per_s)
        return store, float(seconds - 1)

    def test_healthy_service_does_not_fire(self):
        store, now = self._store_with(100.0, 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.01)
        sig = slo.evaluate(store, now)
        assert sig.firing is False
        assert sig.kind == "slo"

    def test_full_outage_fires_both_windows(self):
        store = TimeSeriesStore()
        for i in range(40):
            store.record("requests", "_total", float(i), 100.0)
            # Last 35s: every request errors -> burn = 1/0.01 = 100x.
            store.record("errors", "_total", float(i), 100.0 if i >= 5 else 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.01)
        sig = slo.evaluate(store, 39.0)
        assert sig.firing is True
        assert sig.value >= 10.0  # fast-window burn
        assert "burn" in sig.detail

    def test_short_blip_does_not_fire_slow_window(self):
        store = TimeSeriesStore()
        for i in range(40):
            store.record("requests", "_total", float(i), 100.0)
            # Only the last 2 seconds are bad: fast window burns, slow
            # window (30s) stays below 3x -> no fire.
            store.record("errors", "_total", float(i), 100.0 if i >= 38 else 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.1)
        sig = slo.evaluate(store, 39.0)
        assert sig.firing is False

    def test_no_traffic_is_not_an_outage(self):
        store = TimeSeriesStore()
        slo = Slo(name="availability", good="requests", bad="errors")
        assert slo.evaluate(store, 100.0).firing is False

    def test_default_slos_cover_availability_and_latency(self):
        names = {s.name for s in default_slos()}
        assert names == {"availability", "latency"}


class TestSignalBoard:
    def test_detectors_created_lazily_per_scope(self):
        store = TimeSeriesStore()
        board = SignalBoard(store, slos=[])
        for i in range(30):
            store.record("p99_ms", "Cart", float(i), 5.0)
            store.record("p99_ms", "_total", float(i), 5.0)
            board.evaluate(now=float(i))
        keys = {s.key for s in board.signals()}
        assert "anomaly:p99_ms:Cart" in keys
        assert "anomaly:p99_ms:_total" in keys
        assert not board.firing()

    def test_latency_regression_fires_and_logs_event(self):
        store = TimeSeriesStore()
        board = SignalBoard(store, slos=[])
        for i in range(20):
            store.record("p99_ms", "_total", float(i), 5.0)
            board.evaluate(now=float(i))
        store.record("p99_ms", "_total", 20.0, 500.0)
        board.evaluate(now=20.0)
        firing = board.firing()
        assert any(s.name == "p99_ms" for s in firing)
        assert any(e["firing"] for e in board.events)

    def test_to_wire_is_jsonable(self):
        import json

        store = TimeSeriesStore()
        board = SignalBoard(store)
        store.record("error_rate", "_total", 1.0, 0.0)
        board.evaluate(now=1.0)
        wire = board.to_wire()
        json.dumps(wire)
        assert "signals" in wire and "firing" in wire and "events" in wire


class TestEwmaHysteresis:
    """Re-arm behaviour: fire -> resolve -> fire again cleanly."""

    def _warm(self, det, value=10.0, ticks=20, start=0.0):
        for i in range(ticks):
            det.update(value, now=start + float(i))
        return start + float(ticks)

    def test_rearm_after_recovery_fires_again(self):
        det = EwmaDetector(min_value=1.0)
        t = self._warm(det)
        # First incident.
        assert det.update(100.0, now=t) is True
        # Recovery: detector un-fires and resumes learning.
        assert det.update(10.0, now=t + 1) is False
        assert not det.firing and det.since is None
        # Second incident must fire afresh with a fresh `since`.
        assert det.update(100.0, now=t + 2) is True
        assert det.since == t + 2

    def test_since_pins_the_first_firing_tick(self):
        det = EwmaDetector(min_value=1.0)
        t = self._warm(det)
        det.update(100.0, now=t)
        det.update(100.0, now=t + 1)
        det.update(100.0, now=t + 2)
        assert det.firing and det.since == t  # not refreshed per tick

    def test_flapping_input_fires_each_high_phase(self):
        """A metric storm (toggle above/below threshold) re-fires every
        high phase — exactly the storm the remediation budget absorbs."""
        det = EwmaDetector(min_value=1.0)
        t = self._warm(det)
        firings = 0
        for i in range(10):
            high = i % 2 == 0
            fired = det.update(100.0 if high else 10.0, now=t + i)
            assert fired is high
            firings += fired
        assert firings == 5
        # Baseline only learned the low phases (frozen while firing).
        assert det.mean < 15.0

    def test_samples_only_advance_while_not_firing(self):
        det = EwmaDetector(min_value=1.0)
        t = self._warm(det, ticks=20)
        n = det.samples
        det.update(100.0, now=t)  # firing: baseline and count frozen
        assert det.samples == n
        det.update(10.0, now=t + 1)
        assert det.samples == n + 1


class TestSloSparseSeries:
    """Slo.evaluate over gappy / sparse series (quiet periods, restarts)."""

    def _slo(self, **kw):
        defaults = dict(
            name="availability", good="requests", bad="errors", budget=0.01,
            fast_window_s=5.0, slow_window_s=30.0,
        )
        defaults.update(kw)
        return Slo(**defaults)

    def test_gap_in_good_series_does_not_divide_by_zero(self):
        store = TimeSeriesStore()
        slo = self._slo()
        # Traffic recorded long ago; nothing inside either window now.
        store.record("requests", "_total", 100.0, 50.0)
        store.record("errors", "_total", 100.0, 50.0)
        signal = slo.evaluate(store, now=1000.0)
        assert signal.firing is False and signal.value == 0.0

    def test_bad_points_with_no_good_points_in_window(self):
        store = TimeSeriesStore()
        slo = self._slo()
        # Pathological: errors recorded in-window, requests gapped out.
        store.record("errors", "_total", 999.0, 10.0)
        signal = slo.evaluate(store, now=1000.0)
        assert signal.firing is False  # no traffic -> no verdict, not a crash

    def test_sparse_ticks_still_fire_on_sustained_burn(self):
        store = TimeSeriesStore()
        slo = self._slo()
        # Only every 3rd second has points (e.g. sampled telemetry), all bad.
        for t in range(970, 1001, 3):
            store.record("requests", "_total", float(t), 10.0)
            store.record("errors", "_total", float(t), 10.0)
        signal = slo.evaluate(store, now=1000.0)
        assert signal.firing is True

    def test_gap_resets_since_marker(self):
        store = TimeSeriesStore()
        slo = self._slo()
        for t in range(970, 1001):
            store.record("requests", "_total", float(t), 10.0)
            store.record("errors", "_total", float(t), 10.0)
        assert slo.evaluate(store, now=1000.0).firing is True
        first_since = slo.evaluate(store, now=1000.0).since
        assert first_since is not None
        # 2 minutes later every point has aged out of both windows.
        healed = slo.evaluate(store, now=1120.0)
        assert healed.firing is False and healed.since is None

    def test_old_bad_points_age_out_of_slow_window(self):
        store = TimeSeriesStore()
        slo = self._slo()
        # An outage 40-70s ago (outside both windows at now=1000)...
        for t in range(930, 960):
            store.record("requests", "_total", float(t), 10.0)
            store.record("errors", "_total", float(t), 10.0)
        # ...followed by clean traffic in-window.
        for t in range(996, 1001):
            store.record("requests", "_total", float(t), 10.0)
            store.record("errors", "_total", float(t), 0.0)
        signal = slo.evaluate(store, now=1000.0)
        assert signal.firing is False
