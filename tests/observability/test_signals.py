"""Anomaly detectors, SLO burn rates, and the signal board."""

from __future__ import annotations

from repro.observability.signals import (
    EwmaDetector,
    SignalBoard,
    Slo,
    default_slos,
)
from repro.observability.timeseries import TimeSeriesStore


class TestEwmaDetector:
    def test_steady_series_never_fires(self):
        det = EwmaDetector()
        for i in range(50):
            assert det.update(10.0 + (i % 3) * 0.1, now=float(i)) is False

    def test_step_change_fires_after_warmup(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        assert det.update(100.0, now=20.0) is True
        assert det.firing and det.since == 20.0

    def test_no_fire_during_warmup(self):
        det = EwmaDetector(min_samples=5)
        assert det.update(0.0, now=0.0) is False
        # Huge spike on sample 2: still warming up, must not fire.
        assert det.update(1000.0, now=1.0) is False

    def test_baseline_frozen_while_firing(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        baseline = det.mean
        for i in range(20, 40):
            assert det.update(100.0, now=float(i)) is True
        # 20 ticks of anomaly did not get absorbed into "normal".
        assert det.mean == baseline

    def test_recovery_unfires(self):
        det = EwmaDetector(min_value=1.0)
        for i in range(20):
            det.update(10.0, now=float(i))
        det.update(100.0, now=20.0)
        assert det.firing
        assert det.update(10.0, now=21.0) is False
        assert not det.firing and det.since is None

    def test_min_value_floor_suppresses_tiny_absolute_moves(self):
        det = EwmaDetector(min_value=0.05)
        for i in range(20):
            det.update(0.0001, now=float(i))
        # Relative spike but absolutely tiny: below the floor, no fire.
        assert det.update(0.01, now=20.0) is False


class TestSlo:
    def _store_with(self, good_per_s, bad_per_s, seconds=40):
        store = TimeSeriesStore()
        for i in range(seconds):
            store.record("requests", "_total", float(i), good_per_s)
            store.record("errors", "_total", float(i), bad_per_s)
        return store, float(seconds - 1)

    def test_healthy_service_does_not_fire(self):
        store, now = self._store_with(100.0, 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.01)
        sig = slo.evaluate(store, now)
        assert sig.firing is False
        assert sig.kind == "slo"

    def test_full_outage_fires_both_windows(self):
        store = TimeSeriesStore()
        for i in range(40):
            store.record("requests", "_total", float(i), 100.0)
            # Last 35s: every request errors -> burn = 1/0.01 = 100x.
            store.record("errors", "_total", float(i), 100.0 if i >= 5 else 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.01)
        sig = slo.evaluate(store, 39.0)
        assert sig.firing is True
        assert sig.value >= 10.0  # fast-window burn
        assert "burn" in sig.detail

    def test_short_blip_does_not_fire_slow_window(self):
        store = TimeSeriesStore()
        for i in range(40):
            store.record("requests", "_total", float(i), 100.0)
            # Only the last 2 seconds are bad: fast window burns, slow
            # window (30s) stays below 3x -> no fire.
            store.record("errors", "_total", float(i), 100.0 if i >= 38 else 0.0)
        slo = Slo(name="availability", good="requests", bad="errors", budget=0.1)
        sig = slo.evaluate(store, 39.0)
        assert sig.firing is False

    def test_no_traffic_is_not_an_outage(self):
        store = TimeSeriesStore()
        slo = Slo(name="availability", good="requests", bad="errors")
        assert slo.evaluate(store, 100.0).firing is False

    def test_default_slos_cover_availability_and_latency(self):
        names = {s.name for s in default_slos()}
        assert names == {"availability", "latency"}


class TestSignalBoard:
    def test_detectors_created_lazily_per_scope(self):
        store = TimeSeriesStore()
        board = SignalBoard(store, slos=[])
        for i in range(30):
            store.record("p99_ms", "Cart", float(i), 5.0)
            store.record("p99_ms", "_total", float(i), 5.0)
            board.evaluate(now=float(i))
        keys = {s.key for s in board.signals()}
        assert "anomaly:p99_ms:Cart" in keys
        assert "anomaly:p99_ms:_total" in keys
        assert not board.firing()

    def test_latency_regression_fires_and_logs_event(self):
        store = TimeSeriesStore()
        board = SignalBoard(store, slos=[])
        for i in range(20):
            store.record("p99_ms", "_total", float(i), 5.0)
            board.evaluate(now=float(i))
        store.record("p99_ms", "_total", 20.0, 500.0)
        board.evaluate(now=20.0)
        firing = board.firing()
        assert any(s.name == "p99_ms" for s in firing)
        assert any(e["firing"] for e in board.events)

    def test_to_wire_is_jsonable(self):
        import json

        store = TimeSeriesStore()
        board = SignalBoard(store)
        store.record("error_rate", "_total", 1.0, 0.0)
        board.evaluate(now=1.0)
        wire = board.to_wire()
        json.dumps(wire)
        assert "signals" in wire and "firing" in wire and "events" in wire
