"""Tail-sampled trace storage: keep rules, retention, critical path."""

from __future__ import annotations

import random

from repro.observability.tracestore import TraceStore
from repro.observability.tracing import Span


def span(
    trace_id,
    span_id,
    parent_id=None,
    *,
    name="op",
    start=0.0,
    dur=0.01,
    status="ok",
    **attrs,
):
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start_s=start,
        end_s=start + dur,
        attributes=attrs,
        status=status,
    )


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTailSampling:
    def test_error_trace_always_kept(self):
        clock = FakeClock()
        store = TraceStore(sample_rate=0.0, clock=clock)
        store.ingest([span(1, 10), span(1, 11, 10, status="error")])
        clock.t += 5.0
        store.maintain()
        assert store.trace(1)
        assert store.kept_traces == 1

    def test_deadline_exceeded_code_always_kept(self):
        clock = FakeClock()
        store = TraceStore(sample_rate=0.0, clock=clock)
        store.ingest([span(2, 20, code="deadline_exceeded")])
        clock.t += 5.0
        store.maintain()
        assert store.trace(2)

    def test_unremarkable_traces_sampled_by_rate(self):
        clock = FakeClock()
        store = TraceStore(sample_rate=0.0, clock=clock, rng=random.Random(7))
        for i in range(30):
            store.ingest([span(100 + i, 1000 + i)])
        clock.t += 5.0
        store.maintain()
        assert store.kept_traces == 0
        assert store.sampled_out_traces == 30
        assert store.sampled_out_spans == 30

    def test_slow_tail_kept_after_distribution_warms(self):
        clock = FakeClock()
        store = TraceStore(sample_rate=0.0, clock=clock, rng=random.Random(7))
        # 30 fast traces warm the rolling root-duration distribution.
        for i in range(30):
            store.ingest([span(i + 1, (i + 1) * 10, dur=0.001)])
            clock.t += 2.0
            store.maintain()
        # A root far above p95 must be kept despite sample_rate=0.
        store.ingest([span(999, 9990, dur=1.0)])
        clock.t += 2.0
        store.maintain()
        assert store.trace(999)

    def test_pending_traces_visible_before_finalization(self):
        store = TraceStore(sample_rate=0.0, clock=FakeClock())
        store.ingest([span(5, 50)])
        # Not yet quiesced: still queryable (partial traces are traces).
        assert store.trace(5)
        assert 5 in store.traces()
        assert len(store.spans()) == 1

    def test_quiescence_respects_late_spans(self):
        clock = FakeClock()
        store = TraceStore(sample_rate=1.0, quiescence_s=1.0, clock=clock)
        store.ingest([span(7, 70)])
        clock.t += 0.5
        store.ingest([span(7, 71, 70)])  # keeps the trace warm
        clock.t += 0.7
        store.maintain()  # only 0.7s quiet: not finalized
        assert store.stats()["pending"] == 1
        clock.t += 1.0
        store.maintain()
        assert store.stats()["pending"] == 0
        assert len(store.trace(7)) == 2


class TestRetention:
    def test_eviction_is_counted(self):
        clock = FakeClock()
        store = TraceStore(max_traces=3, sample_rate=1.0, clock=clock)
        for i in range(1, 8):
            store.ingest([span(i, i * 10)])
            clock.t += 5.0
            store.maintain()
        stats = store.stats()
        assert stats["kept"] == 3
        assert stats["evicted_traces"] == 4
        assert stats["evicted_spans"] == 4
        # Newest survive.
        assert store.trace(7) and not store.trace(1)

    def test_per_trace_span_cap_counts_drops(self):
        store = TraceStore(max_spans_per_trace=5, clock=FakeClock())
        store.ingest([span(1, i) for i in range(1, 10)])
        assert store.dropped_spans == 4
        assert len(store.trace(1)) == 5

    def test_pending_bound_finalizes_stalest(self):
        clock = FakeClock()
        store = TraceStore(max_traces=5, sample_rate=1.0, clock=clock)
        for i in range(1, 10):
            store.ingest([span(i, i * 10)])
        # Pending set was forced down to max_traces by early finalization.
        assert store.stats()["pending"] <= 5
        assert store.stats()["kept"] >= 4


class TestCriticalPath:
    def test_follows_last_finishing_child(self):
        store = TraceStore(clock=FakeClock())
        store.ingest(
            [
                span(1, 1, name="root", start=0.0, dur=1.0),
                span(1, 2, 1, name="fast", start=0.1, dur=0.1),
                span(1, 3, 1, name="slow", start=0.1, dur=0.8),
                span(1, 4, 3, name="leaf", start=0.2, dur=0.5),
            ]
        )
        path = store.critical_path(1)
        assert [s.name for s, _ in path] == ["root", "slow", "leaf"]
        exclusive = {s.name: excl for s, excl in path}
        assert abs(exclusive["root"] - 0.2) < 1e-9  # 1.0 - 0.8
        assert abs(exclusive["slow"] - 0.3) < 1e-9  # 0.8 - 0.5
        assert abs(exclusive["leaf"] - 0.5) < 1e-9

    def test_orphan_spans_tolerated(self):
        store = TraceStore(clock=FakeClock())
        # Parent never arrived (its proclet died before heartbeat).
        store.ingest([span(1, 2, parent_id=999, name="orphan", dur=0.2)])
        path = store.critical_path(1)
        assert [s.name for s, _ in path] == ["orphan"]

    def test_empty_trace(self):
        store = TraceStore(clock=FakeClock())
        assert store.critical_path(12345) == []

    def test_trace_tree_matches_tracer_surface(self):
        store = TraceStore(clock=FakeClock())
        store.ingest(
            [
                span(1, 1, name="root", start=0.0, dur=1.0),
                span(1, 2, 1, name="child", start=0.1, dur=0.1),
            ]
        )
        tree = store.trace_tree(1)
        assert [(d, s.name) for d, s in tree] == [(0, "root"), (1, "child")]

    def test_reset_clears_everything(self):
        store = TraceStore(clock=FakeClock())
        store.ingest([span(1, 1)])
        store.reset()
        assert store.spans() == []
