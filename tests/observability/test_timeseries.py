"""Time-series ring buffers and the telemetry differencing pipeline."""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import (
    RingSeries,
    TelemetryPipeline,
    TimeSeriesStore,
    sparkline,
)


class TestRingSeries:
    def test_append_and_points(self):
        s = RingSeries("rps", capacity=4)
        for i in range(3):
            s.append(float(i), float(i * 10))
        assert [p.value for p in s.points()] == [0.0, 10.0, 20.0]
        assert s.latest().value == 20.0
        assert len(s) == 3

    def test_wraps_at_capacity_keeping_newest(self):
        s = RingSeries("rps", capacity=4)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s) == 4
        assert [p.value for p in s.points()] == [6.0, 7.0, 8.0, 9.0]

    def test_points_since_filters_by_timestamp(self):
        s = RingSeries("x", capacity=8)
        for i in range(6):
            s.append(float(i), float(i))
        assert [p.ts for p in s.points(since=3.0)] == [3.0, 4.0, 5.0]

    def test_window_sum_and_mean(self):
        s = RingSeries("x", capacity=16)
        for i in range(10):
            s.append(float(i), 2.0)
        assert s.window_sum(3.0, now=9.0) == 2.0 * 4  # ts 6,7,8,9
        assert s.window_mean(3.0, now=9.0) == 2.0

    def test_empty_series(self):
        s = RingSeries("x")
        assert s.latest() is None
        assert s.points() == []
        assert s.window_mean(5.0, now=100.0) == 0.0


class TestTimeSeriesStore:
    def test_record_and_query(self):
        store = TimeSeriesStore()
        store.record("rps", "_total", 1.0, 5.0)
        store.record("rps", "_total", 2.0, 7.0)
        store.record("rps", "Cart", 2.0, 3.0)
        assert store.latest("rps") == 7.0
        assert store.latest("rps", "Cart") == 3.0
        assert store.latest("rps", "missing") is None
        assert ("rps", "Cart") in store.names()

    def test_query_window_anchors_to_latest_point(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.record("rps", "_total", float(i), float(i))
        pts = store.query("rps", window_s=3.0)
        assert [p.ts for p in pts] == [6.0, 7.0, 8.0, 9.0]

    def test_to_wire_is_jsonable_and_bounded(self):
        import json

        store = TimeSeriesStore()
        for i in range(200):
            store.record("rps", "_total", float(i), float(i))
        wire = store.to_wire(last=50)
        assert len(wire["rps"]["_total"]) == 50
        json.dumps(wire)


def _tick_pair(pipeline, registry, t0=100.0, t1=101.0):
    pipeline.tick(registry, t0)  # baseline
    return t1


class TestTelemetryPipeline:
    def test_counter_deltas_become_rates(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        calls = reg.counter("component_method_calls")
        errors = reg.counter("component_method_errors")
        calls.inc(10, component="Cart", method="add")
        pipeline.tick(reg, 100.0)  # baseline tick records nothing
        assert store.latest("rps") is None

        calls.inc(20, component="Cart", method="add")
        errors.inc(2, component="Cart", method="add")
        pipeline.tick(reg, 102.0)
        assert store.latest("requests", "Cart") == 20.0
        assert store.latest("rps", "Cart") == 10.0  # 20 over 2s
        assert store.latest("error_rate", "Cart") == 0.1
        assert store.latest("rps", "_total") == 10.0

    def test_histogram_deltas_become_quantiles(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store, slow_threshold_s=0.25)
        reg = MetricsRegistry()
        hist = reg.histogram("component_method_latency_s")
        pipeline.tick(reg, 100.0)
        for _ in range(98):
            hist.observe(0.001, component="Cart")
        hist.observe(1.0, component="Cart")
        hist.observe(1.0, component="Cart")
        pipeline.tick(reg, 101.0)
        assert store.latest("p50_ms", "Cart") < 10.0
        assert store.latest("p99_ms", "Cart") > 100.0
        # Exactly two observations above the 0.25s SLO threshold.
        assert store.latest("slow_requests", "Cart") == 2.0

    def test_client_family_gets_prefixed_series(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        hist = reg.histogram("rpc_client_latency_s")
        pipeline.tick(reg, 100.0)
        hist.observe(0.05, component="Cart")
        pipeline.tick(reg, 101.0)
        assert store.latest("client_p99_ms", "Cart") is not None
        assert store.latest("p99_ms", "Cart") is None

    def test_quantiles_reflect_the_interval_not_history(self):
        """Deltas: a fast past must not dilute a slow present."""
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        hist = reg.histogram("component_method_latency_s")
        for _ in range(1000):
            hist.observe(0.001, component="Cart")
        pipeline.tick(reg, 100.0)
        for _ in range(10):
            hist.observe(0.5, component="Cart")
        pipeline.tick(reg, 101.0)
        # All 10 observations in this interval were slow; history's 1000
        # fast ones are baseline, not signal.
        assert store.latest("p50_ms", "Cart") > 100.0

    def test_worker_gauges_recorded_per_worker_scope(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        reg.gauge("worker_loop_lag_s").set(0.002, proclet="app-g0-r1", worker="0")
        pipeline.tick(reg, 100.0)
        assert store.latest("worker_loop_lag_s", "app-g0-r1/w0") == 0.002

    def test_breaker_trips_counted(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        trans = reg.counter("breaker_transitions")
        pipeline.tick(reg, 100.0)
        trans.inc(to="open", component="Cart")
        trans.inc(to="closed", component="Cart")
        pipeline.tick(reg, 101.0)
        assert store.latest("breaker_trips") == 1.0

    def test_breaker_trips_recorded_per_component(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        trans = reg.counter("breaker_transitions")
        pipeline.tick(reg, 100.0)
        trans.inc(2, to="open", component="Cart")
        trans.inc(to="open", component="Catalog")
        pipeline.tick(reg, 101.0)
        assert store.latest("breaker_trips", "Cart") == 2.0
        assert store.latest("breaker_trips", "Catalog") == 1.0
        assert store.latest("breaker_trips", "_total") == 3.0

    def test_breaker_half_opens_get_their_own_series(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        trans = reg.counter("breaker_transitions")
        pipeline.tick(reg, 100.0)
        trans.inc(to="half_open", component="Cart")
        trans.inc(to="open", component="Cart")
        pipeline.tick(reg, 101.0)
        assert store.latest("breaker_half_opens", "Cart") == 1.0
        assert store.latest("breaker_half_opens", "_total") == 1.0
        assert store.latest("breaker_trips", "Cart") == 1.0  # not conflated

    def test_drain_events_become_per_component_series(self):
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg = MetricsRegistry()
        drains = reg.counter("replica_drains")
        pipeline.tick(reg, 100.0)
        drains.inc(component="Cart")
        drains.inc(component="Cart")
        drains.inc(component="Checkout")
        pipeline.tick(reg, 101.0)
        assert store.latest("drains", "Cart") == 2.0
        assert store.latest("drains", "Checkout") == 1.0
        assert store.latest("drains", "_total") == 3.0
        # Quiet tick: series record zero, not a gap, so window sums age out.
        pipeline.tick(reg, 102.0)
        assert store.latest("drains", "_total") == 0.0

    def test_counter_reset_clamps_to_zero(self):
        """A replica restart must not produce negative rates."""
        store = TimeSeriesStore()
        pipeline = TelemetryPipeline(store)
        reg1 = MetricsRegistry()
        reg1.counter("component_method_calls").inc(100, component="Cart", method="m")
        pipeline.tick(reg1, 100.0)
        reg2 = MetricsRegistry()  # fresh registry: counters restart at 0
        reg2.counter("component_method_calls").inc(5, component="Cart", method="m")
        pipeline.tick(reg2, 101.0)
        assert store.latest("requests", "Cart") == 0.0


class TestSparkline:
    def test_renders_relative_heights(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_renders_low(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_truncates_to_width(self):
        assert len(sparkline(range(100), width=30)) == 30
