"""Tracing: span nesting through async context."""

from __future__ import annotations

import asyncio

from repro.observability.tracing import Tracer, current_span


def test_root_span_creates_trace():
    t = Tracer()
    with t.start_span("root") as span:
        assert span.parent_id is None
        assert current_span() is span
    assert current_span() is None
    assert len(t.spans()) == 1


def test_nested_spans_share_trace():
    t = Tracer()
    with t.start_span("outer") as outer:
        with t.start_span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id


def test_sibling_spans():
    t = Tracer()
    with t.start_span("parent") as parent:
        with t.start_span("a"):
            pass
        with t.start_span("b"):
            pass
    tree = t.trace_tree(parent.trace_id)
    assert [(d, s.name) for d, s in tree] == [(0, "parent"), (1, "a"), (1, "b")]


def test_separate_roots_are_separate_traces():
    t = Tracer()
    with t.start_span("one"):
        pass
    with t.start_span("two"):
        pass
    assert len(t.traces()) == 2


def test_exception_marks_error():
    t = Tracer()
    try:
        with t.start_span("failing"):
            raise ValueError("boom")
    except ValueError:
        pass
    (span,) = t.spans()
    assert span.status == "error"
    assert "boom" in span.attributes["exception"]


def test_attributes_recorded():
    t = Tracer()
    with t.start_span("op", component="Cart", method="add"):
        pass
    (span,) = t.spans()
    assert span.attributes == {"component": "Cart", "method": "add"}


def test_duration_positive():
    t = Tracer()
    with t.start_span("op"):
        sum(range(100))
    assert t.spans()[0].duration_s > 0


async def test_context_flows_through_await():
    t = Tracer()

    async def child():
        with t.start_span("child") as span:
            await asyncio.sleep(0)
            return span

    with t.start_span("parent") as parent:
        span = await child()
    assert span.parent_id == parent.span_id


async def test_concurrent_tasks_get_independent_contexts():
    t = Tracer()

    async def work(name):
        with t.start_span(name) as span:
            await asyncio.sleep(0.01)
            return span

    spans = await asyncio.gather(work("a"), work("b"))
    assert spans[0].trace_id != spans[1].trace_id
    assert all(s.parent_id is None for s in spans)


def test_reset():
    t = Tracer()
    with t.start_span("x"):
        pass
    t.reset()
    assert t.spans() == []


def test_max_spans_bounds_memory():
    t = Tracer(max_spans=3)
    for i in range(10):
        with t.start_span(f"s{i}"):
            pass
    assert len(t.spans()) == 3
