"""Tracing hardening: drop accounting, retroactive spans, per-process ids."""

from __future__ import annotations

import os
import struct

import pytest

from repro.observability.logs import LogBuffer, LogRecord
from repro.observability.tracing import Span, Tracer, assemble_tree


class TestDropAccounting:
    def test_tracer_counts_dropped_spans_instead_of_silence(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.start_span(f"s{i}"):
                pass
        assert len(tracer.spans()) == 3
        assert tracer.dropped == 2

    def test_ingest_counts_overflow(self):
        tracer = Tracer(max_spans=2)
        spans = [
            Span(trace_id=1, span_id=i, parent_id=None, name="x", start_s=0.0)
            for i in range(5)
        ]
        tracer.ingest(spans)
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 3

    def test_log_buffer_counts_dropped_records(self):
        buf = LogBuffer(capacity=2)
        for i in range(5):
            buf.append(
                LogRecord(
                    timestamp=float(i),
                    level="info",
                    component="C",
                    replica_id=0,
                    message=str(i),
                )
            )
        assert len(buf) == 2
        assert buf.dropped == 3


class TestRecordSpan:
    def test_retroactive_span_joins_given_context(self):
        tracer = Tracer()
        s = tracer.record_span(
            "attempt Cart.add#1",
            trace=(42, 7),
            start_s=100.0,
            end_s=100.5,
            status="error",
            code="unavailable",
        )
        assert s.trace_id == 42 and s.parent_id == 7
        assert s.duration_s == 0.5
        assert tracer.spans() == [s]

    def test_retroactive_span_without_context_starts_a_trace(self):
        tracer = Tracer()
        s = tracer.record_span("solo", trace=(0, None), start_s=1.0, end_s=2.0)
        assert s.trace_id != 0 and s.parent_id is None


class TestAssembleTree:
    def test_orphans_render_as_roots(self):
        spans = [
            Span(trace_id=1, span_id=2, parent_id=999, name="orphan", start_s=1.0),
            Span(trace_id=1, span_id=3, parent_id=2, name="child", start_s=2.0),
        ]
        tree = assemble_tree(spans)
        assert [(d, s.name) for d, s in tree] == [(0, "orphan"), (1, "child")]

    def test_siblings_ordered_by_start(self):
        root = Span(trace_id=1, span_id=1, parent_id=None, name="r", start_s=0.0)
        b = Span(trace_id=1, span_id=3, parent_id=1, name="b", start_s=2.0)
        a = Span(trace_id=1, span_id=2, parent_id=1, name="a", start_s=1.0)
        tree = assemble_tree([root, b, a])
        assert [s.name for _, s in tree] == ["r", "a", "b"]


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-based test")
class TestPerProcessIds:
    def test_forked_child_generates_different_ids(self):
        """The id RNG reseeds after fork, so parent and child sequences
        diverge (identical sequences would collide span ids across
        proclets when the manager merges their spans)."""
        from repro.observability import tracing

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            ids = [tracing._new_id() for _ in range(8)]
            os.write(write_fd, struct.pack("<8Q", *ids))
            os.close(write_fd)
            os._exit(0)
        os.close(write_fd)
        data = b""
        while len(data) < 64:
            chunk = os.read(read_fd, 64 - len(data))
            if not chunk:
                break
            data += chunk
        os.close(read_fd)
        os.waitpid(pid, 0)
        child_ids = set(struct.unpack("<8Q", data))
        parent_ids = {tracing._new_id() for _ in range(8)}
        assert not child_ids & parent_ids
