"""procmain: the subprocess proclet entry point's failure modes."""

from __future__ import annotations

import asyncio
import json
import sys

import pytest


async def run_procmain(tmp_path, spec: dict) -> tuple[int, str]:
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    process = await asyncio.create_subprocess_exec(
        sys.executable,
        "-m",
        "repro.runtime.procmain",
        str(tmp_path / "never-listens.sock"),
        str(spec_path),
        stdout=asyncio.subprocess.DEVNULL,
        stderr=asyncio.subprocess.PIPE,
    )
    try:
        _, stderr = await asyncio.wait_for(process.communicate(), timeout=30)
    except asyncio.TimeoutError:
        process.kill()
        raise
    return process.returncode, stderr.decode()


class TestProcmainGuards:
    async def test_unregistered_components_exit_2(self, tmp_path):
        code, err = await run_procmain(
            tmp_path,
            {
                "proclet_id": "p",
                "group_id": 0,
                "modules": [],
                "components": ["ghost.Component"],
                "version": "x",
                "config": {},
            },
        )
        assert code == 2
        assert "not registered" in err

    async def test_version_mismatch_exit_3(self, tmp_path):
        """A child built from different code refuses to join (§4.4)."""
        code, err = await run_procmain(
            tmp_path,
            {
                "proclet_id": "p",
                "group_id": 0,
                "modules": ["tests.conftest"],
                "components": ["tests.conftest.Adder"],
                "version": "not-the-real-version",
                "config": {},
            },
        )
        assert code == 3
        assert "refusing to join" in err

    async def test_bad_usage_exit_64(self):
        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.runtime.procmain",
            stderr=asyncio.subprocess.PIPE,
        )
        _, stderr = await asyncio.wait_for(process.communicate(), timeout=15)
        assert process.returncode == 64
        assert b"usage" in stderr
