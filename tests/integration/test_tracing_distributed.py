"""Cross-proclet distributed tracing and the status report (§5.1, Fig. 3)."""

from __future__ import annotations

import asyncio

import pytest

from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.observability.tracing import Tracer, current_context, spans_from_wire, spans_to_wire
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.status import render_status

ADDRESS = Address("1 Main", "Springfield", "IL", "US", 62701)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def traced_boutique():
    app = await deploy_multiprocess(
        AppConfig(name="traced"), components=ALL_COMPONENTS, mode="inproc"
    )
    fe = app.get(Frontend)
    await fe.add_to_cart("trace-user", "OLJCESPC7Z", 1)
    await fe.checkout("trace-user", "USD", ADDRESS, "t@x.com", CARD)
    # Telemetry (spans) ships with heartbeats; wait for them to land.
    for _ in range(40):
        if len(app.manager.tracer.spans()) > 10:
            break
        await asyncio.sleep(0.1)
    return app


class TestDistributedTraces:
    async def test_spans_cross_process_boundaries(self):
        app = await traced_boutique()
        spans = app.manager.tracer.spans()
        names = {s.name for s in spans}
        # The checkout fan-out appears as joined-up spans from many proclets.
        assert any("Checkout.place_order" in n for n in names)
        assert any("Payment.charge" in n for n in names)
        await app.shutdown()

    async def test_single_trace_covers_the_whole_checkout(self):
        app = await traced_boutique()
        tracer = app.manager.tracer
        # Find the trace containing the checkout; it must also contain the
        # payment span — i.e., the context propagated over at least two
        # real RPC hops (driver -> Frontend -> Checkout -> Payment).
        checkout_traces = {
            s.trace_id for s in tracer.spans() if "Checkout.place_order" in s.name
        }
        assert checkout_traces
        best = max(
            checkout_traces, key=lambda t: len(tracer.traces().get(t, []))
        )
        names_in_trace = {s.name for s in tracer.traces()[best]}
        assert any("Payment.charge" in n for n in names_in_trace)
        assert any("Email.send_order_confirmation" in n for n in names_in_trace)
        await app.shutdown()

    async def test_trace_tree_depth_reflects_nesting(self):
        app = await traced_boutique()
        tracer = app.manager.tracer
        checkout_spans = [s for s in tracer.spans() if "Checkout.place_order" in s.name]
        trace_id = checkout_spans[0].trace_id
        tree = tracer.trace_tree(trace_id)
        depths = {span.name: depth for depth, span in tree}
        server_payment = [
            d for n, d in depths.items() if n == "Payment.charge"
        ]
        server_checkout = [
            d for n, d in depths.items() if n == "Checkout.place_order"
        ]
        assert min(server_payment) > min(server_checkout)
        await app.shutdown()

    def test_span_wire_roundtrip(self):
        tracer = Tracer()
        with tracer.start_span("outer", component="X"):
            with tracer.start_span("inner"):
                pass
        spans = tracer.drain()
        assert spans_from_wire(spans_to_wire(spans)) == spans
        assert tracer.spans() == []  # drained

    def test_current_context_outside_span_is_zero(self):
        assert current_context() == (0, 0)

    def test_remote_parent_joins_trace(self):
        tracer = Tracer()
        with tracer.start_span("child", remote_parent=(123, 456)) as span:
            assert span.trace_id == 123
            assert span.parent_id == 456


class TestStatusReport:
    async def test_render_status_covers_everything(self):
        app = await traced_boutique()
        report = render_status(app.manager)
        assert f"version {app.version}" in report
        assert "replicas:" in report
        assert "call graph" in report
        assert "Frontend" in report
        assert "traces (" in report
        assert "ms" in report
        await app.shutdown()

    async def test_render_status_empty_deployment(self, demo_registry):
        from repro.runtime.deployers.multi import MultiProcessApp

        build = demo_registry.freeze()
        app = MultiProcessApp(build, AppConfig(name="empty"))
        await app.start(eager=False)
        report = render_status(app.manager)
        assert "replicas: 0" in report
        await app.shutdown()
