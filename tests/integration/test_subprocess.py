"""Real child-process deployments (the paper's multiprocess runtime, §4.3).

These are the heaviest tests in the suite: every proclet is a forked
Python interpreter, envelopes talk to children over UNIX control sockets,
and the data plane crosses real process boundaries.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess

ADDRESS = Address("1 Hacker Way", "Menlo Park", "CA", "US", 94025)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def subprocess_boutique(colocate=(), name="subproc"):
    config = AppConfig(name=name, colocate=colocate)
    return await deploy_multiprocess(
        config, components=ALL_COMPONENTS, mode="subprocess"
    )


class TestSubprocessDeployment:
    async def test_full_order_across_eleven_processes(self):
        app = await subprocess_boutique()
        try:
            assert app.manager.total_replicas() == 11
            pids = {e.pid for e in app.envelopes.values()}
            assert len(pids) == 11  # truly distinct OS processes
            fe = app.get(Frontend)
            await fe.add_to_cart("u1", "OLJCESPC7Z", 2)
            order = await fe.checkout("u1", "USD", ADDRESS, "u@x.com", CARD)
            assert order.items
        finally:
            await app.shutdown()

    async def test_children_reaped_on_shutdown(self):
        app = await subprocess_boutique(name="reap")
        envelopes = list(app.envelopes.values())
        await app.shutdown()
        assert all(e.returncode is not None for e in envelopes)

    async def test_colocated_subprocess_groups(self):
        groups = (
            tuple(n for n in (
                "repro.boutique.cart.Cart",
                "repro.boutique.cartstore.CartStore",
                "repro.boutique.frontend.Frontend",
                "repro.boutique.checkout.Checkout",
            )),
        )
        app = await subprocess_boutique(colocate=groups, name="coloc")
        try:
            assert app.manager.total_replicas() == 8  # 4 merged + 7 singles
            fe = app.get(Frontend)
            await fe.add_to_cart("u1", "OLJCESPC7Z", 1)
            order = await fe.checkout("u1", "EUR", ADDRESS, "u@x.com", CARD)
            assert order.shipping_cost.currency_code == "EUR"
        finally:
            await app.shutdown()

    async def test_kill_child_process_and_recover(self):
        app = await subprocess_boutique(name="kill")
        try:
            fe = app.get(Frontend)
            await fe.add_to_cart("u1", "OLJCESPC7Z", 1)

            victim = next(
                proclet_id
                for proclet_id, env in app.envelopes.items()
                if "catalog" in str(env._spec.get("components", "")).lower()
                or True  # any victim works; pick the first
            )
            app.kill_replica(victim)
            await app.manager.sweep()
            await asyncio.sleep(0.3)

            # The group was relaunched as a fresh child; the app serves.
            home = await fe.home("u1", "USD")
            assert home.products
        finally:
            await app.shutdown()
