"""Cross-process trace assembly under the multi deployer.

The client span is created in the caller's proclet, the server span in the
callee's; they reach the manager on *independent* heartbeats and must still
assemble into one tree: client span -> wire context -> server span parent
linkage.  Failed attempts are recorded retroactively as siblings under the
client span, so a failover retry is visible in the assembled trace.
"""

from __future__ import annotations

import asyncio

from repro.core.config import AppConfig
from repro.testing.harness import weavertest

from tests.conftest import Adder, Flaky, Greeter


async def _spans_matching(app, predicate, timeout_s: float = 8.0):
    """Wait for heartbeats to land spans satisfying ``predicate``."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        spans = [s for s in app.manager.tracer.spans() if predicate(s)]
        if spans:
            return spans
        if asyncio.get_running_loop().time() > deadline:
            return []
        await asyncio.sleep(0.1)


def _by_trace(spans):
    out = {}
    for s in spans:
        out.setdefault(s.trace_id, []).append(s)
    return out


class TestClientServerLinkage:
    async def test_server_span_parents_to_client_span(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await app.get(Adder).add(2, 3)
            clients = await _spans_matching(
                app, lambda s: s.name == "rpc Adder.add"
            )
            assert clients, "driver's client span never reached the manager"
            client = clients[0]
            assert client.attributes.get("side") == "client"

            servers = await _spans_matching(
                app,
                lambda s: s.name == "Adder.add"
                and s.attributes.get("side") == "server"
                and s.trace_id == client.trace_id,
            )
            assert servers, "server span never joined the client's trace"
            server = servers[0]
            # The linkage the wire context exists for: the server-side span
            # hangs directly off the client-side span.
            assert server.parent_id == client.span_id
            assert server.attributes.get("side") == "server"

    async def test_two_hop_trace_assembles_into_one_tree(self, demo_registry):
        """driver -> Greeter -> Adder: three proclets, one tree."""
        async with weavertest(registry=demo_registry, mode="multi") as app:
            await app.get(Greeter).greet("ada")
            clients = await _spans_matching(
                app, lambda s: s.name == "rpc Greeter.greet"
            )
            assert clients
            tid = clients[0].trace_id
            # Wait for the deepest hop to land too.
            assert await _spans_matching(
                app, lambda s: s.name == "Adder.add" and s.trace_id == tid
            )
            tree = app.manager.tracer.trace_tree(tid)
            depths = {}
            for depth, span in tree:
                depths.setdefault(span.name, depth)
            assert depths["rpc Greeter.greet"] < depths["Greeter.greet"]
            assert depths["Greeter.greet"] < depths["rpc Adder.add"]
            assert depths["rpc Adder.add"] < depths["Adder.add"]


class TestFailoverRetrySiblings:
    async def test_retried_attempts_are_siblings_under_client_span(
        self, demo_registry
    ):
        """A server-side Unavailable retried by the runtime leaves an error
        attempt span and a success attempt span, siblings in the trace."""
        async with weavertest(registry=demo_registry, mode="multi") as app:
            assert await app.get(Flaky).work(1) == "done"

            failed = await _spans_matching(
                app, lambda s: s.name == "attempt Flaky.work#0"
            )
            assert failed, "failed attempt span missing from the trace"
            retried = await _spans_matching(
                app,
                lambda s: s.name == "attempt Flaky.work#1"
                and s.trace_id == failed[0].trace_id,
            )
            assert retried, "retry attempt span missing from the trace"

            assert failed[0].status == "error"
            assert failed[0].attributes.get("code") == "unavailable"
            assert retried[0].status == "ok"
            # Siblings: both parented to the same client span.
            assert failed[0].parent_id == retried[0].parent_id
            clients = [
                s
                for s in app.manager.tracer.trace(failed[0].trace_id)
                if s.name == "rpc Flaky.work"
            ]
            assert clients and clients[0].span_id == failed[0].parent_id

    async def test_replica_failover_produces_sibling_attempts(
        self, demo_registry
    ):
        """Kill one of two replicas without telling the manager: the stale
        route fails an attempt, the retry lands on the survivor, and the
        trace shows both attempts against *different* addresses."""
        config = AppConfig(name="t", replicas={Adder: 2})
        async with weavertest(
            registry=demo_registry, mode="multi", config=config
        ) as app:
            adder = app.get(Adder)
            assert await adder.add(1, 1) == 2

            name = app.build.by_iface(Adder).name
            victim = next(
                proclet_id
                for proclet_id, env in app.envelopes.items()
                if name in env.proclet.hosted
            )
            app.kill_replica(victim, silent=True)

            # Round-robin over the stale route table: within a few calls
            # one attempt hits the dead replica and fails over.
            for i in range(10):
                assert await adder.add(i, i) == 2 * i

            attempts = await _spans_matching(
                app, lambda s: s.name.startswith("attempt Adder.add#")
            )
            assert attempts, "failover never produced attempt spans"
            by_trace = _by_trace(attempts)
            tid, siblings = max(by_trace.items(), key=lambda kv: len(kv[1]))
            assert len(siblings) >= 2, "expected failed + retried attempts"
            statuses = {s.status for s in siblings}
            assert statuses == {"error", "ok"}
            addresses = {s.attributes.get("address") for s in siblings}
            assert len(addresses) >= 2, "retry should move to another replica"
            assert len({s.parent_id for s in siblings}) == 1
