"""Every example in examples/ must actually run.

These are the repository's front door; a broken example is a broken
deliverable.  Each runs as a real subprocess (fresh interpreter, no test
fixtures) with arguments chosen to keep runtime short.
"""

from __future__ import annotations

import asyncio
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

CASES = [
    ("quickstart.py", [], b"Hello, World!"),
    ("blue_green_rollout.py", [], b"rollout completed: True"),
    ("placement_advisor.py", [], b"recommended co-location groups"),
    ("chaos_testing.py", [], b"availability:"),
    ("observability_tour.py", [], b"tour complete: series -> signal -> trace"),
    ("boutique_demo.py", [], b"shut down cleanly"),
    ("deployer_tour.py", [], b"shut down: envelopes stopped"),
    ("table2_sim.py", ["--sim-qps", "150"], b"factors (ours vs paper):"),
]


async def run_example(name: str, args: list[str]) -> tuple[int, bytes]:
    process = await asyncio.create_subprocess_exec(
        sys.executable,
        os.path.join(EXAMPLES_DIR, name),
        *args,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.STDOUT,
    )
    try:
        stdout, _ = await asyncio.wait_for(process.communicate(), timeout=240)
    except asyncio.TimeoutError:
        process.kill()
        raise
    return process.returncode, stdout


@pytest.mark.parametrize("name,args,marker", CASES, ids=[c[0] for c in CASES])
async def test_example_runs(name, args, marker):
    code, output = await run_example(name, args)
    assert code == 0, output.decode(errors="replace")[-2000:]
    assert marker in output, output.decode(errors="replace")[-2000:]
