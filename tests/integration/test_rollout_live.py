"""Atomic rollouts over live deployments: two versions, zero cross-talk."""

from __future__ import annotations

import pytest

from repro.core.config import AppConfig, RolloutConfig
from repro.core.errors import VersionMismatch
from repro.core.registry import Registry
from repro.runtime.deployers.multi import MultiProcessApp
from repro.runtime.rollout import BlueGreenRollout, run_rollout
from repro.transport.client import ConnectionPool

from tests.conftest import DEMO_PAIRS, Adder, Greeter


def fresh_registry() -> Registry:
    registry = Registry()
    for iface, impl in DEMO_PAIRS:
        registry.register(iface, impl)
    return registry


async def deployed_version(salt: str) -> MultiProcessApp:
    registry = fresh_registry()
    build = registry.freeze(salt=salt)
    app = MultiProcessApp(build, AppConfig(name=f"app-{salt}"))
    return await app.start()


class TestLiveBlueGreen:
    async def test_versions_differ_with_salt(self):
        blue = await deployed_version("build-1")
        green = await deployed_version("build-2")
        assert blue.version != green.version
        await blue.shutdown()
        await green.shutdown()

    async def test_rollout_shifts_real_traffic(self):
        blue = await deployed_version("build-1")
        green = await deployed_version("build-2")

        async def probe(pinned):
            value = await pinned.app.get(Adder).add(20, 22)
            assert value == 42

        report = await run_rollout(
            blue, green, config=RolloutConfig(steps=4), probe=probe, seed=9,
            requests_per_step=5,
        )
        assert report.completed
        assert report.requests_by_version.get(green.version, 0) > 0
        await green.shutdown()

    async def test_data_plane_rejects_cross_version(self):
        """A proclet of version A cannot call into version B's replicas:
        the handshake (not policy) forbids it."""
        blue = await deployed_version("build-1")
        green = await deployed_version("build-2")
        try:
            green_name = green.build.by_iface(Adder).name
            green_address = green.manager.replica_addresses(green_name)[0]
            # Dial green's replica with blue's version.
            pool = ConnectionPool(codec="compact", version=blue.version)
            with pytest.raises(VersionMismatch):
                await pool.get(green_address)
            await pool.close()
        finally:
            await blue.shutdown()
            await green.shutdown()

    async def test_abort_keeps_blue_serving(self):
        blue = await deployed_version("build-1")
        green = await deployed_version("build-2")
        try:
            rollout = BlueGreenRollout(
                blue, green, config=RolloutConfig(steps=2), seed=1
            )
            rollout.advance()
            rollout.abort()
            pinned = rollout.pin()
            assert pinned.version == blue.version
            assert await pinned.app.get(Greeter).greet("Z") == "Hello, Z! (2)"
        finally:
            await blue.shutdown()
            await green.shutdown()
