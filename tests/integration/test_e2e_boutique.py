"""End-to-end boutique flows across every deployment shape (§5.3, §6.1)."""

from __future__ import annotations

import asyncio

import pytest

from repro.baseline.service import deploy_baseline
from repro.boutique import (
    ALL_COMPONENTS,
    Address,
    Cart,
    CartItem,
    CreditCard,
    Frontend,
)
from repro.core.app import init
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess

ADDRESS = Address("1600 Amphitheatre Pkwy", "Mountain View", "CA", "US", 94043)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def shopping_journey(app, user: str):
    fe = app.get(Frontend)
    home = await fe.home(user, "USD")
    await fe.browse_product(user, home.products[0].id, "USD")
    await fe.add_to_cart(user, home.products[0].id, 2)
    await fe.add_to_cart(user, "6E92ZMYYFZ", 1)
    order = await fe.checkout(user, "USD", ADDRESS, f"{user}@x.com", CARD)
    assert await fe.view_cart(user, "USD") == []
    return order


class TestJourneyAcrossDeployments:
    async def test_single_process(self):
        app = await init(components=ALL_COMPONENTS)
        order = await shopping_journey(app, "u-single")
        assert len(order.items) == 2
        await app.shutdown()

    async def test_multiprocess_inproc(self):
        app = await deploy_multiprocess(
            AppConfig(name="shop"), components=ALL_COMPONENTS, mode="inproc"
        )
        order = await shopping_journey(app, "u-multi")
        assert len(order.items) == 2
        await app.shutdown()

    async def test_http_baseline(self):
        app = await deploy_baseline(components=ALL_COMPONENTS)
        order = await shopping_journey(app, "u-base")
        assert len(order.items) == 2
        await app.shutdown()

    async def test_orders_identical_across_worlds(self):
        """Deployment shape must never change behaviour."""
        totals = []
        for make in (
            lambda: init(components=ALL_COMPONENTS),
            lambda: deploy_multiprocess(
                AppConfig(name="shop"), components=ALL_COMPONENTS, mode="inproc"
            ),
            lambda: deploy_baseline(components=ALL_COMPONENTS),
        ):
            app = await make()
            order = await shopping_journey(app, "parity")
            totals.append(order.total("USD"))
            await app.shutdown()
        assert len(set(totals)) == 1

    async def test_colocation_groups_from_recommendation(self):
        """§5.1 loop closed: observe traffic, co-locate the chatty pairs,
        redeploy, and the app still works with fewer processes."""
        from repro.runtime.placement import recommend_groups

        observe = await init(components=ALL_COMPONENTS)
        await shopping_journey(observe, "observer")
        groups = recommend_groups(
            observe.call_graph, observe.build.names(), max_group_size=4, min_traffic=3
        )
        await observe.shutdown()
        assert len(groups) < 11  # something merged

        config = AppConfig(name="opt", colocate=tuple(groups))
        app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
        assert app.manager.total_replicas() == len(groups)
        order = await shopping_journey(app, "after-opt")
        assert order.items
        await app.shutdown()

    async def test_concurrent_users_multiprocess(self):
        app = await deploy_multiprocess(
            AppConfig(name="shop"), components=ALL_COMPONENTS, mode="inproc"
        )
        orders = await asyncio.gather(
            *[shopping_journey(app, f"user-{i}") for i in range(8)]
        )
        assert len({o.order_id for o in orders}) == 8
        await app.shutdown()

    async def test_routed_cartstore_affinity_multiprocess(self):
        config = AppConfig(name="shop", replicas={"repro.boutique.cartstore.CartStore": 3})
        app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
        cart = app.get(Cart)
        for i in range(20):
            await cart.add_item(f"u{i}", CartItem("OLJCESPC7Z", 1))
        for i in range(20):
            assert await cart.get_cart(f"u{i}") == [CartItem("OLJCESPC7Z", 1)]
        await app.shutdown()
