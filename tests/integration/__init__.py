"""Test package."""
