"""The deployment CLI."""

from __future__ import annotations

import asyncio
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_deploy_requires_module(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])

    def test_deploy_flags(self):
        args = build_parser().parse_args(
            ["deploy", "cfg.toml", "--module", "repro.boutique", "--subprocess", "--qps", "25"]
        )
        assert args.config == "cfg.toml"
        assert args.module == ["repro.boutique"]
        assert args.subprocess
        assert args.qps == 25.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["destroy"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "repro 0.1.0" in out

    def test_version_with_module(self, capsys):
        assert main(["version", "--module", "repro.boutique"]) == 0
        out = capsys.readouterr().out
        assert "deployment version:" in out

    def test_components_lists_boutique(self, capsys):
        assert main(["components", "--module", "repro.boutique"]) == 0
        out = capsys.readouterr().out
        assert "repro.boutique.frontend.Frontend" in out
        assert "add@user_id" in out  # routing keys shown
        assert "impl:" in out

    def test_deploy_and_drive(self, tmp_path, capsys):
        config = tmp_path / "app.toml"
        config.write_text('name = "cli-boutique"\ncodec = "compact"\n')
        code = main(
            [
                "deploy",
                str(config),
                "--module",
                "repro.boutique",
                "--drive-boutique",
                "--qps",
                "30",
                "--duration",
                "1.0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "deployment 'cli-boutique'" in captured.out
        assert "replicas:" in captured.out
        assert "drove" in captured.err

    def test_deploy_bad_config_is_clean_error(self, tmp_path, capsys):
        config = tmp_path / "bad.toml"
        config.write_text('codec = "msgpack"\n')
        code = main(["deploy", str(config), "--module", "repro.boutique"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


def test_module_entry_point():
    """``python -m repro version`` works as a real subprocess."""
    import subprocess

    result = subprocess.run(
        [sys.executable, "-m", "repro", "version"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "repro 0.1.0" in result.stdout
