"""The proclet daemon: registration, hosting, stubs, control handling."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import AppConfig
from repro.core.errors import ComponentNotFound, Unavailable
from repro.runtime import pipes
from repro.runtime.proclet import Proclet

from tests.conftest import Adder, Greeter


class ScriptedRuntime:
    """A RuntimeAPI double recording every interaction."""

    def __init__(self, build):
        self.build = build
        self.registered = []
        self.heartbeats = []
        self.started = []
        self.metrics = []
        self.logs = []
        self.call_graphs = []
        self.hosting: dict[str, list[str]] = {}
        self.routing: dict[str, dict] = {}

    async def register_replica(self, proclet_id, address, group_id):
        self.registered.append((proclet_id, address, group_id))

    async def components_to_host(self, proclet_id):
        return self.hosting.get(proclet_id, [])

    async def start_component(self, component):
        self.started.append(component)

    async def routing_info(self, component):
        return self.routing.get(component, {"component": component, "replicas": []})

    async def heartbeat(self, proclet_id, load):
        self.heartbeats.append((proclet_id, load))

    async def export_metrics(self, proclet_id, snapshot):
        self.metrics.append(snapshot)

    async def export_logs(self, proclet_id, records):
        self.logs.append(records)

    async def export_call_graph(self, proclet_id, edges):
        self.call_graphs.append(edges)


@pytest.fixture
def runtime(demo_build):
    return ScriptedRuntime(demo_build)


async def make_proclet(demo_build, runtime, hosted=None, **kwargs):
    proclet = Proclet(
        "p-test",
        demo_build,
        AppConfig(),
        runtime,
        heartbeat_interval_s=kwargs.pop("heartbeat_interval_s", 0.05),
        **kwargs,
    )
    runtime.hosting["p-test"] = hosted or []
    await proclet.start()
    return proclet


class TestLifecycle:
    async def test_registers_with_real_address(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        (proclet_id, address, group_id) = runtime.registered[0]
        assert proclet_id == "p-test"
        assert address.startswith("tcp://127.0.0.1:")
        await proclet.stop()

    async def test_hosts_what_runtime_says(self, demo_build, runtime):
        adder = demo_build.by_iface(Adder).name
        proclet = await make_proclet(demo_build, runtime, hosted=[adder])
        assert proclet.hosted == {adder}
        await proclet.stop()

    async def test_hosted_components_eagerly_instantiated(self, demo_build, runtime):
        adder = demo_build.by_iface(Adder).name
        proclet = await make_proclet(demo_build, runtime, hosted=[adder])
        assert adder in proclet._local.instances()
        await proclet.stop()

    async def test_unknown_hosted_name_rejected(self, demo_build, runtime):
        proclet = Proclet("p-test", demo_build, AppConfig(), runtime)
        with pytest.raises(ComponentNotFound):
            await proclet.host_components(["ghost.Component"])
        await proclet.stop()

    async def test_heartbeats_flow(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        await asyncio.sleep(0.2)
        assert runtime.heartbeats
        assert runtime.metrics
        await proclet.stop()


class TestStubResolution:
    async def test_hosted_component_gets_local_stub(self, demo_build, runtime):
        adder = demo_build.by_iface(Adder).name
        proclet = await make_proclet(demo_build, runtime, hosted=[adder])
        stub = proclet.get(Adder)
        assert await stub.add(1, 2) == 3  # no server needed: local
        await proclet.stop()

    async def test_unhosted_component_gets_remote_stub(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        stub = proclet.get(Adder)
        # No replicas known anywhere: resolving fails with Unavailable and
        # the runtime was asked to StartComponent.
        with pytest.raises(Unavailable):
            await stub.add(1, 2)
        assert demo_build.by_iface(Adder).name in runtime.started
        await proclet.stop()

    async def test_two_proclets_talk_over_rpc(self, demo_build, runtime):
        adder_name = demo_build.by_iface(Adder).name
        greeter_name = demo_build.by_iface(Greeter).name

        server = Proclet("p-server", demo_build, AppConfig(), runtime, heartbeat_interval_s=3600)
        runtime.hosting["p-server"] = [adder_name]
        await server.start()

        runtime.routing[adder_name] = {
            "component": adder_name,
            "replicas": [server.address],
        }

        client = Proclet("p-client", demo_build, AppConfig(), runtime, heartbeat_interval_s=3600)
        runtime.hosting["p-client"] = [greeter_name]
        await client.start()

        greeter = client.get(Greeter)
        assert await greeter.greet("Iris") == "Hello, Iris! (5)"
        await client.stop()
        await server.stop()


class TestControl:
    async def test_host_components_push(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        adder = demo_build.by_iface(Adder).name
        await proclet.handle_control("host_components", {"components": [adder]})
        assert proclet.hosted == {adder}
        await proclet.stop()

    async def test_routing_info_push(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        adder = demo_build.by_iface(Adder).name
        await proclet.handle_control(
            pipes.ROUTING_INFO,
            {"component": adder, "replicas": ["tcp://127.0.0.1:1"]},
        )
        assert proclet._table.replicas(adder) == ("tcp://127.0.0.1:1",)
        await proclet.stop()

    async def test_health_query(self, demo_build, runtime):
        adder = demo_build.by_iface(Adder).name
        proclet = await make_proclet(demo_build, runtime, hosted=[adder])
        status = await proclet.handle_control("health", {})
        assert status["status"] == "serving"
        assert status["hosted"] == [adder]
        await proclet.stop()

    async def test_shutdown_push(self, demo_build, runtime):
        proclet = await make_proclet(demo_build, runtime)
        await proclet.handle_control(pipes.SHUTDOWN, {})
        await asyncio.sleep(0.01)
        assert proclet._stopped
