"""Live re-placement: moving components between running proclets (§3.1).

    "The runtime may also move component replicas around, e.g., to
    co-locate two chatty components in the same OS process so that
    communication between the components is done locally."

No redeploy, no new build: the manager pushes new hosted sets to running
proclets, routing re-resolves, and calls keep working throughout.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.component import component_name
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess

from tests.conftest import Adder, Flaky, Greeter, KVStore


def hosted_by(app, iface):
    """The proclets currently hosting a component (by live envelope)."""
    name = component_name(iface)
    return {
        proclet_id
        for proclet_id, env in app.envelopes.items()
        if not env.stopped and name in env.proclet.hosted
    }


async def deployed(demo_registry):
    return await deploy_multiprocess(AppConfig(name="move"), registry=demo_registry)


class TestMergeLive:
    async def test_merge_makes_calls_local(self, demo_registry):
        app = await deployed(demo_registry)
        greeter = app.get(Greeter)
        assert await greeter.greet("pre") == "Hello, pre! (4)"
        assert hosted_by(app, Adder) != hosted_by(app, Greeter)

        # Merge the chatty pair into one process, live.
        names = {component_name(c): c for c in (Adder, Greeter, KVStore, Flaky)}
        new_groups = [
            (component_name(Adder), component_name(Greeter)),
            (component_name(KVStore),),
            (component_name(Flaky),),
        ]
        await app.replace_placement(new_groups)

        # Both components now live in the same proclet(s)...
        assert hosted_by(app, Adder) == hosted_by(app, Greeter)
        # ...and the app still answers.
        assert await greeter.greet("post") == "Hello, post! (5)"

        # The Greeter->Adder edge is local in whichever proclet serves it.
        for proclet_id in hosted_by(app, Greeter):
            proclet = app.envelopes[proclet_id].proclet
            assert component_name(Adder) in proclet.hosted
        await app.shutdown()

    async def test_merge_keeps_all_components_reachable(self, demo_registry):
        app = await deployed(demo_registry)
        await app.get(KVStore).put("k", "v")
        await app.replace_placement(
            [
                (component_name(Adder), component_name(Greeter), component_name(Flaky)),
                (component_name(KVStore),),
            ]
        )
        assert await app.get(Adder).add(1, 1) == 2
        assert await app.get(Flaky).work(0) == "done"
        # KVStore's group and proclet were untouched: state survived.
        assert await app.get(KVStore).get("k") == "v"
        await app.shutdown()


class TestSplitLive:
    async def test_split_colocated_group(self, demo_registry):
        config = AppConfig(name="split", colocate=((Adder, Greeter),))
        app = await deploy_multiprocess(config, registry=demo_registry)
        assert hosted_by(app, Adder) == hosted_by(app, Greeter)

        await app.replace_placement(
            [
                (component_name(Adder),),
                (component_name(Greeter),),
                (component_name(KVStore),),
                (component_name(Flaky),),
            ]
        )
        # One side keeps the old proclet, the other starts lazily on use.
        assert await app.get(Greeter).greet("x") == "Hello, x! (2)"
        assert await app.get(Adder).add(2, 2) == 4
        assert hosted_by(app, Adder) != hosted_by(app, Greeter)
        await app.shutdown()


class TestReplacementValidation:
    async def test_incomplete_placement_rejected(self, demo_registry):
        from repro.core.errors import PlacementError

        app = await deployed(demo_registry)
        with pytest.raises(PlacementError):
            await app.replace_placement([(component_name(Adder),)])
        # Failed re-placement must not corrupt the live deployment.
        assert await app.get(Greeter).greet("ok") == "Hello, ok! (3)"
        await app.shutdown()

    async def test_noop_replacement(self, demo_registry):
        app = await deployed(demo_registry)
        groups = [tuple(g.components) for g in app.manager.plan.groups]
        await app.replace_placement(groups)
        assert await app.get(Adder).add(3, 4) == 7
        await app.shutdown()


class TestBoutiqueLiveOptimization:
    async def test_observe_then_optimize_without_redeploy(self):
        """The full §5.1 loop with zero downtime: traffic -> merged call
        graph at the manager -> recommendation -> live re-placement ->
        same workload keeps running."""
        from repro.boutique import ALL_COMPONENTS, Frontend
        from repro.runtime.placement import recommend_groups

        app = await deploy_multiprocess(
            AppConfig(name="liveopt"), components=ALL_COMPONENTS, mode="inproc"
        )
        fe = app.get(Frontend)
        for i in range(8):
            await fe.add_to_cart(f"u{i}", "OLJCESPC7Z", 1)
            await fe.view_cart(f"u{i}", "USD")
        # Wait for the call graph to reach the manager via heartbeats.
        for _ in range(40):
            if app.manager.call_graph.total_calls() > 20:
                break
            await asyncio.sleep(0.1)

        groups = recommend_groups(
            app.manager.call_graph, app.build.names(), max_group_size=3, min_traffic=5
        )
        assert len(groups) < 11
        await app.replace_placement(groups)

        # Still serving, now with fewer processes' worth of groups.
        for i in range(4):
            assert await fe.view_cart(f"u{i}", "USD") is not None
        home = await fe.home("post-opt", "USD")
        assert len(home.products) == 9
        await app.shutdown()
