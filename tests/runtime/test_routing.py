"""Sliced affinity routing and load balancing (§5.2)."""

from __future__ import annotations

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PlacementError
from repro.runtime.routing import (
    Assignment,
    LoadBalancer,
    RoutingTable,
    build_assignment,
    key_hash,
    moved_fraction,
)

REPLICAS = [f"tcp://10.0.0.{i}:9000" for i in range(1, 6)]


class TestKeyHash:
    def test_deterministic(self):
        assert key_hash("user-1") == key_hash("user-1")

    def test_different_keys_differ(self):
        assert key_hash("user-1") != key_hash("user-2")

    def test_any_repr_able_key(self):
        key_hash(("tuple", 1))
        key_hash(42)
        key_hash(None)

    def test_64_bit_range(self):
        assert 0 <= key_hash("x") < 1 << 64


class TestAssignment:
    def test_same_key_same_replica(self):
        a = build_assignment("comp", REPLICAS, generation=1)
        for key in ("a", "b", "user-123"):
            assert a.replica_for(key) == a.replica_for(key)

    def test_assignment_deterministic_across_builds(self):
        a = build_assignment("comp", REPLICAS, generation=1)
        b = build_assignment("comp", REPLICAS, generation=2)
        assert [a.replica_for(f"k{i}") for i in range(50)] == [
            b.replica_for(f"k{i}") for i in range(50)
        ]

    def test_balance_reasonable(self):
        a = build_assignment("comp", REPLICAS, generation=1)
        counts = collections.Counter(a.replica_for(f"key-{i}") for i in range(5000))
        assert set(counts) == set(REPLICAS)
        expected = 5000 / len(REPLICAS)
        for replica, n in counts.items():
            assert 0.5 * expected < n < 1.6 * expected, (replica, n)

    def test_single_replica_owns_everything(self):
        a = build_assignment("comp", REPLICAS[:1], generation=1)
        assert {a.replica_for(f"k{i}") for i in range(100)} == {REPLICAS[0]}

    def test_empty_replicas_rejected(self):
        with pytest.raises(PlacementError):
            build_assignment("comp", [], generation=1)

    def test_adding_replica_moves_about_one_nth(self):
        """The consistent-hashing minimal-movement property."""
        old = build_assignment("comp", REPLICAS[:4], generation=1)
        new = build_assignment("comp", REPLICAS[:5], generation=2)
        moved = moved_fraction(old, new)
        assert 0.10 < moved < 0.35  # ideal 1/5 = 0.20

    def test_removing_replica_moves_only_its_keys(self):
        old = build_assignment("comp", REPLICAS, generation=1)
        survivors = REPLICAS[:-1]
        new = build_assignment("comp", survivors, generation=2)
        for i in range(500):
            key = f"key-{i}"
            if old.replica_for(key) in survivors:
                assert new.replica_for(key) == old.replica_for(key)

    def test_wire_roundtrip(self):
        a = build_assignment("comp", REPLICAS, generation=7)
        b = Assignment.from_wire(a.to_wire())
        assert b == a
        assert b.replica_for("k") == a.replica_for("k")


class TestLoadBalancer:
    def test_round_robin_without_load_info(self):
        lb = LoadBalancer()
        picks = [lb.pick(REPLICAS) for _ in range(len(REPLICAS) * 2)]
        assert collections.Counter(picks) == {r: 2 for r in REPLICAS}

    def test_single_replica(self):
        lb = LoadBalancer()
        assert lb.pick(["only"]) == "only"

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            LoadBalancer().pick([])

    def test_prefers_less_loaded(self):
        lb = LoadBalancer(seed=7)
        for _ in range(50):
            lb.acquire(REPLICAS[0])
        counts = collections.Counter(lb.pick(REPLICAS[:2]) for _ in range(100))
        assert counts[REPLICAS[1]] > counts[REPLICAS[0]]

    def test_release_balances_back(self):
        lb = LoadBalancer(seed=7)
        lb.acquire("a")
        lb.release("a")
        assert lb._inflight == {}


class TestRoutingTable:
    def test_pick_without_info_is_none(self):
        assert RoutingTable().pick("comp", None) is None

    def test_pick_unrouted_round_robins(self):
        t = RoutingTable()
        t.update_replicas("comp", REPLICAS[:2])
        picks = {t.pick("comp", None) for _ in range(10)}
        assert picks == set(REPLICAS[:2])

    def test_pick_routed_uses_assignment(self):
        t = RoutingTable()
        t.update_assignment(build_assignment("comp", REPLICAS, generation=1))
        assert t.pick("comp", "user-1") == t.pick("comp", "user-1")

    def test_stale_generation_ignored(self):
        t = RoutingTable()
        new = build_assignment("comp", REPLICAS[:2], generation=5)
        old = build_assignment("comp", REPLICAS, generation=3)
        t.update_assignment(new)
        t.update_assignment(old)  # must not regress
        assert t.assignment("comp").generation == 5

    def test_invalidate(self):
        t = RoutingTable()
        t.update_replicas("comp", REPLICAS)
        t.invalidate("comp")
        assert t.pick("comp", None) is None

    def test_components_listing(self):
        t = RoutingTable()
        t.update_replicas("b", REPLICAS)
        t.update_assignment(build_assignment("a", REPLICAS, generation=1))
        assert t.components() == ["a", "b"]


@settings(max_examples=50, deadline=None)
@given(st.text(min_size=1, max_size=30))
def test_property_affinity_stable_within_generation(key):
    a = build_assignment("c", REPLICAS, generation=1)
    assert a.replica_for(key) == a.replica_for(key)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_property_all_replicas_used(n):
    a = build_assignment("c", REPLICAS[:1] * 0 + [f"r{i}" for i in range(n)], generation=1)
    owners = {a.replica_for(f"key-{i}") for i in range(2000)}
    assert len(owners) == n


class TestBreakerAwareRouting:
    """RoutingTable picks steer around OPEN breakers (failure domains)."""

    def _table(self, replicas=None, **policy_kwargs):
        from repro.transport.breaker import BreakerPolicy, BreakerSet

        policy_kwargs.setdefault("consecutive_failures", 1)
        breakers = BreakerSet(BreakerPolicy(**policy_kwargs))
        table = RoutingTable(breakers)
        table.update_replicas("c", replicas or REPLICAS)
        return table, breakers

    def test_unrouted_pick_skips_open_replica(self):
        table, breakers = self._table()
        breakers.record("c", REPLICAS[0], ok=False)  # trips
        for _ in range(50):
            assert table.pick("c", None) != REPLICAS[0]

    def test_routed_key_falls_back_along_ring(self):
        table, breakers = self._table()
        table.update_assignment(build_assignment("c", REPLICAS, generation=1))
        owner = table.assignment("c").replica_for("user-7")
        breakers.record("c", owner, ok=False)  # eject the key's owner
        fallback = table.pick("c", "user-7")
        assert fallback != owner
        # Deterministic: every pick (and every proclet) lands on the same
        # fallback while the ejection lasts.
        assert table.pick("c", "user-7") == fallback
        # Matches the ring's declared failover order.
        ring_order = list(table.assignment("c").owners_for("user-7"))
        assert ring_order[0] == owner
        assert fallback == ring_order[1]

    def test_all_open_degrades_to_least_recently_tripped(self):
        import itertools

        table, breakers = self._table(replicas=REPLICAS[:3], open_for_s=60.0)
        clock = itertools.count()
        breakers._clock = lambda: float(next(clock))  # strictly ordered trips
        for addr in REPLICAS[:3]:
            breakers.record("c", addr, ok=False)
        # Oldest trip = first killed; both routed and unrouted picks
        # degrade to it instead of refusing service.
        assert table.pick("c", None) == REPLICAS[0]
        table.update_assignment(build_assignment("c", REPLICAS[:3], generation=1))
        assert table.pick("c", "any-key") == REPLICAS[0]

    def test_update_replicas_prunes_breakers(self):
        table, breakers = self._table()
        breakers.record("c", REPLICAS[0], ok=False)
        table.update_replicas("c", REPLICAS[1:])
        assert breakers.states("c") == {}

    def test_owners_for_yields_all_distinct_replicas(self):
        a = build_assignment("c", REPLICAS, generation=1)
        order = list(a.owners_for("some-key"))
        assert sorted(order) == sorted(REPLICAS)
        assert order[0] == a.replica_for("some-key")


class TestOwnersForEdgeCases:
    """The failover-order contract repro.state's ownership checks lean on."""

    def test_single_replica_ring_yields_exactly_one_owner(self):
        a = build_assignment("c", REPLICAS[:1], generation=1)
        for key in ("a", "user-123", ""):
            assert list(a.owners_for(key)) == [REPLICAS[0]]

    def test_empty_ring_raises_not_loops(self):
        a = Assignment(component="c", generation=1, points=(), owners=(), replicas=())
        with pytest.raises(PlacementError):
            a.replica_for("k")
        with pytest.raises(PlacementError):
            list(a.owners_for("k"))

    def test_all_breakers_open_routed_pick_still_serves(self):
        """Total-ejection fallback: the degraded pick is a ring member,
        never None and never an exception (availability over affinity)."""
        from repro.transport.breaker import BreakerPolicy, BreakerSet

        breakers = BreakerSet(BreakerPolicy(consecutive_failures=1, open_for_s=60.0))
        table = RoutingTable(breakers)
        table.update_assignment(build_assignment("c", REPLICAS[:2], generation=1))
        table.update_replicas("c", REPLICAS[:2])
        for addr in REPLICAS[:2]:
            breakers.record("c", addr, ok=False)
        pick = table.pick("c", "user-1")
        assert pick in REPLICAS[:2]

    def test_owner_list_stable_across_add_remove_cycle(self):
        """Add a replica, then remove it again: every key's full failover
        order — not just its primary — returns to exactly the original,
        so a caller that cached generation-1 ordering is never misled by
        a ring that has since bounced back."""
        before = build_assignment("c", REPLICAS[:4], generation=1)
        bounced = build_assignment("c", REPLICAS[:5], generation=2)
        after = build_assignment("c", REPLICAS[:4], generation=3)
        for i in range(200):
            key = f"key-{i}"
            assert list(before.owners_for(key)) == list(after.owners_for(key))
            # And while the extra replica was in, survivors kept their
            # relative order (consistent hashing inserts, never reshuffles).
            without_new = [
                r for r in bounced.owners_for(key) if r != REPLICAS[4]
            ]
            assert without_new == list(before.owners_for(key))

    def test_first_owner_matches_replica_for_on_every_ring_size(self):
        for n in range(1, len(REPLICAS) + 1):
            a = build_assignment("c", REPLICAS[:n], generation=n)
            for i in range(50):
                key = f"key-{i}"
                assert next(a.owners_for(key)) == a.replica_for(key)
