"""Placement plans and call-graph-driven co-location recommendations."""

from __future__ import annotations

import pytest

from repro.core.call_graph import ROOT, CallGraph
from repro.core.config import AppConfig
from repro.core.errors import PlacementError
from repro.runtime.placement import (
    PlacementPlan,
    GroupPlacement,
    plan_from_config,
    recommend_groups,
)

NAMES = ["app.A", "app.B", "app.C", "app.D"]


class TestPlanFromConfig:
    def test_singleton_default(self):
        plan = plan_from_config(AppConfig().resolve(NAMES))
        assert len(plan.groups) == 4
        assert all(g.replicas == 1 for g in plan.groups)

    def test_group_replicas_take_max_of_members(self):
        cfg = AppConfig(colocate=(("app.A", "app.B"),), replicas={"app.B": 3})
        plan = plan_from_config(cfg.resolve(NAMES))
        group = plan.group_of("app.A")
        assert group.replicas == 3

    def test_group_of_unknown_raises(self):
        plan = plan_from_config(AppConfig().resolve(NAMES))
        with pytest.raises(PlacementError):
            plan.group_of("app.Z")

    def test_validate_accepts_exact_cover(self):
        plan = plan_from_config(AppConfig().resolve(NAMES))
        plan.validate(NAMES)

    def test_validate_rejects_missing(self):
        plan = PlacementPlan(groups=(GroupPlacement(0, ("app.A",), 1),))
        with pytest.raises(PlacementError, match="missing"):
            plan.validate(NAMES)

    def test_validate_rejects_duplicates(self):
        plan = PlacementPlan(
            groups=(
                GroupPlacement(0, ("app.A", "app.B"), 1),
                GroupPlacement(1, ("app.A", "app.C", "app.D"), 1),
            )
        )
        with pytest.raises(PlacementError):
            plan.validate(NAMES)


def traffic_graph() -> CallGraph:
    g = CallGraph()
    for _ in range(100):
        g.record("app.A", "app.B", "m", latency_s=0.001, local=False, bytes_sent=100)
    for _ in range(5):
        g.record("app.C", "app.D", "m", latency_s=0.001, local=False, bytes_sent=10)
    g.record(ROOT, "app.A", "m", latency_s=0.001, local=False)
    return g


class TestRecommendations:
    def test_chatty_pair_merged(self):
        groups = recommend_groups(traffic_graph(), NAMES, min_traffic=10)
        assert ("app.A", "app.B") in groups
        # C-D traffic below threshold: stay singletons.
        assert ("app.C",) in groups and ("app.D",) in groups

    def test_low_threshold_merges_everything_connected(self):
        groups = recommend_groups(traffic_graph(), NAMES, min_traffic=1)
        assert ("app.A", "app.B") in groups
        assert ("app.C", "app.D") in groups

    def test_max_group_size_respected(self):
        g = CallGraph()
        for a, b in [("app.A", "app.B"), ("app.B", "app.C"), ("app.C", "app.D")]:
            for _ in range(10):
                g.record(a, b, "m", latency_s=0.001, local=False)
        groups = recommend_groups(g, NAMES, max_group_size=2)
        assert all(len(grp) <= 2 for grp in groups)
        assert sorted(c for grp in groups for c in grp) == NAMES

    def test_groups_cover_all_components(self):
        groups = recommend_groups(CallGraph(), NAMES)
        assert sorted(c for grp in groups for c in grp) == NAMES

    def test_root_edges_never_merge(self):
        g = CallGraph()
        for _ in range(1000):
            g.record(ROOT, "app.A", "m", latency_s=0.001, local=False)
        groups = recommend_groups(g, NAMES)
        assert ("app.A",) in groups

    def test_unknown_components_in_graph_ignored(self):
        g = traffic_graph()
        for _ in range(50):
            g.record("other.X", "other.Y", "m", latency_s=0.001, local=False)
        groups = recommend_groups(g, NAMES, min_traffic=10)
        flat = [c for grp in groups for c in grp]
        assert sorted(flat) == NAMES

    def test_boutique_chatty_pair_discovered(self):
        """End-to-end: drive the real app, recommend, expect Cart+CartStore."""
        import asyncio

        from repro.boutique import ALL_COMPONENTS, Frontend
        from repro.core.app import init

        async def drive():
            app = await init(components=ALL_COMPONENTS)
            fe = app.get(Frontend)
            for i in range(5):
                await fe.add_to_cart(f"u{i}", "OLJCESPC7Z", 1)
                await fe.view_cart(f"u{i}", "USD")
            groups = recommend_groups(
                app.call_graph, app.build.names(), max_group_size=2, min_traffic=5
            )
            await app.shutdown()
            return groups

        groups = asyncio.run(drive())
        merged = [g for g in groups if len(g) == 2]
        # The cart is the chattiest component in this workload: it must be
        # co-located with one of its heavy peers (its store or the frontend).
        assert any(
            any(c.endswith(".Cart") for c in g)
            and any(c.endswith("CartStore") or c.endswith("Frontend") for c in g)
            for g in merged
        ), groups
