"""Stateful rollout gating (§5.4's open question, answered with a tool)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.errors import RolloutError
from repro.runtime.stateful import (
    CompatibilityReport,
    StateCompatibilityChecker,
    StateType,
    gate_rollout,
)


# -- schema evolution cases ----------------------------------------------------


@dataclass
class OrderV1:
    order_id: str
    user_id: str
    total_cents: int


@dataclass
class OrderV2Appended:
    """Safe evolution: new trailing field (old readers skip, new readers
    default)."""

    order_id: str
    user_id: str
    total_cents: int
    coupon: Optional[str] = None


@dataclass
class OrderV2Reordered:
    """Unsafe evolution: field numbers silently reassigned."""

    user_id: str
    order_id: str
    total_cents: int


@dataclass
class OrderV2Retyped:
    """Unsafe evolution: a field changed wire type."""

    order_id: str
    user_id: str
    total_cents: str  # was int


SAMPLES = {"orders": [OrderV1("o-1", "u-9", 4200), OrderV1("o-2", "u-3", 100)]}


def check(new_cls) -> CompatibilityReport:
    checker = StateCompatibilityChecker()
    return checker.check(
        [StateType("orders", OrderV1)],
        [StateType("orders", new_cls)],
        SAMPLES,
    )


class TestChecker:
    def test_identical_schema_safe(self):
        report = check(OrderV1)
        assert report.safe
        assert report.samples_checked == 2
        assert "compatible" in report.summary()

    def test_appended_field_safe(self):
        assert check(OrderV2Appended).safe

    def test_reordered_fields_flagged(self):
        report = check(OrderV2Reordered)
        assert not report.safe
        # Either a loud wire-type error or a silent mutation — both count.
        assert any(
            i.direction in ("forward", "roundtrip", "backward")
            for i in report.incompatibilities
        )

    def test_retyped_field_flagged(self):
        report = check(OrderV2Retyped)
        assert not report.safe

    def test_dropped_store_flagged(self):
        checker = StateCompatibilityChecker()
        report = checker.check([StateType("orders", OrderV1)], [], SAMPLES)
        assert not report.safe
        assert "orphaned" in str(report.incompatibilities[0])

    def test_new_store_in_new_version_is_fine(self):
        checker = StateCompatibilityChecker()
        report = checker.check(
            [StateType("orders", OrderV1)],
            [StateType("orders", OrderV1), StateType("audit", OrderV1)],
            SAMPLES,
        )
        assert report.safe

    def test_no_samples_is_vacuously_safe(self):
        checker = StateCompatibilityChecker()
        report = checker.check(
            [StateType("orders", OrderV1)],
            [StateType("orders", OrderV2Reordered)],
            {"orders": []},
        )
        assert report.safe  # nothing verified — callers must supply samples
        assert report.samples_checked == 0


class TestGate:
    async def test_gate_passes_safe_evolution(self):
        checker = StateCompatibilityChecker()
        report = await gate_rollout(
            checker,
            [StateType("orders", OrderV1)],
            [StateType("orders", OrderV2Appended)],
            SAMPLES,
        )
        assert report.safe

    async def test_gate_blocks_unsafe_evolution(self):
        checker = StateCompatibilityChecker()
        with pytest.raises(RolloutError, match="INCOMPATIBLE"):
            await gate_rollout(
                checker,
                [StateType("orders", OrderV1)],
                [StateType("orders", OrderV2Retyped)],
                SAMPLES,
            )
