"""The multiprocess deployer (in-process envelope mode)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import AppConfig
from repro.core.errors import RemoteApplicationError
from repro.runtime.deployers.multi import deploy_multiprocess

from tests.conftest import Adder, Flaky, Greeter, KVStore


async def deployed(demo_registry, **kwargs):
    config = kwargs.pop("config", AppConfig(name="t"))
    return await deploy_multiprocess(config, registry=demo_registry, **kwargs)


class TestBasics:
    async def test_remote_call_through_driver(self, demo_registry):
        app = await deployed(demo_registry)
        assert await app.get(Adder).add(2, 3) == 5
        await app.shutdown()

    async def test_cross_component_dependency_is_remote(self, demo_registry):
        app = await deployed(demo_registry)
        assert await app.get(Greeter).greet("Ana") == "Hello, Ana! (4)"
        # Greeter and Adder live in different proclets: the greeter's
        # proclet must have recorded a remote call to Adder.
        greeter_name = app.build.by_iface(Greeter).name
        edges = [
            e
            for e in app.manager.call_graph.edges()
            if e.caller == greeter_name and e.callee.endswith("Adder")
        ]
        # Heartbeats are asynchronous; poll briefly.
        for _ in range(30):
            if edges:
                break
            await asyncio.sleep(0.1)
            edges = [
                e
                for e in app.manager.call_graph.edges()
                if e.caller == greeter_name and e.callee.endswith("Adder")
            ]
        assert edges and edges[0].remote_calls >= 1
        await app.shutdown()

    async def test_one_proclet_per_group(self, demo_registry):
        app = await deployed(demo_registry)
        assert app.manager.total_replicas() == 4  # four singleton groups
        await app.shutdown()

    async def test_colocated_components_share_proclet(self, demo_registry):
        from repro.core.component import component_name

        config = AppConfig(name="t", colocate=((Adder, Greeter),))
        app = await deployed(demo_registry, config=config)
        assert app.manager.total_replicas() == 3
        assert await app.get(Greeter).greet("Bo") == "Hello, Bo! (3)"
        # The co-located dependency call is local (no Adder remote edge).
        greeter_proclet = next(
            e.proclet
            for e in app.envelopes.values()
            if component_name(Greeter) in e.proclet.hosted
        )
        assert component_name(Adder) in greeter_proclet.hosted
        await app.shutdown()

    async def test_lazy_start(self, demo_registry):
        app = await deployed(demo_registry, eager=False)
        assert app.manager.total_replicas() == 0
        assert await app.get(Adder).add(1, 1) == 2  # triggers StartComponent
        assert app.manager.total_replicas() == 1
        await app.shutdown()

    async def test_retry_budget_exhaustion_surfaces_unavailable(self, demo_registry):
        from repro.core.errors import Unavailable

        app = await deployed(demo_registry)
        flaky = app.get(Flaky)
        # Fails with retryable Unavailable 10 times; max_retries=2, so the
        # caller sees the failure after the budget is spent.
        with pytest.raises(Unavailable):
            await flaky.work(10)
        await app.shutdown()


class TestReplication:
    async def test_replicated_component(self, demo_registry):
        config = AppConfig(name="t", replicas={KVStore: 3})
        app = await deployed(demo_registry, config=config)
        name = app.build.by_iface(KVStore).name
        assert len(app.manager.replica_addresses(name)) == 3
        await app.shutdown()

    async def test_routed_affinity_across_replicas(self, demo_registry):
        config = AppConfig(name="t", replicas={KVStore: 3})
        app = await deployed(demo_registry, config=config)
        kv = app.get(KVStore)
        # Writes land on the replica that owns each key; reads of the same
        # key go to the same replica, so every value is found.
        for i in range(30):
            await kv.put(f"key-{i}", f"value-{i}")
        for i in range(30):
            assert await kv.get(f"key-{i}") == f"value-{i}"
        # Different keys actually spread across replicas.
        owners = {await kv.which_replica(f"key-{i}") for i in range(30)}
        assert len(owners) > 1
        await app.shutdown()

    async def test_retryable_component_errors_retry(self, demo_registry):
        app = await deployed(demo_registry)
        flaky = app.get(Flaky)
        # Fails twice with Unavailable, succeeds on the third attempt;
        # max_retries=2 means exactly enough retries.
        assert await flaky.work(2) == "done"
        await app.shutdown()


class TestFailureRecovery:
    async def test_kill_and_restart(self, demo_registry):
        app = await deployed(demo_registry)
        adder = app.get(Adder)
        assert await adder.add(1, 1) == 2

        name = app.build.by_iface(Adder).name
        victim = next(
            proclet_id
            for proclet_id, env in app.envelopes.items()
            if name in env.proclet.hosted
        )
        app.kill_replica(victim)
        await app.manager.sweep()
        await asyncio.sleep(0.05)

        # The manager restarted the group; calls work again.
        assert await adder.add(2, 2) == 4
        await app.shutdown()

    async def test_version_is_consistent_everywhere(self, demo_registry):
        app = await deployed(demo_registry)
        versions = {env.proclet.build.version for env in app.envelopes.values()}
        assert versions == {app.version}
        await app.shutdown()
