"""Test package."""
