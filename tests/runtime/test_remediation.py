"""The closed-loop remediation controller and its guardrails."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import AppConfig, AutoscaleConfig
from repro.observability.signals import Signal
from repro.runtime.health import HealthState
from repro.runtime.manager import Manager
from repro.runtime.remediation import (
    EJECT,
    ISOLATE,
    RESTART,
    SCALE_UP,
    Guardrails,
    PlannedAction,
)

from tests.conftest import Adder, Greeter


class FakeLauncher:
    """Registers a fake proclet for every start request."""

    def __init__(self):
        self.manager: Manager | None = None
        self.started: list[tuple[int, int]] = []
        self.stopped: list[str] = []
        self._seq = 0

    async def start_replica(self, group_id: int, replica_index: int) -> None:
        self.started.append((group_id, replica_index))
        self._seq += 1
        proclet_id = f"fake-g{group_id}-r{self._seq}"
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(
                self.manager.register_replica(
                    proclet_id, f"tcp://127.0.0.1:{9000 + self._seq}", group_id
                )
            )
        )

    async def stop_replica(self, proclet_id: str) -> None:
        self.stopped.append(proclet_id)

    async def update_hosting(self, proclet_id: str, components: list[str]) -> None:
        pass


class StubBoard:
    """A signal board that fires exactly what the test says."""

    def __init__(self):
        self._firing: list[Signal] = []

    def fire(self, kind: str, name: str, scope: str) -> Signal:
        s = Signal(
            kind=kind, name=name, scope=scope, firing=True,
            value=1.0, baseline=0.0, detail="stub",
        )
        self._firing.append(s)
        return s

    def clear(self) -> None:
        self._firing = []

    def firing(self) -> list[Signal]:
        return list(self._firing)


def make_manager(demo_build, **app_kw):
    defaults = dict(
        name="remtest",
        remediation="on",
        remediation_cooldown_s=0.0,
        autoscale=AutoscaleConfig(max_replicas=4, scale_down_stabilization_s=0.0),
    )
    defaults.update(app_kw)
    config = AppConfig(**defaults)
    launcher = FakeLauncher()
    m = Manager(demo_build, config.resolve(demo_build.names()), launcher)
    launcher.manager = m
    return m, launcher


def adder_name(manager):
    return manager.build.by_iface(Adder).name


async def start_all(manager):
    for group in manager.group_states().values():
        await manager.start_component(group.components[0])


def make_suspect(manager, proclet_id):
    """Age one replica's heartbeat past suspect_after and sweep."""
    tracker = manager.health
    rec = tracker.all()[proclet_id]
    rec.last_heartbeat -= tracker._suspect_after_s + 0.1
    tracker.sweep(manager.clock())
    assert tracker.state(proclet_id) is HealthState.SUSPECT


def plan_of(action, group_id=0, target="p", scope="c", reason="r"):
    return PlannedAction(
        action=action, group_id=group_id, target=target, scope=scope, reason=reason
    )


class TestGuardrails:
    def _rails(self, *, cooldown_s=10.0, budget=3, blast=1 / 3, t0=100.0):
        state = {"now": t0}
        rails = Guardrails(
            cooldown_s=cooldown_s,
            max_actions_per_min=budget,
            blast_fraction=blast,
            clock=lambda: state["now"],
        )
        return rails, state

    def test_clean_action_admitted(self):
        rails, _ = self._rails()
        a = plan_of(RESTART)
        assert rails.check(a, live_replicas=3, floor=1, ceiling=4) is None

    def test_cooldown_blocks_repeat_on_same_target(self):
        rails, state = self._rails(cooldown_s=10.0)
        a = plan_of(RESTART, target="p1")
        rails.commit(a)
        state["now"] += 5.0
        # Blast-radius window also holds p1; use a bigger group so only
        # the cooldown applies.
        assert rails.check(a, live_replicas=9, floor=1, ceiling=9) == "cooldown"
        state["now"] += 6.0
        assert rails.check(a, live_replicas=9, floor=1, ceiling=9) is None

    def test_cooldown_is_per_target_and_action(self):
        rails, _ = self._rails()
        rails.commit(plan_of(RESTART, target="p1"))
        other_target = plan_of(RESTART, group_id=1, target="p2")
        other_action = plan_of(SCALE_UP, group_id=2, target="p1")
        assert rails.check(other_target, live_replicas=9, floor=1, ceiling=9) is None
        assert rails.check(other_action, live_replicas=2, floor=1, ceiling=9) is None

    def test_budget_caps_actions_per_minute(self):
        rails, state = self._rails(budget=2, cooldown_s=0.0)
        for i in range(2):
            rails.commit(plan_of(SCALE_UP, group_id=i, target=f"g{i}"))
        blocked = plan_of(SCALE_UP, group_id=9, target="g9")
        assert rails.check(blocked, live_replicas=1, floor=1, ceiling=9) == "budget"
        assert rails.budget_left() == 0
        state["now"] += 61.0  # the rolling minute moves on
        assert rails.check(blocked, live_replicas=1, floor=1, ceiling=9) is None
        assert rails.budget_left() == 2

    def test_blast_radius_caps_concurrent_victims(self):
        rails, state = self._rails(blast=1 / 3, cooldown_s=30.0, budget=100)
        # 6 live replicas: at most 2 may be acted on within the window.
        rails.commit(plan_of(RESTART, target="p1"))
        rails.commit(plan_of(RESTART, target="p2"))
        third = plan_of(RESTART, target="p3")
        assert rails.check(third, live_replicas=6, floor=1, ceiling=9) == "blast_radius"
        state["now"] += 31.0  # victims age out of the window
        assert rails.check(third, live_replicas=6, floor=1, ceiling=9) is None

    def test_blast_radius_never_rounds_to_zero(self):
        rails, _ = self._rails(blast=1 / 3)
        # One of 2 replicas: int(2/3)=0 but the floor of 1 applies.
        a = plan_of(RESTART, target="p1")
        assert rails.check(a, live_replicas=2, floor=1, ceiling=9) is None

    def test_eject_blocked_at_replica_floor(self):
        rails, _ = self._rails()
        a = plan_of(EJECT, target="p1")
        assert rails.check(a, live_replicas=2, floor=2, ceiling=9) == "replica_floor"
        assert rails.check(a, live_replicas=3, floor=2, ceiling=9) is None

    def test_scale_up_blocked_at_ceiling(self):
        rails, _ = self._rails()
        a = plan_of(SCALE_UP, target="g0")
        assert rails.check(a, live_replicas=4, floor=1, ceiling=4) == "replica_ceiling"
        assert rails.check(a, live_replicas=3, floor=1, ceiling=4) is None


class TestModes:
    async def test_off_mode_plans_nothing(self, demo_build):
        manager, launcher = make_manager(demo_build, remediation="off")
        await start_all(manager)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        assert await manager.remediation_tick() == []
        assert launcher.stopped == []

    async def test_observe_mode_journals_without_acting(self, demo_build):
        manager, launcher = make_manager(demo_build, remediation="observe")
        await start_all(manager)
        started_before = len(launcher.started)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        entries = await manager.remediation_tick()
        assert entries and all(e["verdict"] == "observed" for e in entries)
        assert launcher.stopped == []  # decided, not executed
        assert len(launcher.started) == started_before
        assert manager.remediation.counts["observed"] >= 1

    async def test_on_mode_executes(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        entries = await manager.remediation_tick()
        fired = [e for e in entries if e["verdict"] == "fired"]
        assert fired and fired[0]["outcome"] == "ok"
        assert victim in launcher.stopped


class TestSuspectMapping:
    async def test_lone_suspect_is_restarted_not_ejected(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        info = next(iter(manager.proclets()))
        make_suspect(manager, info.proclet_id)
        plans = manager.remediation.plan()
        mine = [p for p in plans if p.target == info.proclet_id]
        assert mine and mine[0].action == RESTART

    async def test_surplus_suspect_is_ejected(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        group = next(iter(manager.group_states().values()))
        # A second replica beyond target strength.
        await manager._ensure_replicas(group, minimum=2)
        group.target_replicas = 1
        victim = next(iter(group.proclets))
        make_suspect(manager, victim)
        plans = [p for p in manager.remediation.plan() if p.target == victim]
        assert plans and plans[0].action == EJECT
        await manager.remediation_tick()
        assert victim not in group.proclets
        assert victim in launcher.stopped

    async def test_restart_replaces_the_replica(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        group = next(iter(manager.group_states().values()))
        victim = next(iter(group.proclets))
        make_suspect(manager, victim)
        await manager.remediation_tick()
        # The victim is gone and a replacement was launched + registered.
        assert victim not in group.proclets
        assert len(group.proclets) >= group.target_replicas


class TestSignalMapping:
    async def test_latency_signal_scales_up(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        board = StubBoard()
        manager.signals = board
        comp = adder_name(manager)
        board.fire("anomaly", "p99_ms", comp)
        entries = await manager.remediation_tick()
        fired = [e for e in entries if e["verdict"] == "fired"]
        assert fired and fired[0]["action"] == SCALE_UP
        group = manager._group_for_component(comp)
        assert group.target_replicas == 2

    async def test_error_signal_restarts_worst_replica(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        board = StubBoard()
        manager.signals = board
        comp = adder_name(manager)
        victims = set(manager._group_for_component(comp).proclets)
        board.fire("anomaly", "error_rate", comp)
        entries = await manager.remediation_tick()
        fired = [e for e in entries if e["verdict"] == "fired"]
        assert fired and fired[0]["action"] == RESTART
        assert fired[0]["target"] in victims

    async def test_persistent_signal_climbs_the_ladder(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        board = StubBoard()
        manager.signals = board
        comp = adder_name(manager)
        board.fire("anomaly", "p99_ms", comp)
        actions = []
        for _ in range(4):
            for e in await manager.remediation_tick():
                if e["verdict"] == "fired":
                    actions.append(e["action"])
        # scale_up, scale_up, then isolate — which downgrades to another
        # scale_up because the demo groups host one component each.
        assert actions[:2] == [SCALE_UP, SCALE_UP]
        assert SCALE_UP in actions[2:] and ISOLATE not in actions

    async def test_resolved_signal_rearms_the_ladder(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        board = StubBoard()
        manager.signals = board
        comp = adder_name(manager)
        s = board.fire("anomaly", "p99_ms", comp)
        await manager.remediation_tick()
        assert manager.remediation._escalation.get(s.key) == 1
        board.clear()
        await manager.remediation_tick()  # signal resolved
        assert s.key not in manager.remediation._escalation

    async def test_total_scope_resolves_to_worst_component(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        board = StubBoard()
        manager.signals = board
        comp_a = adder_name(manager)
        comp_g = manager.build.by_iface(Greeter).name
        now = manager.clock()
        manager.timeseries.record("p99_ms", comp_a, now, 900.0)
        manager.timeseries.record("p99_ms", comp_g, now, 30.0)
        board.fire("slo", "latency", "_total")
        entries = await manager.remediation_tick()
        fired = [e for e in entries if e["verdict"] == "fired"]
        assert fired and fired[0]["scope"] == comp_a


class TestBreakerStorms:
    async def test_trip_storm_restarts_a_replica(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        comp = adder_name(manager)
        now = manager.clock()
        for i in range(4):
            manager.timeseries.record("breaker_trips", comp, now - 3 + i, 1.0)
        plans = manager.remediation.plan()
        assert any(p.action == RESTART and p.scope == comp for p in plans)

    async def test_quiet_breakers_plan_nothing(self, demo_build):
        manager, _ = make_manager(demo_build)
        await start_all(manager)
        comp = adder_name(manager)
        manager.timeseries.record("breaker_trips", comp, manager.clock(), 1.0)
        assert manager.remediation.plan() == []


class TestExecutors:
    async def test_scale_up_clamps_to_ceiling(self, demo_build):
        manager, launcher = make_manager(demo_build)
        await start_all(manager)
        group = next(iter(manager.group_states().values()))
        for _ in range(6):
            await manager.remediate_scale_up(group.group_id, ceiling=3)
        assert group.target_replicas == 3

    async def test_scale_up_raises_autoscaler_floor(self, demo_build):
        manager, _ = make_manager(demo_build)
        await start_all(manager)
        group = next(iter(manager.group_states().values()))
        await manager.remediate_scale_up(group.group_id, ceiling=4)
        scaler = manager._autoscalers[group.group_id]
        floor, expires = scaler._floor
        assert floor == 2 and expires > manager.clock()
        # An idle-load decision cannot undo the remediation capacity.
        decision = scaler.decide(
            now=manager.clock(), current_replicas=2, utilization=0.01
        )
        assert decision.desired >= 2

    async def test_isolate_splits_a_colocated_group(self, demo_build):
        manager, _ = make_manager(demo_build)
        # Build a co-located group via apply_placement, then isolate.
        names = sorted(manager._component_group)
        await start_all(manager)
        await manager.apply_placement([tuple(names)])
        assert len(manager.group_states()) == 1
        await manager.remediate_isolate(names[0])
        groups = manager.group_states()
        assert len(groups) == 2
        solo = [g for g in groups.values() if g.components == (names[0],)]
        assert solo

    async def test_isolate_alone_is_a_noop(self, demo_build):
        manager, _ = make_manager(demo_build)
        await start_all(manager)
        before = {g.group_id: g.components for g in manager.group_states().values()}
        await manager.remediate_isolate(adder_name(manager))
        after = {g.group_id: g.components for g in manager.group_states().values()}
        assert before == after


class TestJournalAndWire:
    async def test_journal_is_bounded(self, demo_build):
        manager, _ = make_manager(demo_build, remediation_journal_size=5)
        controller = manager.remediation
        for i in range(12):
            controller._record(
                {"ts": float(i), "action": RESTART, "target": f"p{i}",
                 "group": 0, "scope": "c", "reason": "r", "verdict": "fired",
                 "outcome": "ok", "duration_ms": 1.0},
                "fired",
            )
        wire = controller.to_wire()
        assert len(wire["journal"]) == 5
        assert wire["journal"][-1]["target"] == "p11"
        assert wire["counts"]["fired"] == 12

    async def test_to_wire_shape_and_jsonability(self, demo_build):
        import json

        manager, _ = make_manager(demo_build)
        await start_all(manager)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        await manager.remediation_tick()
        wire = manager.remediation.to_wire()
        json.dumps(wire)  # must be wire-safe
        assert wire["mode"] == "on"
        assert set(wire["budget"]) == {
            "max_actions_per_min", "available", "cooldown_s", "blast_fraction"
        }
        entry = wire["journal"][-1]
        assert {"ts", "action", "target", "group", "scope", "reason",
                "verdict", "outcome", "duration_ms"} <= set(entry)

    async def test_actions_counted_in_metrics(self, demo_build):
        manager, _ = make_manager(demo_build)
        await start_all(manager)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        await manager.remediation_tick()
        fired = [
            cell.value
            for (name, labels), cell in manager.metrics.cells().items()
            if name == "remediation_actions" and dict(labels).get("verdict") == "fired"
        ]
        assert sum(fired) >= 1

    async def test_status_wire_carries_remediation(self, demo_build):
        from repro.runtime.status import status_wire

        manager, _ = make_manager(demo_build)
        await start_all(manager)
        wire = status_wire(manager)
        assert wire["remediation"]["mode"] == "on"

    async def test_render_remediation_includes_journal(self, demo_build):
        from repro.runtime.status import render_remediation

        manager, _ = make_manager(demo_build)
        await start_all(manager)
        victim = next(iter(manager.proclets())).proclet_id
        make_suspect(manager, victim)
        await manager.remediation_tick()
        text = render_remediation(manager)
        assert "remediation (mode=on)" in text
        assert "fired" in text

    async def test_render_remediation_hidden_when_off_and_idle(self, demo_build):
        from repro.runtime.status import render_remediation

        manager, _ = make_manager(demo_build, remediation="off")
        await start_all(manager)
        assert render_remediation(manager) == ""


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(Exception):
            AppConfig(name="x", remediation="sometimes")

    def test_bad_blast_fraction_rejected(self):
        with pytest.raises(Exception):
            AppConfig(name="x", remediation_blast_fraction=0.0)

    def test_from_dict_round_trip(self):
        config = AppConfig.from_dict(
            {
                "name": "x",
                "remediation": "observe",
                "remediation_cooldown_s": 5.0,
                "remediation_max_actions_per_min": 3,
            }
        )
        assert config.remediation == "observe"
        assert config.remediation_max_actions_per_min == 3
