"""Live shard handover end to end: drain, crash recovery, stale routing.

The repro.state acceptance story at deployment scale:

* planned retirement (shrink / re-placement) hands flushed shards to the
  survivors through the drain path — zero acknowledged-write loss, eager
  replay (bounded stall);
* an unplanned kill loses nothing either: the replacement replica
  replays the shared WAL directory lazily;
* a caller holding a stale assignment gets a retryable wrong-owner
  rejection and transparently re-resolves — never a silent write to the
  old owner (the routed-cache invalidation satellite).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.codegen.compiler import idempotent, routed
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess


class Ledger(Component):
    """Routed, stateful demo component: per-key counters in ctx.state."""

    @routed(by="key")
    async def bump(self, key: str) -> int: ...

    @idempotent
    @routed(by="key")
    async def read(self, key: str) -> int: ...


class LedgerImpl:
    async def init(self, ctx) -> None:
        self._state = ctx.state

    async def bump(self, key: str) -> int:
        return await self._state.update(key, lambda v: v + 1, default=0)

    async def read(self, key: str) -> int:
        return await self._state.get(key, default=0)


def ledger_registry() -> Registry:
    registry = Registry()
    registry.register(Ledger, LedgerImpl)
    return registry


async def deployed(replicas: int = 2, **config_kwargs):
    config = AppConfig(
        name="handover-t",
        replicas={Ledger: replicas},
        **config_kwargs,
    )
    return await deploy_multiprocess(config, registry=ledger_registry())


KEYS = [f"user-{i}" for i in range(40)]


class TestDrainHandover:
    async def test_shrink_preserves_every_acknowledged_write(self):
        app = await deployed(replicas=2)
        ledger = app.get(Ledger)
        for key in KEYS:
            await ledger.bump(key)
            await ledger.bump(key)

        group = next(iter(app.manager.group_states().values()))
        assert len(group.proclets) == 2
        await app.manager._shrink_group(group, 1)
        assert len(group.proclets) == 1

        # Every acknowledged increment survives on the survivor.
        for key in KEYS:
            assert await ledger.read(key) == 2
        # The handover went through the drain path, not lazy recovery.
        shards = app.manager.metrics.counter("state_handover_shards").get()
        assert shards.value > 0
        await app.shutdown()

    async def test_replacement_retires_old_proclets_with_state(self):
        app = await deployed(replicas=1)
        ledger = app.get(Ledger)
        for key in KEYS[:10]:
            await ledger.bump(key)
        # Re-placement to an identical plan still cycles through retire
        # (old proclets adopt into the new groups), state intact.
        await app.replace_placement([("tests.runtime.test_handover.Ledger",)])
        await asyncio.sleep(0.1)
        for key in KEYS[:10]:
            assert await ledger.read(key) == 1
        await app.shutdown()


class TestCrashRecovery:
    async def test_killed_replica_recovers_from_wal(self):
        app = await deployed(replicas=1)
        ledger = app.get(Ledger)
        for key in KEYS[:10]:
            await ledger.bump(key)

        (proclet_id,) = list(app.envelopes)
        app.kill_replica(proclet_id)
        # The sweep loop notices the death and relaunches; the new replica
        # replays the shared WAL directory on first touch.
        deadline = asyncio.get_running_loop().time() + 10.0
        while not app.manager.replica_addresses(
            "tests.runtime.test_handover.Ledger"
        ):
            assert asyncio.get_running_loop().time() < deadline
            await app.manager.sweep()
            await asyncio.sleep(0.05)

        for key in KEYS[:10]:
            assert await ledger.read(key) == 1
        await app.shutdown()


class TestStaleAssignmentRedirect:
    async def test_wrong_owner_reject_redirects_not_silently_writes(self):
        # One replica first: the driver caches a generation-1 assignment
        # that maps every key to replica A.
        app = await deployed(replicas=1)
        ledger = app.get(Ledger)
        for key in KEYS:
            await ledger.bump(key)

        component = "tests.runtime.test_handover.Ledger"
        table = app.driver._table
        stale = table.assignment(component)
        assert stale is not None and stale.generation >= 1
        addr_a = stale.replicas[0]

        # The ring changes: scale to 2.  The manager pushes generation-2
        # to the group's proclets (ownership checks update), but the
        # driver is no proclet of the group — its cache stays stale.
        group = next(iter(app.manager.group_states().values()))
        group.target_replicas = 2
        await app.manager._ensure_replicas(group, minimum=2)
        await asyncio.sleep(0.2)  # let routing pushes land

        fresh = app.manager._assignments[component]
        assert fresh.generation > stale.generation
        moved = [k for k in KEYS if fresh.replica_for(k) != addr_a]
        assert moved  # consistent hashing moved ~half the keys

        assert table.assignment(component) is stale  # still the old view
        # Writing a moved key through the stale cache: replica A rejects
        # with WrongOwner, the stub invalidates + re-resolves, the retry
        # lands on the new owner — the caller just sees success.
        assert await ledger.bump(moved[0]) == 2

        # The stale entry was dropped and re-resolved to generation 2.
        refreshed = table.assignment(component)
        assert refreshed is not None and refreshed.generation == fresh.generation

        # Replica A took no breaker penalty: it is healthy, only the
        # caller's map was old.
        breakers = app.driver.breakers
        assert breakers.open_count(component) == 0

        # And the rejection is observable on A's side.
        (envelope_a,) = [
            e for e in app.envelopes.values() if e.address == addr_a
        ]
        rejects = envelope_a.proclet.metrics.counter("state_wrong_owner").get(
            component=component
        )
        assert rejects.value >= 1
        await app.shutdown()
