"""The proclet <-> runtime control-pipe protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import RuntimeControlError
from repro.runtime.pipes import (
    ControlEndpoint,
    MemoryPipe,
    StreamPipe,
    memory_pipe_pair,
)


async def echo_handler(type_: str, body: dict) -> dict:
    if type_ == "boom":
        raise ValueError("handler exploded")
    return {"type": type_, "echo": body}


async def endpoints(handler_a=None, handler_b=echo_handler):
    a_pipe, b_pipe = memory_pipe_pair()
    a = ControlEndpoint(a_pipe, handler_a, name="a")
    b = ControlEndpoint(b_pipe, handler_b, name="b")
    a.start()
    b.start()
    return a, b


class TestMemoryPipes:
    async def test_request_response(self):
        a, b = await endpoints()
        resp = await a.request("register_replica", {"proclet_id": "p1"})
        assert resp == {"type": "register_replica", "echo": {"proclet_id": "p1"}}
        await a.close()
        await b.close()

    async def test_concurrent_requests_matched_by_id(self):
        a, b = await endpoints()
        results = await asyncio.gather(
            *[a.request("t", {"i": i}) for i in range(50)]
        )
        assert [r["echo"]["i"] for r in results] == list(range(50))
        await a.close()
        await b.close()

    async def test_handler_error_becomes_control_error(self):
        a, b = await endpoints()
        with pytest.raises(RuntimeControlError, match="handler exploded"):
            await a.request("boom")
        await a.close()
        await b.close()

    async def test_no_handler_rejects_requests(self):
        a, b = await endpoints(handler_b=None)
        with pytest.raises(RuntimeControlError, match="no handler"):
            await a.request("anything")
        await a.close()
        await b.close()

    async def test_notify_is_fire_and_forget(self):
        received = []

        async def collect(type_, body):
            received.append((type_, body))
            return {}

        a, b = await endpoints(handler_b=collect)
        await a.notify("metrics", {"x": 1})
        await asyncio.sleep(0.01)
        assert received == [("metrics", {"x": 1})]
        await a.close()
        await b.close()

    async def test_bidirectional(self):
        a, b = await endpoints(handler_a=echo_handler)
        assert (await b.request("from_b"))["type"] == "from_b"
        assert (await a.request("from_a"))["type"] == "from_a"
        await a.close()
        await b.close()

    async def test_close_fails_pending_requests(self):
        async def never(type_, body):
            await asyncio.sleep(100)
            return {}

        a, b = await endpoints(handler_b=never)
        task = asyncio.ensure_future(a.request("stuck"))
        await asyncio.sleep(0.01)
        await a.close()
        with pytest.raises(RuntimeControlError):
            await task
        await b.close()

    async def test_peer_close_detected(self):
        a, b = await endpoints()
        await b.close()
        await asyncio.sleep(0.01)
        with pytest.raises(RuntimeControlError):
            await a.request("after-close", timeout=0.2)
        await a.close()

    async def test_request_timeout(self):
        async def slow(type_, body):
            await asyncio.sleep(1.0)
            return {}

        a, b = await endpoints(handler_b=slow)
        with pytest.raises(RuntimeControlError, match="timed out"):
            await a.request("slow", timeout=0.05)
        await a.close()
        await b.close()


class TestStreamPipes:
    async def test_over_real_unix_socket(self, tmp_path):
        path = str(tmp_path / "ctl.sock")
        server_ep = {}
        connected = asyncio.Event()

        async def on_connect(reader, writer):
            ep = ControlEndpoint(StreamPipe(reader, writer), echo_handler, name="srv")
            ep.start()
            server_ep["ep"] = ep
            connected.set()

        server = await asyncio.start_unix_server(on_connect, path)
        reader, writer = await asyncio.open_unix_connection(path)
        client = ControlEndpoint(StreamPipe(reader, writer), name="cli")
        client.start()
        await connected.wait()

        resp = await client.request("components_to_host", {"proclet_id": "p9"})
        assert resp["echo"]["proclet_id"] == "p9"

        # Unicode and nesting survive JSON framing.
        resp = await client.request("t", {"nested": {"λ": [1, 2, {"k": "ü"}]}})
        assert resp["echo"]["nested"]["λ"][2]["k"] == "ü"

        await client.close()
        await server_ep["ep"].close()
        server.close()
        await server.wait_closed()
