"""The global manager's control-plane decisions."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import AppConfig, AutoscaleConfig
from repro.core.errors import ComponentNotFound
from repro.runtime.health import HealthState
from repro.runtime.manager import Manager

from tests.conftest import Adder, Greeter, KVStore


class FakeLauncher:
    """Registers a fake proclet for every start request (like a real
    envelope would, after the child boots)."""

    def __init__(self):
        self.manager: Manager | None = None
        self.started: list[tuple[int, int]] = []
        self.stopped: list[str] = []
        self._seq = 0

    async def start_replica(self, group_id: int, replica_index: int) -> None:
        self.started.append((group_id, replica_index))
        self._seq += 1
        proclet_id = f"fake-g{group_id}-r{self._seq}"
        # Register asynchronously, as a real envelope would.
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(
                self.manager.register_replica(
                    proclet_id, f"tcp://127.0.0.1:{9000 + self._seq}", group_id
                )
            )
        )

    async def stop_replica(self, proclet_id: str) -> None:
        self.stopped.append(proclet_id)

    async def update_hosting(self, proclet_id: str, components: list[str]) -> None:
        self.hosting_updates = getattr(self, "hosting_updates", [])
        self.hosting_updates.append((proclet_id, components))


@pytest.fixture
def manager(demo_build):
    launcher = FakeLauncher()
    config = AppConfig(
        autoscale=AutoscaleConfig(target_utilization=0.5, scale_down_stabilization_s=0.0)
    )
    m = Manager(
        demo_build,
        config.resolve(demo_build.names()),
        launcher,
        autoscale_enabled=True,
    )
    launcher.manager = m
    return m


def group_id_of(manager, iface):
    name = manager.build.by_iface(iface).name
    return manager._component_group[name]


class TestRegistration:
    async def test_register_and_list_components(self, manager):
        gid = group_id_of(manager, Adder)
        await manager.register_replica("p1", "tcp://127.0.0.1:9001", gid)
        hosted = await manager.components_to_host("p1")
        assert hosted == [manager.build.by_iface(Adder).name]

    async def test_unknown_proclet_rejected(self, manager):
        with pytest.raises(ComponentNotFound):
            await manager.components_to_host("ghost")

    async def test_replica_indices_increase(self, manager):
        gid = group_id_of(manager, Adder)
        await manager.register_replica("p1", "tcp://1:1", gid)
        await manager.register_replica("p2", "tcp://1:2", gid)
        infos = {p.proclet_id: p.replica_index for p in manager.proclets()}
        assert infos["p1"] != infos["p2"]


class TestStartComponent:
    async def test_start_launches_and_waits_for_registration(self, manager):
        name = manager.build.by_iface(Adder).name
        await manager.start_component(name)
        assert manager.replica_addresses(name)

    async def test_start_is_idempotent(self, manager):
        name = manager.build.by_iface(Adder).name
        await manager.start_component(name)
        await manager.start_component(name)
        assert len(manager.replica_addresses(name)) == 1

    async def test_unknown_component_rejected(self, manager):
        with pytest.raises(ComponentNotFound):
            await manager.start_component("nope.Nope")


class TestRoutingInfo:
    async def test_replicas_listed(self, manager):
        name = manager.build.by_iface(Adder).name
        await manager.start_component(name)
        info = await manager.routing_info(name)
        assert len(info["replicas"]) == 1
        assert "assignment" not in info  # Adder has no routed methods

    async def test_routed_component_gets_assignment(self, manager):
        name = manager.build.by_iface(KVStore).name
        await manager.start_component(name)
        info = await manager.routing_info(name)
        assert info["assignment"]["component"] == name
        assert info["assignment"]["generation"] >= 1

    async def test_assignment_generation_bumps_on_membership_change(self, manager):
        name = manager.build.by_iface(KVStore).name
        await manager.start_component(name)
        gen1 = (await manager.routing_info(name))["assignment"]["generation"]
        gid = group_id_of(manager, KVStore)
        await manager.register_replica("extra", "tcp://127.0.0.1:9999", gid)
        gen2 = (await manager.routing_info(name))["assignment"]["generation"]
        assert gen2 > gen1


class TestHealthAndRepair:
    async def test_dead_replica_restarted(self, manager):
        name = manager.build.by_iface(Adder).name
        await manager.start_component(name)
        (info,) = manager.proclets()

        # Silence the heartbeat long enough to be declared dead.
        manager.health.mark_dead(info.proclet_id)
        await manager.sweep()
        await asyncio.sleep(0.01)  # let the relaunch registration land
        addresses = manager.replica_addresses(name)
        assert addresses
        assert all(a != info.address for a in addresses)

    async def test_heartbeat_updates_load(self, manager):
        gid = group_id_of(manager, Adder)
        await manager.register_replica("p1", "tcp://1:1", gid)
        await manager.heartbeat("p1", load=0.77)
        (info,) = [p for p in manager.proclets() if p.proclet_id == "p1"]
        assert info.load == 0.77
        assert manager.health.state("p1") is HealthState.HEALTHY

    async def test_heartbeat_from_unknown_proclet_ignored(self, manager):
        await manager.heartbeat("ghost", load=0.5)  # must not raise


class TestAutoscaling:
    async def test_scale_up_on_load(self, manager):
        gid = group_id_of(manager, Adder)
        await manager.register_replica("p1", "tcp://1:1", gid)
        await manager.heartbeat("p1", load=1.0)  # target 0.5 -> wants 2
        await manager.autoscale_tick()
        await asyncio.sleep(0.01)
        name = manager.build.by_iface(Adder).name
        assert len(manager.replica_addresses(name)) == 2

    async def test_scale_down_on_idle(self, manager):
        gid = group_id_of(manager, Adder)
        await manager.register_replica("p1", "tcp://1:1", gid)
        await manager.register_replica("p2", "tcp://1:2", gid)
        await manager.heartbeat("p1", load=0.01)
        await manager.heartbeat("p2", load=0.01)
        await manager.autoscale_tick()
        stopped = manager.launcher.stopped
        assert len(stopped) == 1

    async def test_no_scaling_when_disabled(self, demo_build):
        launcher = FakeLauncher()
        m = Manager(
            demo_build,
            AppConfig().resolve(demo_build.names()),
            launcher,
            autoscale_enabled=False,
        )
        launcher.manager = m
        gid = m._component_group[demo_build.by_iface(Adder).name]
        await m.register_replica("p1", "tcp://1:1", gid)
        await m.heartbeat("p1", load=5.0)
        await m.autoscale_tick()
        assert launcher.started == []


class TestTelemetry:
    async def test_metrics_merged(self, manager):
        from repro.observability.metrics import MetricsRegistry

        source = MetricsRegistry()
        source.counter("requests").inc(5, component="A")
        await manager.export_metrics("p1", source.snapshot())
        cell = manager.metrics.counter("requests").get(component="A")
        assert cell.value == 5

    async def test_logs_merged(self, manager):
        await manager.export_logs(
            "p1",
            [
                {
                    "timestamp": 2.0,
                    "level": "info",
                    "component": "A",
                    "replica_id": 0,
                    "message": "second",
                    "attributes": [],
                },
                {
                    "timestamp": 1.0,
                    "level": "info",
                    "component": "A",
                    "replica_id": 0,
                    "message": "first",
                    "attributes": [],
                },
            ],
        )
        merged = manager.logs.merged()
        assert [r.message for r in merged] == ["first", "second"]

    async def test_call_graph_merged(self, manager):
        from repro.core.call_graph import CallGraph

        g = CallGraph()
        g.record("A", "B", "m", latency_s=0.001, local=False)
        await manager.export_call_graph("p1", g.to_wire())
        assert manager.call_graph.total_calls() == 1
