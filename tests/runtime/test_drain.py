"""Graceful drain: planned shutdown never drops in-flight work.

Acceptance criterion for the failure-domain layer: a replica retired on
purpose (autoscale shrink, re-placement) finishes what it's executing —
zero non-retryable failures reach callers — and rejects stragglers with a
retryable ``Unavailable(draining=True)``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import Unavailable
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.manager import Manager


class Sleeper(Component):
    # Deliberately NOT @idempotent: a retry of an executed call would be a
    # correctness bug, so any dropped in-flight work surfaces as a hard
    # failure in these tests instead of being papered over by a retry.
    async def nap(self, duration_s: float) -> str: ...


class SleeperImpl:
    async def nap(self, duration_s: float) -> str:
        await asyncio.sleep(duration_s)
        return "rested"


def sleeper_registry() -> Registry:
    registry = Registry()
    registry.register(Sleeper, SleeperImpl)
    return registry


async def deployed(**config_kwargs):
    config = AppConfig(name="drain-t", **config_kwargs)
    return await deploy_multiprocess(config, registry=sleeper_registry())


class TestProcletDrain:
    async def test_inflight_call_completes_across_drain(self):
        app = await deployed()
        sleeper = app.get(Sleeper)
        inflight = asyncio.ensure_future(sleeper.nap(0.3))
        await asyncio.sleep(0.05)  # let the request reach the replica

        (envelope,) = app.envelopes.values()
        drained_s = await envelope.proclet.drain(5.0)
        # drain() blocked until the 0.3s nap finished...
        assert drained_s >= 0.15
        # ...and the call succeeded despite the replica shutting down.
        assert await inflight == "rested"
        await app.shutdown()

    async def test_drained_door_rejects_with_retryable_draining(self):
        app = await deployed(max_retries=0)
        sleeper = app.get(Sleeper)
        assert await sleeper.nap(0.0) == "rested"  # connection established

        (envelope,) = app.envelopes.values()
        await envelope.proclet.drain(1.0)
        with pytest.raises(Unavailable) as excinfo:
            await sleeper.nap(0.0)
        # Retryable, provably-not-executed, and marked as a planned exit.
        assert excinfo.value.executed is False
        assert excinfo.value.draining is True
        await app.shutdown()

    async def test_drain_deadline_bounds_the_wait(self):
        app = await deployed()
        sleeper = app.get(Sleeper)
        inflight = asyncio.ensure_future(sleeper.nap(5.0))
        await asyncio.sleep(0.05)
        (envelope,) = app.envelopes.values()
        drained_s = await envelope.proclet.drain(0.1)
        assert drained_s < 1.0  # gave up at the deadline, didn't hang
        inflight.cancel()
        await app.shutdown()


class TestPlannedShutdown:
    async def test_shrink_under_load_drops_nothing(self):
        app = await deployed(replicas={Sleeper: 3}, drain_deadline_s=5.0)
        sleeper = app.get(Sleeper)
        # Saturate all three replicas with non-idempotent work...
        calls = [asyncio.ensure_future(sleeper.nap(0.25)) for _ in range(24)]
        await asyncio.sleep(0.05)

        group = next(iter(app.manager.group_states().values()))
        assert len(group.proclets) == 3
        # ...then shrink to one replica mid-flight (autoscale's move).
        await app.manager._shrink_group(group, 1)

        results = await asyncio.gather(*calls, return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        assert failures == []  # zero failures, not merely zero non-retryable
        assert len([e for e in app.envelopes.values() if not e.stopped]) == 1
        # Survivor still serves.
        assert await sleeper.nap(0.0) == "rested"
        await app.shutdown()

    async def test_shrink_with_drain_disabled_still_converges(self):
        app = await deployed(replicas={Sleeper: 2}, drain_deadline_s=0.0)
        group = next(iter(app.manager.group_states().values()))
        await app.manager._shrink_group(group, 1)
        assert len([e for e in app.envelopes.values() if not e.stopped]) == 1
        assert await app.get(Sleeper).nap(0.0) == "rested"
        await app.shutdown()


class RecordingLauncher:
    def __init__(self) -> None:
        self.events: list[tuple[str, str]] = []

    async def start_replica(self, group_id: int, replica_index: int) -> None:
        pass

    async def stop_replica(self, proclet_id: str) -> None:
        self.events.append(("stop", proclet_id))

    async def drain_replica(self, proclet_id: str, deadline_s: float) -> None:
        self.events.append(("drain", proclet_id))

    async def update_hosting(self, proclet_id: str, components: list[str]) -> None:
        pass


class HardStopLauncher(RecordingLauncher):
    """A deployer predating drain: only the required launcher surface."""

    drain_replica = None  # type: ignore[assignment]


class TestManagerRetire:
    def _manager(self, demo_build, launcher, **config_kwargs):
        config = AppConfig(**config_kwargs)
        return Manager(demo_build, config.resolve(demo_build.names()), launcher)

    async def test_retire_drains_then_stops(self, demo_build):
        launcher = RecordingLauncher()
        manager = self._manager(demo_build, launcher, drain_deadline_s=2.0)
        await manager._retire_replica("p1")
        assert launcher.events == [("drain", "p1"), ("stop", "p1")]

    async def test_retire_hard_stops_when_drain_disabled(self, demo_build):
        launcher = RecordingLauncher()
        manager = self._manager(demo_build, launcher, drain_deadline_s=0.0)
        await manager._retire_replica("p1")
        assert launcher.events == [("stop", "p1")]

    async def test_retire_tolerates_legacy_launcher(self, demo_build):
        launcher = HardStopLauncher()
        manager = self._manager(demo_build, launcher, drain_deadline_s=2.0)
        await manager._retire_replica("p1")
        assert launcher.events == [("stop", "p1")]
