"""The HPA control loop."""

from __future__ import annotations

from repro.core.config import AutoscaleConfig
from repro.runtime.autoscaler import Autoscaler, steady_state_replicas


def make(target=0.5, minimum=1, maximum=100, stabilization=30.0):
    return Autoscaler(
        AutoscaleConfig(
            min_replicas=minimum,
            max_replicas=maximum,
            target_utilization=target,
            scale_down_stabilization_s=stabilization,
        )
    )


class TestScaleUp:
    def test_doubles_when_utilization_doubles_target(self):
        a = make(target=0.5)
        decision = a.decide(now=0, current_replicas=4, utilization=1.0)
        assert decision.desired == 8

    def test_ceil_rounding(self):
        a = make(target=0.5)
        decision = a.decide(now=0, current_replicas=3, utilization=0.8)
        assert decision.desired == 5  # ceil(3 * 1.6) = 5

    def test_max_clamp(self):
        a = make(target=0.5, maximum=6)
        assert a.decide(now=0, current_replicas=4, utilization=2.0).desired == 6

    def test_immediate_no_stabilization_on_scale_up(self):
        a = make(target=0.5)
        a.decide(now=0, current_replicas=4, utilization=0.1)
        assert a.decide(now=1, current_replicas=4, utilization=1.0).desired == 8


class TestHold:
    def test_tolerance_band_holds(self):
        a = make(target=0.5)
        assert a.decide(now=0, current_replicas=4, utilization=0.52).desired == 4
        assert a.decide(now=1, current_replicas=4, utilization=0.48).desired == 4

    def test_exact_target_holds(self):
        a = make(target=0.5)
        assert a.decide(now=0, current_replicas=7, utilization=0.5).desired == 7


class TestScaleDown:
    def test_stabilization_window_delays_scale_down(self):
        a = make(target=0.5, stabilization=30.0)
        a.decide(now=0, current_replicas=8, utilization=0.5)  # wants 8
        d = a.decide(now=5, current_replicas=8, utilization=0.1)  # wants 2, held
        assert d.desired == 8

    def test_scale_down_after_window_expires(self):
        a = make(target=0.5, stabilization=10.0)
        a.decide(now=0, current_replicas=8, utilization=0.5)
        a.decide(now=5, current_replicas=8, utilization=0.1)
        d = a.decide(now=20, current_replicas=8, utilization=0.1)
        assert d.desired == 2

    def test_min_clamp(self):
        a = make(target=0.5, minimum=2, stabilization=0.001)
        d = a.decide(now=100, current_replicas=5, utilization=0.0)
        assert d.desired == 2

    def test_zero_utilization_goes_to_min(self):
        a = make(minimum=3, stabilization=0.001)
        assert a.decide(now=50, current_replicas=10, utilization=0.0).desired == 3


class TestSteadyState:
    def test_fixed_point_formula(self):
        cfg = AutoscaleConfig(target_utilization=0.65, max_replicas=1000)
        assert steady_state_replicas(6.5, cfg) == 10
        assert steady_state_replicas(0.0, cfg) == 1
        assert steady_state_replicas(0.1, cfg) == 1

    def test_fixed_point_respects_bounds(self):
        cfg = AutoscaleConfig(min_replicas=3, max_replicas=5, target_utilization=0.5)
        assert steady_state_replicas(0.0, cfg) == 3
        assert steady_state_replicas(100.0, cfg) == 5

    def test_fixed_point_is_consistent_with_decide(self):
        """At the fixed point, decide() holds."""
        cfg = AutoscaleConfig(target_utilization=0.5, max_replicas=100)
        offered = 4.2  # cores of demand
        n = steady_state_replicas(offered, cfg)
        a = Autoscaler(cfg)
        d = a.decide(now=0, current_replicas=n, utilization=offered / n)
        assert d.desired == n
