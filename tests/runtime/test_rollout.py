"""Atomic blue/green rollouts vs rolling updates (§4.4)."""

from __future__ import annotations

import pytest

from repro.core.config import RolloutConfig
from repro.core.errors import CrossVersionViolation, RolloutError
from repro.runtime.rollout import (
    BlueGreenRollout,
    PinnedRequest,
    RollingUpdateModel,
    RolloutReport,
    run_rollout,
)


class FakeApp:
    def __init__(self, version):
        self.version = version
        self.shut_down = False

    async def shutdown(self):
        self.shut_down = True


class TestBlueGreen:
    def test_same_version_rejected(self):
        with pytest.raises(RolloutError, match="different deployment versions"):
            BlueGreenRollout(FakeApp("v1"), FakeApp("v1"))

    def test_starts_all_blue(self):
        r = BlueGreenRollout(FakeApp("v1"), FakeApp("v2"), seed=1)
        assert all(r.pin().version == "v1" for _ in range(50))

    def test_advance_shifts_weight(self):
        r = BlueGreenRollout(
            FakeApp("v1"), FakeApp("v2"), config=RolloutConfig(steps=4), seed=1
        )
        assert r.advance() == 0.25
        assert r.advance() == 0.5
        assert r.advance() == 0.75
        assert r.advance() == 1.0
        assert r.done

    def test_full_green_routes_everything_green(self):
        r = BlueGreenRollout(
            FakeApp("v1"), FakeApp("v2"), config=RolloutConfig(steps=1), seed=1
        )
        r.advance()
        assert all(r.pin().version == "v2" for _ in range(50))

    def test_intermediate_split_roughly_matches_weight(self):
        r = BlueGreenRollout(
            FakeApp("v1"), FakeApp("v2"), config=RolloutConfig(steps=2), seed=42
        )
        r.advance()  # 50/50
        greens = sum(r.pin().version == "v2" for _ in range(1000))
        assert 380 < greens < 620

    def test_abort_returns_to_blue(self):
        r = BlueGreenRollout(FakeApp("v1"), FakeApp("v2"), seed=1)
        r.advance()
        r.abort()
        assert r.green_weight == 0.0
        assert all(r.pin().version == "v1" for _ in range(20))

    async def test_finalize_requires_done(self):
        r = BlueGreenRollout(FakeApp("v1"), FakeApp("v2"))
        with pytest.raises(RolloutError, match="advance"):
            await r.finalize()

    async def test_finalize_shuts_down_blue(self):
        blue = FakeApp("v1")
        r = BlueGreenRollout(blue, FakeApp("v2"), config=RolloutConfig(steps=1))
        r.advance()
        await r.finalize()
        assert blue.shut_down
        with pytest.raises(RolloutError, match="finalized"):
            r.advance()

    def test_pin_check_enforces_version(self):
        pinned = PinnedRequest("v1", FakeApp("v1"))
        pinned.check("v1")
        with pytest.raises(CrossVersionViolation):
            pinned.check("v2")


class TestRunRollout:
    async def test_successful_rollout_completes(self):
        blue, green = FakeApp("v1"), FakeApp("v2")

        async def probe(pinned):
            pinned.check(pinned.app.version)  # always consistent

        report = await run_rollout(
            blue, green, config=RolloutConfig(steps=5), probe=probe, seed=3
        )
        assert report.completed and not report.aborted
        assert blue.shut_down
        assert set(report.requests_by_version) <= {"v1", "v2"}
        assert report.total_requests == 50

    async def test_probe_failure_aborts(self):
        blue, green = FakeApp("v1"), FakeApp("v2")

        async def probe(pinned):
            if pinned.version == "v2":
                raise RuntimeError("green is broken")

        report = await run_rollout(
            blue, green, config=RolloutConfig(steps=5), probe=probe, seed=3
        )
        assert report.aborted and not report.completed
        assert "green is broken" in report.abort_reason
        assert not blue.shut_down  # blue still serving


class TestRollingUpdateModel:
    def test_closed_form_endpoints(self):
        m = RollingUpdateModel(num_services=5, replicas_per_service=4)
        assert m.cross_version_fraction(0.0) == 0.0
        assert m.cross_version_fraction(1.0) == 0.0

    def test_closed_form_peak_at_half(self):
        m = RollingUpdateModel(num_services=5, replicas_per_service=4)
        peak = m.cross_version_fraction(0.5)
        assert peak > m.cross_version_fraction(0.1)
        assert peak > m.cross_version_fraction(0.9)
        assert peak == pytest.approx(1 - 2 * 0.5**5)

    def test_more_services_more_crossings(self):
        small = RollingUpdateModel(num_services=2, replicas_per_service=4)
        large = RollingUpdateModel(num_services=11, replicas_per_service=4)
        assert large.cross_version_fraction(0.5) > small.cross_version_fraction(0.5)

    def test_monte_carlo_matches_closed_form(self):
        m = RollingUpdateModel(num_services=4, replicas_per_service=10, seed=7)
        simulated = m.simulate(0.5, requests=5000)
        assert abs(simulated - m.cross_version_fraction(0.5)) < 0.05

    def test_total_exposure_positive_for_any_real_update(self):
        m = RollingUpdateModel(num_services=11, replicas_per_service=3, seed=1)
        assert m.total_exposure(steps=10, requests_per_step=300) > 0.5

    def test_blue_green_has_zero_crossings_by_construction(self):
        """The paper's contrast: with per-request pinning there is no mixed
        path, ever — every request either checks v1 or v2 throughout."""
        r = BlueGreenRollout(
            FakeApp("v1"), FakeApp("v2"), config=RolloutConfig(steps=10), seed=5
        )
        crossings = 0
        while not r.done:
            r.advance()
            for _ in range(100):
                pinned = r.pin()
                try:
                    # Every component the request touches is the pinned app.
                    pinned.check(pinned.app.version)
                except CrossVersionViolation:
                    crossings += 1
        assert crossings == 0
