"""Heartbeat-driven replica health."""

from __future__ import annotations

import pytest

from repro.runtime.health import HealthState, HealthTracker


def tracker():
    return HealthTracker(suspect_after_s=3.0, dead_after_s=10.0)


class TestTransitions:
    def test_registered_is_starting(self):
        t = tracker()
        t.register("r1", now=0.0)
        assert t.state("r1") is HealthState.STARTING

    def test_heartbeat_makes_healthy(self):
        t = tracker()
        t.register("r1", now=0.0)
        t.heartbeat("r1", now=1.0)
        assert t.state("r1") is HealthState.HEALTHY

    def test_heartbeat_implicitly_registers(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.state("r1") is HealthState.HEALTHY

    def test_suspect_after_silence(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.sweep(now=5.0)
        assert t.state("r1") is HealthState.SUSPECT

    def test_dead_after_longer_silence(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        newly_dead = t.sweep(now=11.0)
        assert newly_dead == ["r1"]
        assert t.state("r1") is HealthState.DEAD

    def test_dead_reported_once(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.sweep(now=11.0) == ["r1"]
        assert t.sweep(now=12.0) == []

    def test_suspect_recovers_on_heartbeat(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.sweep(now=5.0)
        t.heartbeat("r1", now=6.0)
        assert t.state("r1") is HealthState.HEALTHY
        assert t.sweep(now=7.0) == []

    def test_mark_dead_explicit(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.mark_dead("r1")
        assert t.state("r1") is HealthState.DEAD

    def test_remove(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.remove("r1")
        assert t.state("r1") is None


class TestQueries:
    def test_healthy_excludes_dead_and_suspect(self):
        t = tracker()
        t.heartbeat("alive", now=10.0)
        t.heartbeat("quiet", now=0.0)
        t.sweep(now=11.0)  # quiet: 11s silence -> dead
        assert t.healthy() == ["alive"]

    def test_starting_counts_as_routable(self):
        t = tracker()
        t.register("r1", now=0.0)
        assert "r1" in t.healthy()

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HealthTracker(suspect_after_s=5.0, dead_after_s=5.0)

    def test_all_snapshot(self):
        t = tracker()
        t.heartbeat("a", now=0.0)
        t.heartbeat("b", now=0.0)
        assert set(t.all()) == {"a", "b"}
