"""Heartbeat-driven replica health."""

from __future__ import annotations

import pytest

from repro.runtime.health import HealthState, HealthTracker


def tracker():
    return HealthTracker(suspect_after_s=3.0, dead_after_s=10.0)


class TestTransitions:
    def test_registered_is_starting(self):
        t = tracker()
        t.register("r1", now=0.0)
        assert t.state("r1") is HealthState.STARTING

    def test_heartbeat_makes_healthy(self):
        t = tracker()
        t.register("r1", now=0.0)
        t.heartbeat("r1", now=1.0)
        assert t.state("r1") is HealthState.HEALTHY

    def test_heartbeat_implicitly_registers(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.state("r1") is HealthState.HEALTHY

    def test_suspect_after_silence(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.sweep(now=5.0)
        assert t.state("r1") is HealthState.SUSPECT

    def test_dead_after_longer_silence(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        newly_dead = t.sweep(now=11.0)
        assert newly_dead == ["r1"]
        assert t.state("r1") is HealthState.DEAD

    def test_dead_reported_once(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.sweep(now=11.0) == ["r1"]
        assert t.sweep(now=12.0) == []

    def test_suspect_recovers_on_heartbeat(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.sweep(now=5.0)
        t.heartbeat("r1", now=6.0)
        assert t.state("r1") is HealthState.HEALTHY
        assert t.sweep(now=7.0) == []

    def test_suspect_recovers_just_before_death(self):
        # A heartbeat arriving *late* — after SUSPECT, a breath before the
        # dead threshold — must fully restore the replica.
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.sweep(now=9.9)
        assert t.state("r1") is HealthState.SUSPECT
        t.heartbeat("r1", now=9.95)
        assert t.state("r1") is HealthState.HEALTHY
        # The silence clock restarted: no death at the old deadline.
        assert t.sweep(now=10.5) == []
        assert "r1" in t.healthy()

    def test_mark_dead_explicit(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.mark_dead("r1")
        assert t.state("r1") is HealthState.DEAD

    def test_remove(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        t.remove("r1")
        assert t.state("r1") is None


class TestReapedReRegistration:
    """A replica id that was reaped can come back (process restart reusing
    the slot) without being spuriously re-reported or silently dropped."""

    def test_reregister_after_reap_starts_fresh(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.sweep(now=11.0) == ["r1"]  # reaped
        t.remove("r1")
        t.register("r1", now=12.0)
        assert t.state("r1") is HealthState.STARTING
        # Fresh lifetime: not re-reported while its heartbeats are current.
        assert t.sweep(now=13.0) == []
        assert "r1" in t.healthy()

    def test_reregistered_replica_can_die_again(self):
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.sweep(now=11.0) == ["r1"]
        t.remove("r1")
        t.heartbeat("r1", now=12.0)  # implicit re-registration
        assert t.sweep(now=23.0) == ["r1"]  # second lifetime reported too

    def test_heartbeat_after_reap_without_remove_revives(self):
        # A "zombie" that was declared dead but speaks again: the tracker
        # believes the evidence (it is demonstrably alive) and will report
        # the next death as a new event.
        t = tracker()
        t.heartbeat("r1", now=0.0)
        assert t.sweep(now=11.0) == ["r1"]
        t.heartbeat("r1", now=12.0)
        assert t.state("r1") is HealthState.HEALTHY
        assert t.sweep(now=13.0) == []
        assert t.sweep(now=23.0) == ["r1"]


class TestQueries:
    def test_healthy_excludes_dead_and_suspect(self):
        t = tracker()
        t.heartbeat("alive", now=10.0)
        t.heartbeat("quiet", now=0.0)
        t.sweep(now=11.0)  # quiet: 11s silence -> dead
        assert t.healthy() == ["alive"]

    def test_starting_counts_as_routable(self):
        t = tracker()
        t.register("r1", now=0.0)
        assert "r1" in t.healthy()

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HealthTracker(suspect_after_s=5.0, dead_after_s=5.0)

    def test_all_snapshot(self):
        t = tracker()
        t.heartbeat("a", now=0.0)
        t.heartbeat("b", now=0.0)
        assert set(t.all()) == {"a", "b"}
