"""Multi-core proclets end to end: worker loops under the full runtime
(routing, admission, streaming, state, telemetry)."""

from __future__ import annotations

import asyncio
import threading

from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.status import render_status

from tests.conftest import DEMO_PAIRS, Adder, Greeter, KVStore


def fresh_registry() -> Registry:
    registry = Registry()
    for iface, impl in DEMO_PAIRS:
        registry.register(iface, impl)
    return registry


async def deployed(**kwargs):
    config = kwargs.pop(
        "config",
        AppConfig(name="mc", workers=2, max_inflight=8, stream_threshold_bytes=64 * 1024),
    )
    return await deploy_multiprocess(config, registry=fresh_registry(), **kwargs)


class TestMultiCoreProclets:
    async def test_calls_cross_worker_loops(self):
        app = await deployed()
        try:
            assert await app.get(Adder).add(2, 3) == 5
            # Greeter -> Adder is an outbound RPC *from a worker loop*:
            # the loop-pinned runtime path and loop-keyed pool in action.
            assert await app.get(Greeter).greet("Ana") == "Hello, Ana! (4)"
        finally:
            await app.shutdown()

    async def test_streaming_through_worker_loops(self):
        app = await deployed()
        try:
            kv = app.get(KVStore)
            big = "x" * (512 * 1024)  # over stream_threshold_bytes
            await kv.put("big", big)
            assert await kv.get("big") == big
        finally:
            await app.shutdown()

    async def test_state_writes_from_concurrent_requests(self):
        app = await deployed()
        try:
            kv = app.get(KVStore)
            await asyncio.gather(
                *[kv.put(f"k{i}", f"v{i}") for i in range(40)]
            )
            got = await asyncio.gather(*[kv.get(f"k{i}") for i in range(40)])
            assert got == [f"v{i}" for i in range(40)]
        finally:
            await app.shutdown()

    async def test_worker_stats_reach_the_status_page(self):
        app = await deployed()
        try:
            await app.get(Adder).add(1, 1)
            for _ in range(40):  # heartbeats export the worker gauges
                if any(
                    name.startswith("worker_")
                    for (name, _), _ in app.manager.metrics.cells().items()
                ):
                    break
                await asyncio.sleep(0.1)
            out = render_status(app.manager)
            assert "data-plane workers" in out
            assert "loop_lag" in out
        finally:
            await app.shutdown()

    async def test_drain_with_workers(self):
        app = await deployed()
        try:
            assert await app.get(Adder).add(1, 2) == 3
            proclet = next(
                e.proclet
                for e in app.envelopes.values()
                if any(n.endswith("Adder") for n in e.proclet.hosted)
            )
            drained_s = await proclet.drain(2.0)
            assert drained_s < 2.0
            assert proclet.inflight_rpcs == 0
        finally:
            await app.shutdown()

    async def test_shutdown_reaps_worker_threads(self):
        app = await deployed()
        assert await app.get(Adder).add(4, 4) == 8
        await app.shutdown()
        for _ in range(100):
            leftover = [
                t.name
                for t in threading.enumerate()
                if t.name.startswith(("rpc-worker", "rpc-acceptor"))
            ]
            if not leftover:
                break
            await asyncio.sleep(0.02)
        assert leftover == []

    async def test_subprocess_mode_with_workers(self):
        app = await deployed(mode="subprocess")
        try:
            assert await app.get(Adder).add(20, 22) == 42
            kv = app.get(KVStore)
            big = "y" * (256 * 1024)
            await kv.put("big", big)
            assert await kv.get("big") == big
        finally:
            await app.shutdown()

    async def test_workers_one_is_the_old_single_loop_path(self):
        config = AppConfig(name="mc1", workers=1)
        app = await deploy_multiprocess(config, registry=fresh_registry())
        try:
            assert await app.get(Greeter).greet("Bo") == "Hello, Bo! (3)"
            env = next(iter(app.envelopes.values()))
            assert env.proclet._server.accept_mode == "inline"
        finally:
            await app.shutdown()
