"""The routing advisor: learning affinity keys from traffic (§5.2)."""

from __future__ import annotations

import pytest

from repro.runtime.advisor import MAX_TRACKED_VALUES, ParamStats, RoutingAdvisor


def feed(advisor, component, method, names, rows):
    for row in rows:
        advisor.observe(component, method, names, row)


class TestParamStats:
    def test_repeat_rate(self):
        s = ParamStats()
        for v in ["a", "b", "a", "a", "b"]:
            s.observe(v)
        assert s.distinct == 2
        assert s.repeat_rate == pytest.approx(1 - 2 / 5)

    def test_all_unique_is_zero_repeat(self):
        s = ParamStats()
        for i in range(10):
            s.observe(i)
        assert s.repeat_rate == 0.0

    def test_unhashable_disables(self):
        s = ParamStats()
        s.observe(["list", "is", "unhashable"])
        s.observe("fine")
        assert s.unhashable
        assert s.repeat_rate == 0.0

    def test_overflow_means_no_affinity(self):
        s = ParamStats()
        for i in range(MAX_TRACKED_VALUES + 10):
            s.observe(i)
        assert s.overflowed
        assert s.repeat_rate == 0.0

    def test_type_distinguishes_values(self):
        s = ParamStats()
        s.observe(1)
        s.observe("1")  # different type: different key
        assert s.distinct == 2


class TestAdvisor:
    def test_suggests_the_repeating_param(self):
        advisor = RoutingAdvisor()
        rows = [(f"user-{i % 5}", f"req-{i}") for i in range(100)]
        feed(advisor, "app.Cache", "get", ("user_id", "request_id"), rows)
        (s,) = advisor.suggestions()
        assert s.param == "user_id"
        assert s.distinct_values == 5
        assert s.repeat_rate > 0.9
        assert "@routed(by='user_id')" in str(s)

    def test_unique_params_not_suggested(self):
        advisor = RoutingAdvisor()
        feed(
            advisor,
            "app.Svc",
            "m",
            ("request_id",),
            [(f"r{i}",) for i in range(100)],
        )
        assert advisor.suggestions() == []

    def test_constant_param_not_suggested(self):
        advisor = RoutingAdvisor()
        feed(advisor, "app.Svc", "m", ("region",), [("us-east",)] * 100)
        assert advisor.suggestions() == []  # distinct=1 < min_distinct

    def test_min_calls_threshold(self):
        advisor = RoutingAdvisor()
        feed(advisor, "app.Svc", "m", ("k",), [("a",), ("a",), ("b",), ("c",)])
        assert advisor.suggestions(min_calls=20) == []
        assert (
            advisor.suggestions(min_calls=2, min_distinct=3, min_repeat_rate=0.2) != []
        )

    def test_already_routed_methods_excluded(self):
        advisor = RoutingAdvisor()
        advisor.observe("app.Store", "get", ("key",), ("k1",), already_routed=True)
        feed(advisor, "app.Store", "get", ("key",), [("a",)] * 50)
        assert advisor.suggestions() == []

    def test_best_param_per_method(self):
        advisor = RoutingAdvisor()
        rows = [(f"u{i % 4}", f"s{i % 40}") for i in range(200)]
        feed(advisor, "app.Svc", "m", ("user", "session"), rows)
        (s,) = advisor.suggestions()
        assert s.param == "user"  # higher repeat rate than session

    def test_reset(self):
        advisor = RoutingAdvisor()
        feed(advisor, "a.B", "m", ("k",), [("x",)] * 50)
        advisor.reset()
        assert advisor.suggestions(min_calls=1, min_distinct=1) == []


class TestAdvisorInRuntime:
    async def test_advisor_rediscovers_cartstore_affinity(self):
        """Drive the boutique through a proclet-per-component deployment
        and check the advisor proposes user_id keys for cart methods that
        we deliberately leave unannotated (Cart itself; CartStore is
        @routed already and therefore excluded)."""
        from repro.boutique import ALL_COMPONENTS, CartItem, Frontend
        from repro.core.config import AppConfig
        from repro.runtime.deployers.multi import deploy_multiprocess

        app = await deploy_multiprocess(
            AppConfig(name="advise"), components=ALL_COMPONENTS, mode="inproc"
        )
        fe = app.get(Frontend)
        for i in range(60):
            await fe.add_to_cart(f"user-{i % 6}", "OLJCESPC7Z", 1)

        suggestions = []
        for envelope in app.envelopes.values():
            suggestions += envelope.proclet.advisor.suggestions(
                min_calls=30, min_distinct=3
            )
        await app.shutdown()

        by_method = {(s.component.rsplit(".", 1)[-1], s.method): s for s in suggestions}
        cart_add = by_method.get(("Cart", "add_item"))
        assert cart_add is not None, suggestions
        assert cart_add.param == "user_id"
        # CartStore is already @routed: no advice for it.
        assert not any(s.component.endswith("CartStore") for s in suggestions)
