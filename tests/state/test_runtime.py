"""StateRuntime: ownership enforcement and the ctx.state facade.

The contract the routing layer depends on: a replica serves a key only
while the current assignment maps it there; anything else is rejected
with a retryable, provably-not-executed WrongOwner *before* touching
state, so a stale caller can never land a silent write on the old owner.
"""

from __future__ import annotations

import pytest

from repro.core.errors import WrongOwner, error_from_code
from repro.runtime.routing import build_assignment
from repro.state import StateRuntime


def runtime_with_ring(tmp_path, *, self_address, replicas, component="comp"):
    rt = StateRuntime("r1", str(tmp_path), num_shards=4)
    rt.set_self_address(self_address)
    rt.update_assignment(build_assignment(component, replicas, generation=1))
    return rt


def owned_and_foreign_keys(assignment, self_address, count=200):
    owned, foreign = [], []
    for i in range(count):
        key = f"key-{i}"
        (owned if assignment.replica_for(key) == self_address else foreign).append(key)
    return owned, foreign


class TestOwnershipCheck:
    def test_owned_keys_accepted_foreign_rejected(self, tmp_path):
        replicas = ["addr-a", "addr-b", "addr-c"]
        rt = runtime_with_ring(tmp_path, self_address="addr-a", replicas=replicas)
        assignment = rt.assignment_for("comp")
        owned, foreign = owned_and_foreign_keys(assignment, "addr-a")
        assert owned and foreign  # the ring split the key space

        rt.put("comp", owned[0], "mine")
        assert rt.get("comp", owned[0]) == "mine"
        with pytest.raises(WrongOwner) as excinfo:
            rt.put("comp", foreign[0], "not-mine")
        assert excinfo.value.executed is False
        assert excinfo.value.retryable is True
        assert excinfo.value.owner != "addr-a"
        # The rejected write never reached state.
        assert foreign[0] not in rt.keys("comp")

    def test_no_assignment_means_serve_everything(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        rt.set_self_address("addr-a")
        rt.put("comp", "any-key", 1)  # must not raise

    def test_no_self_address_means_serve_everything(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        rt.update_assignment(build_assignment("comp", ["elsewhere"], generation=1))
        rt.put("comp", "any-key", 1)  # single-process mode: no enforcement

    def test_stale_assignment_loses_to_newer_generation(self, tmp_path):
        rt = runtime_with_ring(
            tmp_path, self_address="addr-a", replicas=["addr-a", "addr-b"]
        )
        newer = build_assignment("comp", ["addr-a"], generation=2)
        rt.update_assignment(newer)
        older = build_assignment("comp", ["addr-b"], generation=1)
        rt.update_assignment(older)  # ignored: generation-monotonic
        rt.put("comp", "k", 1)  # gen-2 says we own everything

    def test_wrong_owner_survives_the_wire(self):
        original = WrongOwner("comp key 'k' is owned by addr-b", owner="addr-b")
        rehydrated = error_from_code(original.code, str(original), executed=True)
        assert isinstance(rehydrated, WrongOwner)
        assert rehydrated.wrong_owner is True
        assert rehydrated.executed is False


class TestComponentStateFacade:
    async def test_get_put_update_delete(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        state = rt.component_state("comp")
        assert await state.get("k") is None
        assert await state.get("k", default=0) == 0
        await state.put("k", {"a": 1})
        assert await state.get("k") == {"a": 1}
        assert await state.update("n", lambda v: v + 1, default=0) == 1
        assert await state.update("n", lambda v: v + 1, default=0) == 2
        assert await state.delete("k") is True
        assert await state.delete("k") is False
        assert await state.keys() == ["n"]
        assert (await state.stats())["writes"] == 5

    async def test_keys_must_be_nonempty_strings(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        state = rt.component_state("comp")
        with pytest.raises(TypeError):
            await state.put(42, "v")
        with pytest.raises(TypeError):
            await state.get("")

    async def test_components_are_isolated(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        await rt.component_state("a").put("k", "from-a")
        await rt.component_state("b").put("k", "from-b")
        assert await rt.component_state("a").get("k") == "from-a"
        assert await rt.component_state("b").get("k") == "from-b"


class TestHandoverAndIntrospection:
    def test_export_import_round_trip(self, tmp_path):
        old = StateRuntime("old", str(tmp_path), num_shards=2)
        for i in range(10):
            old.put("comp", f"k{i}", i)
        manifests = old.export_for_handover()
        assert manifests and all(isinstance(m, dict) for m in manifests)
        new = StateRuntime("new", str(tmp_path), num_shards=2)
        new.import_handover(manifests)
        assert new.get("comp", "k7") == 7

    def test_detach_component_flushes_for_next_owner(self, tmp_path):
        rt = StateRuntime("r1", str(tmp_path))
        rt.put("comp", "k", "v")
        rt.detach_component("comp")
        other = StateRuntime("r2", str(tmp_path))
        assert other.get("comp", "k") == "v"

    def test_shard_map_reports_generation_and_counts(self, tmp_path):
        rt = runtime_with_ring(
            tmp_path, self_address="addr-a", replicas=["addr-a"]
        )
        rt.put("comp", "k", 1)
        view = rt.shard_map()
        assert view["comp"]["keys"] == 1
        assert view["comp"]["generation"] == 1
        assert view["comp"]["shard_ids"]
