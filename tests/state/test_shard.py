"""Shard and StateStore semantics: crash recovery, snapshots, handover.

E15/E16's durability claim reduces to these properties: an attach rebuilds
exactly the acknowledged writes, snapshots bound replay without losing
anything, deletes don't resurrect, and a handed-over shard replays under
its new owner with versions intact.
"""

from __future__ import annotations

import os

import pytest

from repro.state.shard import Shard, ShardManifest
from repro.state.store import StateStore
from repro.state.wal import segment_files


def attached(tmp_path, writer="w1", **kwargs) -> Shard:
    shard = Shard("comp", 0, str(tmp_path / "shard-0000"), writer, **kwargs)
    shard.attach()
    return shard


class TestShardRecovery:
    def test_kill_and_reattach_recovers_acked_writes(self, tmp_path):
        first = attached(tmp_path, "w1")
        first.put("a", 1)
        first.put("b", [2, 3])
        first.put("a", 10)
        # No close(): simulates SIGKILL — the flushed WAL is all there is.
        second = attached(tmp_path, "w2")
        assert second.get("a") == 10
        assert second.get("b") == [2, 3]
        assert second.replayed_records == 3

    def test_delete_survives_recovery(self, tmp_path):
        first = attached(tmp_path, "w1")
        first.put("gone", "x")
        first.delete("gone")
        second = attached(tmp_path, "w2")
        assert second.get("gone") is None
        assert not second.contains("gone")

    def test_tombstone_blocks_resurrection_from_older_segment(self, tmp_path):
        # Writer A logs a put and dies; writer B (the new owner) deletes
        # the key and snapshots.  A's orphan segment still holds the put —
        # replay must not bring the key back.
        a = attached(tmp_path, "a")
        a.put("k", "old")
        b = attached(tmp_path, "b")
        b.delete("k")
        b.snapshot()
        c = attached(tmp_path, "c")
        assert c.get("k") is None

    def test_versions_resume_after_recovery(self, tmp_path):
        first = attached(tmp_path, "w1")
        first.put("k", "v1")
        first.put("k", "v2")
        second = attached(tmp_path, "w2")
        second.put("k", "v3")
        assert second._data["k"][0] == 3  # strictly above replayed versions


class TestShardSnapshot:
    def test_snapshot_truncates_own_segment(self, tmp_path):
        shard = attached(tmp_path, "w1")
        for i in range(5):
            shard.put(f"k{i}", i)
        shard.snapshot()
        # The covered segment is gone; a fresh (empty) one is open.
        segments = segment_files(shard.directory)
        assert len(segments) == 1
        assert os.path.getsize(os.path.join(shard.directory, segments[0])) == 0
        second = attached(tmp_path, "w2")
        assert {k: second.get(k) for k in second.keys()} == {
            f"k{i}": i for i in range(5)
        }

    def test_auto_snapshot_after_threshold(self, tmp_path):
        shard = attached(tmp_path, "w1", snapshot_every=10)
        for i in range(25):
            shard.put("hot", i)
        # 25 appends with snapshot_every=10 -> at least 2 snapshots; replay
        # cost for the next owner is bounded by the threshold.
        second = attached(tmp_path, "w2")
        assert second.get("hot") == 24
        assert second.replayed_records <= 10

    def test_memory_mode_has_no_files(self):
        shard = Shard("comp", 0, None, "w1")
        shard.attach()
        shard.put("k", "v")
        assert shard.get("k") == "v"
        assert shard.snapshot() is None


class TestStoreHandover:
    def make_store(self, tmp_path, writer="r1", **kwargs) -> StateStore:
        return StateStore("cart", str(tmp_path), writer, num_shards=4, **kwargs)

    def test_export_import_preserves_all_keys(self, tmp_path):
        old = self.make_store(tmp_path, "old")
        for i in range(20):
            old.put(f"user-{i}", {"n": i})
        manifests = old.export_handover()
        assert sum(m.keys for m in manifests) == 20
        new = self.make_store(tmp_path, "new")
        for manifest in manifests:
            new.import_handover(manifest)
        assert sorted(new.keys()) == sorted(f"user-{i}" for i in range(20))
        assert new.get("user-7") == {"n": 7}

    def test_manifest_wire_round_trip(self, tmp_path):
        store = self.make_store(tmp_path)
        store.put("k", "v")
        (manifest,) = store.export_handover()
        again = ShardManifest.from_wire(manifest.to_wire())
        assert again == manifest

    def test_memory_store_hands_over_inline(self):
        old = StateStore("cart", None, "old", num_shards=2)
        old.put("a", 1)
        old.put("b", 2)
        manifests = old.export_handover()
        assert all(m.inline is not None for m in manifests)
        new = StateStore("cart", None, "new", num_shards=2)
        for manifest in manifests:
            new.import_handover(manifest)
        assert new.get("a") == 1 and new.get("b") == 2

    def test_reattach_after_detach_uses_fresh_writer_token(self, tmp_path):
        store = self.make_store(tmp_path)
        store.put("k", 1)
        sid = store.shard_id("k")
        first_writer = store.shard(sid).writer
        store.detach()
        store.put("k", 2)
        assert store.shard(sid).writer != first_writer
        assert store.get("k") == 2

    def test_stats_counts(self, tmp_path):
        store = self.make_store(tmp_path)
        store.put("a", 1)
        store.get("a")
        stats = store.stats()
        assert stats["writes"] == 1
        assert stats["reads"] == 1
        assert stats["keys"] == 1
