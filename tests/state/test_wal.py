"""WAL segments and snapshots: the durability floor of repro.state.

The invariant everything above relies on: an append returns only after
the record is flushed, replay max-merges per key by version, torn tails
are skipped, and a writer's snapshot covers (and may truncate) only its
own segments.
"""

from __future__ import annotations

import os

import pytest

from repro.state.snapshot import (
    prune_writer_files,
    read_snapshots,
    snapshot_files,
    write_snapshot,
)
from repro.state.wal import WalRecord, WalWriter, replay_segments, segment_files


class TestWalRoundTrip:
    def test_append_then_replay(self, tmp_path):
        writer = WalWriter(str(tmp_path / "wal-a.log"))
        writer.append(WalRecord(key="k1", version=1, value={"n": 1}))
        writer.append(WalRecord(key="k2", version=1, value=[1, 2]))
        writer.append(WalRecord(key="k1", version=2, value={"n": 2}))
        writer.close()

        records = list(replay_segments(str(tmp_path)))
        assert [(r.key, r.version) for r in records] == [
            ("k1", 1),
            ("k2", 1),
            ("k1", 2),
        ]
        assert records[2].value == {"n": 2}

    def test_delete_records_round_trip(self, tmp_path):
        writer = WalWriter(str(tmp_path / "wal-a.log"))
        writer.append(WalRecord(key="k", version=1, value="x"))
        writer.append(WalRecord(key="k", version=2, deleted=True))
        writer.close()
        records = list(replay_segments(str(tmp_path)))
        assert records[1].deleted is True
        assert records[1].value is None

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "wal-a.log"
        writer = WalWriter(str(path))
        writer.append(WalRecord(key="good", version=1, value=1))
        writer.close()
        # Simulate a crash mid-append: a partial JSON line with no newline.
        with open(path, "ab") as f:
            f.write(b'{"k": "torn", "ver": 2, "v"')
        records = list(replay_segments(str(tmp_path)))
        assert [r.key for r in records] == ["good"]

    def test_replay_spans_multiple_writers_sorted(self, tmp_path):
        for name, key in [("wal-b.log", "from-b"), ("wal-a.log", "from-a")]:
            w = WalWriter(str(tmp_path / name))
            w.append(WalRecord(key=key, version=1, value=0))
            w.close()
        assert segment_files(str(tmp_path)) == ["wal-a.log", "wal-b.log"]
        assert [r.key for r in replay_segments(str(tmp_path))] == [
            "from-a",
            "from-b",
        ]

    def test_append_is_flushed_before_return(self, tmp_path):
        path = tmp_path / "wal-a.log"
        writer = WalWriter(str(path))
        writer.append(WalRecord(key="k", version=1, value="v"))
        # Without closing: the bytes must already be visible to a reader,
        # which is what makes an acknowledged write survive a kill.
        assert list(replay_segments(str(tmp_path)))[0].key == "k"
        writer.close()


class TestSnapshots:
    def test_write_read_round_trip(self, tmp_path):
        write_snapshot(str(tmp_path), "w1", 1, {"a": (3, "x")}, {"b": 2})
        data, tombs = read_snapshots(str(tmp_path))
        assert data == {"a": (3, "x")}
        assert tombs == {"b": 2}

    def test_overlapping_snapshots_max_merge(self, tmp_path):
        write_snapshot(str(tmp_path), "w1", 1, {"a": (1, "old"), "b": (5, "keep")}, {})
        write_snapshot(str(tmp_path), "w2", 1, {"a": (2, "new"), "b": (1, "stale")}, {})
        data, _ = read_snapshots(str(tmp_path))
        assert data["a"] == (2, "new")
        assert data["b"] == (5, "keep")

    def test_prune_removes_only_own_older_snapshots(self, tmp_path):
        write_snapshot(str(tmp_path), "w1", 1, {}, {})
        keep = write_snapshot(str(tmp_path), "w1", 2, {}, {})
        other = write_snapshot(str(tmp_path), "w2", 1, {}, {})
        removed = prune_writer_files(str(tmp_path), "w1", keep=keep)
        assert removed == 1
        assert set(snapshot_files(str(tmp_path))) == {keep, other}

    def test_missing_directory_is_empty(self, tmp_path):
        missing = str(tmp_path / "nope")
        assert read_snapshots(missing) == ({}, {})
        assert list(replay_segments(missing)) == []
