"""Test package."""
