"""Interface compilation into wire contracts."""

from __future__ import annotations

import pytest

from repro.codegen.compiler import compile_interface, routed
from repro.codegen.schema import Kind
from repro.core.component import Component
from repro.core.errors import RegistrationError


class Calculator(Component):
    async def add(self, a: int, b: int) -> int: ...

    async def negate(self, x: int) -> int: ...

    @routed(by="key")
    async def lookup(self, key: str) -> str: ...

    async def reset(self) -> None: ...


SPEC = compile_interface(Calculator, "test.Calculator")


class TestCompilation:
    def test_all_methods_found(self):
        assert {m.name for m in SPEC.methods} == {"add", "negate", "lookup", "reset"}

    def test_indices_sorted_by_name(self):
        names = [m.name for m in SPEC.methods]
        assert names == sorted(names)
        assert [m.index for m in SPEC.methods] == list(range(4))

    def test_indices_deterministic(self):
        again = compile_interface(Calculator, "test.Calculator")
        assert [m.name for m in again.methods] == [m.name for m in SPEC.methods]

    def test_arg_schema_is_tuple(self):
        add = SPEC.method("add")
        assert add.arg_schema.kind is Kind.TUPLE
        assert len(add.arg_schema.args) == 2

    def test_arg_names(self):
        assert SPEC.method("add").arg_names == ("a", "b")

    def test_result_schema(self):
        assert SPEC.method("add").result_schema.kind is Kind.INT
        assert SPEC.method("reset").result_schema.kind is Kind.NONE

    def test_zero_arg_method(self):
        assert SPEC.method("reset").arg_names == ()

    def test_routing_key(self):
        assert SPEC.method("lookup").routing_key == "key"
        assert SPEC.method("lookup").routing_index == 0
        assert SPEC.method("add").routing_key is None
        assert SPEC.method("add").routing_index is None

    def test_unknown_method_raises(self):
        with pytest.raises(RegistrationError):
            SPEC.method("nope")

    def test_signature_mentions_routing(self):
        assert "@key" in SPEC.method("lookup").signature()

    def test_interface_signature_contains_all_methods(self):
        sig = SPEC.signature()
        for m in ("add", "negate", "lookup", "reset"):
            assert m in sig


class TestCompilationErrors:
    def test_sync_method_rejected(self):
        class Bad(Component):
            def sync_method(self, x: int) -> int: ...

        with pytest.raises(RegistrationError, match="async"):
            compile_interface(Bad, "test.Bad")

    def test_missing_annotation_rejected(self):
        class Bad(Component):
            async def m(self, x) -> int: ...

        with pytest.raises(RegistrationError, match="annotation"):
            compile_interface(Bad, "test.Bad")

    def test_star_args_rejected(self):
        class Bad(Component):
            async def m(self, *args: int) -> int: ...

        with pytest.raises(RegistrationError, match="args"):
            compile_interface(Bad, "test.Bad")

    def test_kwargs_rejected(self):
        class Bad(Component):
            async def m(self, **kw: int) -> int: ...

        with pytest.raises(RegistrationError):
            compile_interface(Bad, "test.Bad")

    def test_empty_interface_rejected(self):
        class Empty(Component):
            pass

        with pytest.raises(RegistrationError, match="no methods"):
            compile_interface(Empty, "test.Empty")

    def test_routed_by_unknown_param_rejected(self):
        class Bad(Component):
            @routed(by="nonexistent")
            async def m(self, x: int) -> int: ...

        with pytest.raises(RegistrationError, match="nonexistent"):
            compile_interface(Bad, "test.Bad")

    def test_unserializable_param_rejected(self):
        class Unmarked:
            pass

        class Bad(Component):
            async def m(self, x: Unmarked) -> int: ...

        with pytest.raises(Exception):
            compile_interface(Bad, "test.Bad")

    def test_inherited_methods_compiled(self):
        class BaseIface(Component):
            async def base_method(self, x: int) -> int: ...

        class Derived(BaseIface):
            async def extra(self, y: str) -> str: ...

        spec = compile_interface(Derived, "test.Derived")
        assert {m.name for m in spec.methods} == {"base_method", "extra"}

    def test_private_methods_excluded(self):
        class WithPrivate(Component):
            async def public(self, x: int) -> int: ...

            async def _helper(self, x: int) -> int: ...

        spec = compile_interface(WithPrivate, "test.WithPrivate")
        assert {m.name for m in spec.methods} == {"public"}
