"""Schema derivation from type hints."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import pytest

from repro.codegen.schema import Kind, Schema, clear_cache, schema_of
from repro.core.errors import SchemaError


class Color(enum.Enum):
    RED = 1
    GREEN = 2
    BLUE = 3


@dataclass
class Point:
    x: int
    y: int


@dataclass
class Shape:
    name: str
    points: list[Point]
    color: Color
    label: Optional[str]


@dataclass
class LinkedNode:
    value: int
    next: Optional["LinkedNode"]


class TestPrimitives:
    def test_bool(self):
        assert schema_of(bool).kind is Kind.BOOL

    def test_int(self):
        assert schema_of(int).kind is Kind.INT

    def test_float(self):
        assert schema_of(float).kind is Kind.FLOAT

    def test_str(self):
        assert schema_of(str).kind is Kind.STR

    def test_bytes(self):
        assert schema_of(bytes).kind is Kind.BYTES

    def test_none_type(self):
        assert schema_of(type(None)).kind is Kind.NONE

    def test_none_literal(self):
        assert schema_of(None).kind is Kind.NONE

    def test_primitives_are_shared_singletons(self):
        assert schema_of(int) is schema_of(int)


class TestContainers:
    def test_list(self):
        s = schema_of(list[int])
        assert s.kind is Kind.LIST
        assert s.args[0].kind is Kind.INT

    def test_set(self):
        s = schema_of(set[str])
        assert s.kind is Kind.SET

    def test_frozenset(self):
        assert schema_of(frozenset[int]).kind is Kind.SET

    def test_dict(self):
        s = schema_of(dict[str, float])
        assert s.kind is Kind.DICT
        assert s.args[0].kind is Kind.STR
        assert s.args[1].kind is Kind.FLOAT

    def test_fixed_tuple(self):
        s = schema_of(tuple[int, str, bool])
        assert s.kind is Kind.TUPLE
        assert len(s.args) == 3

    def test_variable_tuple(self):
        s = schema_of(tuple[int, ...])
        assert s.kind is Kind.TUPLE
        assert s.args[1].kind is Kind.ANY

    def test_nested_containers(self):
        s = schema_of(dict[str, list[tuple[int, int]]])
        inner = s.args[1].args[0]
        assert inner.kind is Kind.TUPLE

    def test_bare_list_rejected(self):
        with pytest.raises(SchemaError):
            schema_of(list)

    def test_bare_tuple_rejected(self):
        with pytest.raises(SchemaError):
            schema_of(tuple[()]) if False else schema_of(tuple)


class TestOptional:
    def test_optional(self):
        s = schema_of(Optional[int])
        assert s.kind is Kind.OPTIONAL
        assert s.args[0].kind is Kind.INT

    def test_pipe_none_syntax(self):
        s = schema_of(int | None)
        assert s.kind is Kind.OPTIONAL

    def test_general_union_rejected(self):
        with pytest.raises(SchemaError, match="union"):
            schema_of(int | str)

    def test_three_way_union_rejected(self):
        with pytest.raises(SchemaError):
            schema_of(int | str | None)


class TestStructsAndEnums:
    def test_enum(self):
        s = schema_of(Color)
        assert s.kind is Kind.ENUM
        assert s.cls is Color

    def test_dataclass_fields_in_order(self):
        s = schema_of(Point)
        assert s.kind is Kind.STRUCT
        assert [f.name for f in s.fields] == ["x", "y"]

    def test_nested_dataclass(self):
        s = schema_of(Shape)
        names = [f.name for f in s.fields]
        assert names == ["name", "points", "color", "label"]
        assert s.fields[1].schema.args[0].cls is Point

    def test_recursive_dataclass_rejected(self):
        clear_cache()
        with pytest.raises(SchemaError, match="recursive"):
            schema_of(LinkedNode)

    def test_unresolvable_forward_ref_rejected(self):
        @dataclass
        class Local:
            other: "DoesNotExistAnywhere"  # noqa: F821

        with pytest.raises(SchemaError, match="resolve"):
            schema_of(Local)

    def test_non_init_fields_excluded(self):
        @dataclass
        class WithDerived:
            a: int
            b: int = field(init=False, default=0)

        s = schema_of(WithDerived)
        assert [f.name for f in s.fields] == ["a"]

    def test_unannotated_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(SchemaError, match="not serializable"):
            schema_of(Plain)

    def test_callable_rejected(self):
        with pytest.raises(SchemaError):
            schema_of(lambda x: x)


class TestCanonical:
    def test_canonical_stable(self):
        assert schema_of(Point).canonical() == schema_of(Point).canonical()

    def test_canonical_distinguishes_types(self):
        assert schema_of(list[int]).canonical() != schema_of(list[str]).canonical()

    def test_canonical_includes_field_names(self):
        assert "x:int" in schema_of(Point).canonical()

    def test_canonical_includes_class_name(self):
        assert "Point" in schema_of(Point).canonical()

    def test_enum_canonical_includes_members(self):
        c = schema_of(Color).canonical()
        assert "RED" in c and "BLUE" in c

    def test_any_schema(self):
        assert schema_of(Any).kind is Kind.ANY
