"""Deployment version digests."""

from __future__ import annotations

from repro.codegen.compiler import compile_interface
from repro.codegen.versioning import deployment_version
from repro.core.component import Component


class A(Component):
    async def m(self, x: int) -> int: ...


class B(Component):
    async def n(self, y: str) -> str: ...


class AChanged(Component):
    async def m(self, x: int, extra: bool) -> int: ...


SPEC_A = compile_interface(A, "test.A")
SPEC_B = compile_interface(B, "test.B")
SPEC_A2 = compile_interface(AChanged, "test.A")  # same name, new signature


def test_version_deterministic():
    assert deployment_version([SPEC_A, SPEC_B]) == deployment_version([SPEC_A, SPEC_B])


def test_version_order_independent():
    assert deployment_version([SPEC_A, SPEC_B]) == deployment_version([SPEC_B, SPEC_A])


def test_version_changes_with_signature():
    assert deployment_version([SPEC_A]) != deployment_version([SPEC_A2])


def test_version_changes_with_component_set():
    assert deployment_version([SPEC_A]) != deployment_version([SPEC_A, SPEC_B])


def test_salt_mints_new_version():
    base = deployment_version([SPEC_A])
    assert deployment_version([SPEC_A], salt="build-2") != base


def test_version_is_short_hex():
    v = deployment_version([SPEC_A])
    assert len(v) == 16
    int(v, 16)  # parses as hex
