"""The weavertest deployment harness."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigError
from repro.testing.harness import weavertest

from tests.conftest import Adder, Greeter


class TestModes:
    async def test_single_mode(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="single") as app:
            assert await app.get(Greeter).greet("A") == "Hello, A! (2)"

    async def test_multi_mode(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            assert await app.get(Greeter).greet("A") == "Hello, A! (2)"
            assert app.manager.total_replicas() == 4

    async def test_unknown_mode(self, demo_registry):
        with pytest.raises(ConfigError):
            async with weavertest(registry=demo_registry, mode="quantum"):
                pass

    async def test_subset_of_components(self, demo_registry):
        async with weavertest(
            registry=demo_registry, components=[Adder], mode="single"
        ) as app:
            assert await app.get(Adder).add(1, 1) == 2

    async def test_identical_results_across_modes(self, demo_registry):
        """§5.3's pitch: the same e2e test runs in any deployment shape."""
        results = []
        for mode in ("single", "multi"):
            async with weavertest(registry=demo_registry, mode=mode) as app:
                results.append(await app.get(Greeter).greet("Parity"))
        assert len(set(results)) == 1

    async def test_shutdown_on_exception(self, demo_registry):
        with pytest.raises(RuntimeError):
            async with weavertest(registry=demo_registry, mode="multi") as app:
                raise RuntimeError("test body failed")
        # All envelopes were stopped despite the exception.
        assert all(e.stopped for e in app.envelopes.values())
