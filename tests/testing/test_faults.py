"""Deterministic fault injection."""

from __future__ import annotations

import pytest

from repro.core.errors import Unavailable
from repro.testing.faults import FaultPlan, FaultRule, FlappingDelayRule
from repro.testing.harness import weavertest

from tests.conftest import Adder, Greeter


class TestFaultRules:
    async def test_always_fail(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Adder", failure_rate=1.0)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            with pytest.raises(Unavailable, match="injected"):
                await app.get(Adder).add(1, 2)
        assert plan.total_injected == 1

    async def test_never_fail(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Adder", failure_rate=0.0)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            assert await app.get(Adder).add(1, 2) == 3
        assert plan.total_injected == 0

    async def test_component_filter(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Greeter", failure_rate=1.0)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            assert await app.get(Adder).add(1, 2) == 3  # unaffected
            with pytest.raises(Unavailable):
                await app.get(Greeter).greet("x")

    async def test_method_filter(self, demo_registry):
        plan = FaultPlan([FaultRule(method="add_all", failure_rate=1.0)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            adder = app.get(Adder)
            assert await adder.add(1, 2) == 3
            with pytest.raises(Unavailable):
                await adder.add_all([1])

    async def test_custom_error(self, demo_registry):
        plan = FaultPlan(
            [FaultRule(component="Adder", failure_rate=1.0, error=lambda: RuntimeError("custom"))]
        )
        async with weavertest(registry=demo_registry, faults=plan) as app:
            with pytest.raises(RuntimeError, match="custom"):
                await app.get(Adder).add(1, 2)

    async def test_max_failures_bounds_injection(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Adder", failure_rate=1.0, max_failures=2)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            adder = app.get(Adder)
            for _ in range(2):
                with pytest.raises(Unavailable):
                    await adder.add(1, 1)
            assert await adder.add(1, 1) == 2  # budget spent
        assert plan.total_injected == 2

    async def test_delay_injection(self, demo_registry):
        import time

        plan = FaultPlan([FaultRule(component="Adder", delay_s=0.05)])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            start = time.perf_counter()
            await app.get(Adder).add(1, 1)
            assert time.perf_counter() - start >= 0.05

    async def test_probabilistic_rate_roughly_respected(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Adder", failure_rate=0.5)], seed=42)
        failures = 0
        async with weavertest(registry=demo_registry, faults=plan) as app:
            adder = app.get(Adder)
            for _ in range(200):
                try:
                    await adder.add(1, 1)
                except Unavailable:
                    failures += 1
        assert 70 < failures < 130

    async def test_seed_makes_runs_reproducible(self, demo_registry):
        async def run(seed):
            plan = FaultPlan([FaultRule(component="Adder", failure_rate=0.3)], seed=seed)
            outcomes = []
            async with weavertest(registry=demo_registry, faults=plan) as app:
                adder = app.get(Adder)
                for _ in range(50):
                    try:
                        await adder.add(1, 1)
                        outcomes.append(True)
                    except Unavailable:
                        outcomes.append(False)
            return outcomes

        assert await run(7) == await run(7)


class TestFlappingDelay:
    """The metric-storm primitive: a delay that toggles on a period."""

    def _rule(self, clock, **kw):
        defaults = dict(high_delay_s=0.4, period_s=2.0, high_s=1.0, clock=clock)
        defaults.update(kw)
        return FlappingDelayRule(**defaults)

    def test_phases_follow_the_clock(self):
        t = 0.0
        rule = self._rule(lambda: t)
        assert rule.delay() == 0.4  # high phase starts immediately
        t = 0.99
        assert rule.delay() == 0.4
        t = 1.0  # past high_s: low phase
        assert rule.delay() == 0.0
        t = 2.0  # wrapped: high again
        assert rule.delay() == 0.4
        t = 3.5
        assert rule.delay() == 0.0

    def test_low_phase_uses_base_delay(self):
        t = 0.0
        rule = self._rule(lambda: t, delay_s=0.01)
        t = 1.5
        assert rule.delay() == 0.01

    def test_phase_is_relative_to_creation(self):
        t = 100.3  # created mid-stream: phase measured from here
        rule = self._rule(lambda: t)
        assert rule.delay() == 0.4
        t = 100.3 + 1.2
        assert rule.delay() == 0.0

    def test_constant_rule_delay_hook_matches_delay_s(self):
        assert FaultRule(delay_s=0.25).delay() == 0.25

    async def test_plan_applies_flapping_delay(self, demo_registry):
        import time as _time

        t = {"now": 0.0}
        rule = FlappingDelayRule(
            component="Adder",
            high_delay_s=0.05,
            period_s=10.0,
            high_s=5.0,
            clock=lambda: t["now"],
        )
        plan = FaultPlan([rule])
        async with weavertest(registry=demo_registry, faults=plan) as app:
            adder = app.get(Adder)
            start = _time.perf_counter()
            await adder.add(1, 1)
            assert _time.perf_counter() - start >= 0.05  # high phase
            t["now"] = 6.0  # low phase: no injected delay
            start = _time.perf_counter()
            await adder.add(1, 1)
            assert _time.perf_counter() - start < 0.05


class TestFaultsInMultiprocess:
    async def test_faults_apply_to_remote_calls(self, demo_registry):
        plan = FaultPlan([FaultRule(component="Adder", method="add", failure_rate=1.0, max_failures=100)])
        async with weavertest(registry=demo_registry, mode="multi", faults=plan) as app:
            with pytest.raises(Unavailable):
                await app.get(Adder).add(1, 2)

    async def test_retries_absorb_transient_faults(self, demo_registry):
        # One injected failure, then clean: the stub's retry recovers it.
        plan = FaultPlan([FaultRule(component="Adder", failure_rate=1.0, max_failures=1)])
        async with weavertest(registry=demo_registry, mode="multi", faults=plan) as app:
            assert await app.get(Adder).add(2, 2) == 4
        assert plan.total_injected == 1
