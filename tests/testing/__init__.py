"""Test package."""
