"""Chaos testing: survive replica kills under load (§5.3)."""

from __future__ import annotations

import pytest

from repro.core.config import AppConfig
from repro.testing.chaos import ChaosMonkey
from repro.testing.harness import weavertest

from tests.conftest import Adder, Greeter, KVStore


class TestChaosMonkey:
    async def test_replicated_component_survives_kills(self, demo_registry):
        config = AppConfig(name="chaos", replicas={Adder: 3, Greeter: 2})
        async with weavertest(registry=demo_registry, mode="multi", config=config) as app:
            monkey = ChaosMonkey(app, seed=1)
            adder = app.get(Adder)

            async def workload():
                assert await adder.add(2, 2) == 4

            report = await monkey.rampage(workload, requests=40, kill_every=10)
            assert report.kills  # something actually died
            assert report.success_rate >= 0.95, report.errors

    async def test_single_replica_recovers_after_restart(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            monkey = ChaosMonkey(app, seed=2)
            greeter = app.get(Greeter)

            async def workload():
                assert (await greeter.greet("X")).startswith("Hello")

            report = await monkey.rampage(
                workload, requests=30, kill_every=15, settle_s=0.2
            )
            assert report.kills
            # The manager restarts killed groups; the tail of the workload
            # must succeed again.
            assert report.success_rate >= 0.9, report.errors

    async def test_spared_prefixes_never_killed(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            all_ids = set(app.envelopes)
            spare = set(all_ids)  # spare everything
            monkey = ChaosMonkey(app, seed=3, spare=spare)
            assert monkey.pick_victim() is None

    async def test_report_accounting(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            monkey = ChaosMonkey(app, seed=4)
            calls = {"n": 0}

            async def sometimes_fails():
                calls["n"] += 1
                if calls["n"] % 5 == 0:
                    raise ValueError("application bug")

            report = await monkey.rampage(sometimes_fails, requests=10, kill_every=0)
            assert report.requests_attempted == 10
            assert report.requests_succeeded == 8
            assert report.errors.get("ValueError") == 2
