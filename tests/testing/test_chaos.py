"""Chaos testing: survive replica kills under load (§5.3)."""

from __future__ import annotations

import pytest

from repro.core.config import AppConfig
from repro.testing.chaos import ChaosMonkey
from repro.testing.harness import weavertest

from tests.conftest import Adder, Greeter, KVStore


class TestChaosMonkey:
    async def test_replicated_component_survives_kills(self, demo_registry):
        config = AppConfig(name="chaos", replicas={Adder: 3, Greeter: 2})
        async with weavertest(registry=demo_registry, mode="multi", config=config) as app:
            monkey = ChaosMonkey(app, seed=1)
            adder = app.get(Adder)

            async def workload():
                assert await adder.add(2, 2) == 4

            # min_success_rate turns the rampage into a steady-state
            # assertion — the run itself fails if availability dips.
            report = await monkey.rampage(
                workload, requests=40, kill_every=10, min_success_rate=0.95
            )
            assert report.kills  # something actually died
            assert len(report.kill_times) == len(report.kills)
            assert len(report.outcomes) == report.requests_attempted

    async def test_single_replica_recovers_after_restart(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            monkey = ChaosMonkey(app, seed=2)
            greeter = app.get(Greeter)

            async def workload():
                assert (await greeter.greet("X")).startswith("Hello")

            report = await monkey.rampage(
                workload, requests=30, kill_every=15, settle_s=0.2,
                min_success_rate=0.9,
            )
            assert report.kills
            # The manager restarts killed groups; recovery is judged
            # against the outcome series, not the aggregate rate.
            recovery = report.time_to_recover(report.kill_times[0], consecutive=5)
            assert recovery is not None

    async def test_spared_prefixes_never_killed(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            all_ids = set(app.envelopes)
            spare = set(all_ids)  # spare everything
            monkey = ChaosMonkey(app, seed=3, spare=spare)
            assert monkey.pick_victim() is None

    async def test_report_accounting(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            monkey = ChaosMonkey(app, seed=4)
            calls = {"n": 0}

            async def sometimes_fails():
                calls["n"] += 1
                if calls["n"] % 5 == 0:
                    raise ValueError("application bug")

            report = await monkey.rampage(sometimes_fails, requests=10, kill_every=0)
            assert report.requests_attempted == 10
            assert report.requests_succeeded == 8
            assert report.errors.get("ValueError") == 2

    async def test_min_success_rate_raises_with_details(self, demo_registry):
        async with weavertest(registry=demo_registry, mode="multi") as app:
            monkey = ChaosMonkey(app, seed=5)

            async def always_fails():
                raise ValueError("doomed")

            with pytest.raises(AssertionError, match="success rate 0.000"):
                await monkey.rampage(
                    always_fails, requests=5, kill_every=0, min_success_rate=0.5
                )

    async def test_seeded_rng_is_deterministic(self, demo_registry):
        config = AppConfig(name="chaos", replicas={KVStore: 3})
        async with weavertest(registry=demo_registry, mode="multi", config=config) as app:
            victims_a = [ChaosMonkey(app, seed=7).pick_victim() for _ in range(5)]
            victims_b = [ChaosMonkey(app, seed=7).pick_victim() for _ in range(5)]
            assert victims_a == victims_b

    async def test_time_to_recover_reads_the_series(self):
        from repro.testing.chaos import ChaosReport

        report = ChaosReport()
        # Outage at t=10: failures until t=12, then steady successes.
        report.outcomes = [(float(t), t < 10 or t >= 12) for t in range(20)]
        assert report.time_to_recover(10.0, consecutive=3) == pytest.approx(2.0)
        # Never recovers if the streak requirement exceeds the tail.
        assert report.time_to_recover(10.0, consecutive=50) is None


class TestMetricStorm:
    async def test_storm_attaches_and_reverts(self, demo_registry):
        import time as _time

        from repro.testing.chaos import metric_storm

        async with weavertest(registry=demo_registry, mode="multi") as app:
            storm = metric_storm(
                app, high_delay_s=0.05, period_s=30.0, high_s=30.0,
                component="Adder",
            )
            adder = app.get(Adder)
            start = _time.perf_counter()
            await adder.add(1, 1)
            assert _time.perf_counter() - start >= 0.05  # storm always high here

            storm.revert()
            start = _time.perf_counter()
            await adder.add(1, 1)
            assert _time.perf_counter() - start < 0.05

    async def test_storm_flaps_between_phases(self, demo_registry):
        from repro.testing.chaos import metric_storm

        async with weavertest(registry=demo_registry, mode="multi") as app:
            storm = metric_storm(app, high_delay_s=0.2, period_s=1.0, high_s=0.5)
            try:
                rule = storm.rule
                t0 = rule.started_at
                rule.clock = lambda: t0 + 0.25
                assert rule.delay() == 0.2  # in the high half
                rule.clock = lambda: t0 + 0.75
                assert rule.delay() == 0.0  # in the low half
                rule.clock = lambda: t0 + 1.25
                assert rule.delay() == 0.2  # wrapped around
            finally:
                storm.revert()
