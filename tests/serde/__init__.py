"""Test package."""
