"""Property-based tests of the wire formats (hypothesis).

Invariants (DESIGN.md):

* decode(encode(x)) == x for every schema-typed value, all three codecs;
* the compact encoding is never larger than the tagged encoding of the
  same value (it strictly drops information: tags and type info);
* varint/zigzag primitives are total and inverse on arbitrary ints.

One documented exception: the tagged format, like proto3, cannot represent
``Optional[container]`` holding an *empty* container distinctly from None
(absence is the only encoding of both).  The generated types below avoid
that corner; ``test_tagged_optional_container_caveat`` pins the behaviour.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from hypothesis import given, settings, strategies as st

from repro.codegen.schema import schema_of
from repro.serde import COMPACT, JSON, TAGGED
from repro.serde.base import Reader, read_svarint, read_uvarint, unzigzag, write_svarint, write_uvarint, zigzag


class Flag(enum.Enum):
    A = 1
    B = 2
    C = 3


@dataclass(frozen=True)
class Leaf:
    name: str
    value: int
    ratio: float
    blob: bytes


@dataclass(frozen=True)
class Tree:
    flag: Flag
    leaves: list[Leaf]
    index: dict[str, int]
    maybe: Optional[str]
    pair: tuple[int, str]


finite_floats = st.floats(allow_nan=False, allow_infinity=False)
texts = st.text(max_size=50)
blobs = st.binary(max_size=50)

leaf_strategy = st.builds(
    Leaf, name=texts, value=st.integers(), ratio=finite_floats, blob=blobs
)
tree_strategy = st.builds(
    Tree,
    flag=st.sampled_from(Flag),
    leaves=st.lists(leaf_strategy, max_size=5),
    index=st.dictionaries(texts, st.integers(), max_size=5),
    maybe=st.none() | texts,
    pair=st.tuples(st.integers(), texts),
)

TREE_SCHEMA = schema_of(Tree)
LEAF_SCHEMA = schema_of(Leaf)


@settings(max_examples=150, deadline=None)
@given(tree_strategy)
def test_compact_roundtrip(tree):
    assert COMPACT.decode(TREE_SCHEMA, COMPACT.encode(TREE_SCHEMA, tree)) == tree


@settings(max_examples=150, deadline=None)
@given(tree_strategy)
def test_tagged_roundtrip(tree):
    assert TAGGED.decode(TREE_SCHEMA, TAGGED.encode(TREE_SCHEMA, tree)) == tree


@settings(max_examples=150, deadline=None)
@given(tree_strategy)
def test_json_roundtrip(tree):
    assert JSON.decode(TREE_SCHEMA, JSON.encode(TREE_SCHEMA, tree)) == tree


@settings(max_examples=150, deadline=None)
@given(tree_strategy)
def test_compact_never_larger_than_tagged(tree):
    compact = COMPACT.encode(TREE_SCHEMA, tree)
    tagged = TAGGED.encode(TREE_SCHEMA, tree)
    assert len(compact) <= len(tagged)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(), max_size=20))
def test_list_roundtrip_all_codecs(values):
    schema = schema_of(list[int])
    for codec in (COMPACT, TAGGED, JSON):
        assert codec.decode(schema, codec.encode(schema, values)) == values


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.integers(), texts, max_size=10))
def test_int_keyed_dict_roundtrip_all_codecs(mapping):
    schema = schema_of(dict[int, str])
    for codec in (COMPACT, TAGGED, JSON):
        assert codec.decode(schema, codec.encode(schema, mapping)) == mapping


@settings(max_examples=200, deadline=None)
@given(st.integers())
def test_zigzag_inverse(n):
    assert unzigzag(zigzag(n)) == n


@settings(max_examples=200, deadline=None)
@given(st.integers())
def test_zigzag_maps_small_magnitudes_small(n):
    assert zigzag(n) >= 0
    assert zigzag(n) <= 2 * abs(n) + 1


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0))
def test_uvarint_roundtrip(n):
    out = bytearray()
    write_uvarint(out, n)
    assert read_uvarint(Reader(bytes(out))) == n


@settings(max_examples=200, deadline=None)
@given(st.integers())
def test_svarint_roundtrip(n):
    out = bytearray()
    write_svarint(out, n)
    assert read_svarint(Reader(bytes(out))) == n


@settings(max_examples=100, deadline=None)
@given(finite_floats)
def test_float_exact_roundtrip(x):
    schema = schema_of(float)
    for codec in (COMPACT, TAGGED):
        decoded = codec.decode(schema, codec.encode(schema, x))
        assert decoded == x or (math.isnan(decoded) and math.isnan(x))


def test_tagged_optional_container_caveat():
    """Documented proto3-like lossiness: Optional[list] of [] -> None."""

    @dataclass
    class WithOptList:
        items: Optional[list[int]]

    schema = schema_of(WithOptList)
    out = TAGGED.decode(schema, TAGGED.encode(schema, WithOptList([])))
    assert out.items is None
    # Compact has no such ambiguity.
    out2 = COMPACT.decode(schema, COMPACT.encode(schema, WithOptList([])))
    assert out2.items == []


@settings(max_examples=100, deadline=None)
@given(leaf_strategy, st.integers(min_value=0, max_value=3))
def test_decode_is_deterministic(leaf, _):
    data = COMPACT.encode(LEAF_SCHEMA, leaf)
    assert COMPACT.decode(LEAF_SCHEMA, data) == COMPACT.decode(LEAF_SCHEMA, data)
