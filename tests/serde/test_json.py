"""The JSON baseline format."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.codegen.schema import schema_of
from repro.core.errors import DecodeError, EncodeError
from repro.serde.jsoncodec import CODEC


class Mode(enum.Enum):
    FAST = 1
    SLOW = 2


@dataclass
class Record:
    key: str
    payload: bytes
    counts: dict[int, int]
    mode: Mode
    note: Optional[str]


def roundtrip(tp, value):
    schema = schema_of(tp)
    data = CODEC.encode(schema, value)
    assert CODEC.decode(schema, data) == value
    return data


class TestRoundTrips:
    def test_primitives(self):
        roundtrip(int, -7)
        roundtrip(float, 1.25)
        roundtrip(bool, False)
        roundtrip(str, "héllo")
        roundtrip(type(None), None)

    def test_bytes_base64(self):
        data = roundtrip(bytes, b"\x00\xff\x10")
        assert b"AP8Q" in data  # base64 payload visible in the JSON text

    def test_containers(self):
        roundtrip(list[int], [1, 2])
        roundtrip(set[str], {"a", "b"})
        roundtrip(tuple[int, str], (1, "x"))
        roundtrip(tuple[float, ...], (1.5, 2.5))

    def test_dict_with_string_keys(self):
        roundtrip(dict[str, int], {"a": 1})

    def test_dict_with_int_keys(self):
        # JSON object keys must be strings; int keys are encoded/decoded.
        roundtrip(dict[int, str], {3: "three", -1: "minus"})

    def test_enum_by_name(self):
        data = roundtrip(Mode, Mode.SLOW)
        assert b"SLOW" in data

    def test_dataclass(self):
        roundtrip(Record, Record("k", b"\x01", {1: 2}, Mode.FAST, None))

    def test_field_names_on_wire(self):
        """JSON is self-describing: names travel with every message."""
        data = CODEC.encode(
            schema_of(Record), Record("k", b"", {}, Mode.FAST, "n")
        )
        parsed = json.loads(data)
        assert set(parsed) == {"key", "payload", "counts", "mode", "note"}


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(int), b"{nope")

    def test_wrong_type(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(int), b'"hello"')

    def test_bool_is_not_int(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(int), b"true")

    def test_missing_struct_field(self):
        with pytest.raises(DecodeError, match="missing field"):
            CODEC.decode(schema_of(Record), b"{}")

    def test_unknown_enum_member(self):
        with pytest.raises(DecodeError, match="unknown member"):
            CODEC.decode(schema_of(Mode), b'"TURBO"')

    def test_invalid_base64(self):
        with pytest.raises(DecodeError, match="base64"):
            CODEC.decode(schema_of(bytes), b'"!!!"')

    def test_tuple_arity(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(tuple[int, int]), b"[1,2,3]")

    def test_encode_type_check(self):
        with pytest.raises(EncodeError):
            CODEC.encode(schema_of(str), 42)


def test_json_is_largest_format():
    from repro.serde import COMPACT, TAGGED

    value = Record("key", b"payload", {1: 10, 2: 20}, Mode.FAST, "note")
    schema = schema_of(Record)
    sizes = {
        "compact": len(COMPACT.encode(schema, value)),
        "tagged": len(TAGGED.encode(schema, value)),
        "json": len(CODEC.encode(schema, value)),
    }
    assert sizes["compact"] < sizes["tagged"] < sizes["json"]
