"""Adversarial-input robustness: decoders never crash, hang, or balloon.

A proclet's RPC server feeds network bytes straight into these decoders;
within a deployment the version handshake guarantees well-formed input,
but robustness against corruption (bit flips, truncation, garbage) is
still table stakes: every failure must be a clean
:class:`~repro.core.errors.DecodeError` / TransportError, never an
uncaught exception or a pathological allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.schema import schema_of
from repro.core.errors import DecodeError, TransportError, WeaverError
from repro.serde import COMPACT, JSON, TAGGED
from repro.transport import message as wire_msg


class Mode(enum.Enum):
    A = 1
    B = 2


@dataclass(frozen=True)
class Payload:
    name: str
    values: list[int]
    table: dict[str, float]
    flag: Optional[bool]
    mode: Mode


SCHEMAS = [
    schema_of(int),
    schema_of(str),
    schema_of(bytes),
    schema_of(list[str]),
    schema_of(dict[int, str]),
    schema_of(Optional[list[int]]),
    schema_of(tuple[int, str, bool]),
    schema_of(Mode),
    schema_of(Payload),
]


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200), st.sampled_from(range(len(SCHEMAS))))
def test_compact_decode_never_crashes(data, schema_index):
    schema = SCHEMAS[schema_index]
    try:
        COMPACT.decode(schema, data)
    except DecodeError:
        pass  # the only acceptable failure


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200), st.sampled_from(range(len(SCHEMAS))))
def test_tagged_decode_never_crashes(data, schema_index):
    schema = SCHEMAS[schema_index]
    try:
        TAGGED.decode(schema, data)
    except DecodeError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200), st.sampled_from(range(len(SCHEMAS))))
def test_json_decode_never_crashes(data, schema_index):
    schema = SCHEMAS[schema_index]
    try:
        JSON.decode(schema, data)
    except DecodeError:
        pass


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200))
def test_wire_message_decode_never_crashes(data):
    try:
        wire_msg.decode(data)
    except TransportError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=1, max_size=100))
def test_truncation_of_valid_compact_is_clean(suffix):
    """Any prefix of a valid message either decodes or raises DecodeError."""
    value = Payload("fuzz", [1, 2, 3], {"k": 1.5}, True, Mode.B)
    schema = schema_of(Payload)
    data = COMPACT.encode(schema, value)
    cut = len(suffix) % len(data)
    try:
        COMPACT.decode(schema, data[:cut])
    except DecodeError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=255))
def test_single_byte_corruption_is_clean(position, replacement):
    """Flip one byte anywhere in a valid tagged message: decode must either
    produce *some* value or raise DecodeError — never crash."""
    value = Payload("fuzz", list(range(10)), {"a": 1.0, "b": 2.0}, None, Mode.A)
    schema = schema_of(Payload)
    data = bytearray(TAGGED.encode(schema, value))
    data[position % len(data)] = replacement
    try:
        TAGGED.decode(schema, bytes(data))
    except DecodeError:
        pass


def test_compact_of_one_schema_never_panics_under_another():
    """Decoding bytes with the wrong schema (the cross-version accident the
    handshake prevents) fails cleanly for every schema pair."""
    values = {
        0: 42,
        1: "hello",
        2: b"\x01\x02",
        3: ["a", "b"],
        4: {1: "one"},
        5: [1, 2, 3],
        6: (1, "x", True),
        7: Mode.A,
        8: Payload("p", [1], {"k": 0.5}, False, Mode.B),
    }
    for i, schema_a in enumerate(SCHEMAS):
        data = COMPACT.encode(schema_a, values[i])
        for schema_b in SCHEMAS:
            try:
                COMPACT.decode(schema_b, data)
            except DecodeError:
                pass


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=64))
def test_malformed_control_messages_never_crash(data):
    """JSON-lines control plane: arbitrary line content fails cleanly."""
    import json

    from repro.core.errors import RuntimeControlError

    try:
        parsed = json.loads(data)
        assert isinstance(parsed, (dict, list, str, int, float, bool, type(None)))
    except ValueError:
        pass
