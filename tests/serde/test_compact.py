"""The compact (tag-free) wire format."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.codegen.schema import schema_of
from repro.core.errors import DecodeError, EncodeError
from repro.serde.compact import CODEC


class Suit(enum.Enum):
    HEARTS = "h"
    SPADES = "s"
    CLUBS = "c"
    DIAMONDS = "d"


@dataclass
class Card:
    suit: Suit
    rank: int


@dataclass
class Hand:
    owner: str
    cards: list[Card]
    wager: float
    notes: Optional[str]


def roundtrip(tp, value):
    schema = schema_of(tp)
    data = CODEC.encode(schema, value)
    assert CODEC.decode(schema, data) == value
    return data


class TestRoundTrips:
    def test_bool(self):
        roundtrip(bool, True)
        roundtrip(bool, False)

    @pytest.mark.parametrize("n", [0, 1, -1, 63, -64, 127, 128, -129, 2**40, -(2**40), 2**70])
    def test_ints(self, n):
        roundtrip(int, n)

    @pytest.mark.parametrize("x", [0.0, -1.5, 3.14159, 1e300, -1e-300, float("inf")])
    def test_floats(self, x):
        roundtrip(float, x)

    def test_nan_roundtrips(self):
        schema = schema_of(float)
        out = CODEC.decode(schema, CODEC.encode(schema, float("nan")))
        assert out != out  # NaN

    @pytest.mark.parametrize("s", ["", "ascii", "ünïcödé", "日本語", "a" * 10_000])
    def test_strings(self, s):
        roundtrip(str, s)

    def test_bytes(self):
        roundtrip(bytes, b"")
        roundtrip(bytes, bytes(range(256)))

    def test_none(self):
        roundtrip(type(None), None)

    def test_list(self):
        roundtrip(list[int], [])
        roundtrip(list[int], [1, -2, 3])

    def test_nested_list(self):
        roundtrip(list[list[str]], [["a"], [], ["b", "c"]])

    def test_set(self):
        roundtrip(set[int], set())
        roundtrip(set[int], {1, 2, 3})

    def test_dict(self):
        roundtrip(dict[str, int], {})
        roundtrip(dict[str, int], {"a": 1, "b": -2})

    def test_dict_int_keys(self):
        roundtrip(dict[int, str], {1: "one", -5: "minus five"})

    def test_fixed_tuple(self):
        roundtrip(tuple[int, str, bool], (7, "x", True))

    def test_variable_tuple(self):
        roundtrip(tuple[int, ...], ())
        roundtrip(tuple[int, ...], (1, 2, 3))

    def test_optional(self):
        roundtrip(Optional[int], None)
        roundtrip(Optional[int], 42)

    def test_enum(self):
        for member in Suit:
            roundtrip(Suit, member)

    def test_dataclass(self):
        roundtrip(Card, Card(Suit.SPADES, 13))

    def test_nested_dataclass(self):
        hand = Hand("alice", [Card(Suit.HEARTS, 1), Card(Suit.CLUBS, 11)], 5.5, None)
        roundtrip(Hand, hand)


class TestFormatProperties:
    def test_no_field_names_on_wire(self):
        """The headline claim: no tags, no names, no type info."""
        hand = Hand("zz", [Card(Suit.HEARTS, 1)], 1.0, "memo")
        data = CODEC.encode(schema_of(Hand), hand)
        assert b"owner" not in data
        assert b"cards" not in data
        assert b"suit" not in data

    def test_small_ints_one_byte(self):
        assert len(CODEC.encode(schema_of(int), 0)) == 1
        assert len(CODEC.encode(schema_of(int), -1)) == 1
        assert len(CODEC.encode(schema_of(int), 63)) == 1

    def test_struct_is_concatenation_of_fields(self):
        card = Card(Suit.SPADES, 13)
        struct_bytes = CODEC.encode(schema_of(Card), card)
        field_bytes = CODEC.encode(schema_of(Suit), card.suit) + CODEC.encode(
            schema_of(int), card.rank
        )
        assert struct_bytes == field_bytes

    def test_empty_list_is_one_byte(self):
        assert len(CODEC.encode(schema_of(list[int]), [])) == 1


class TestErrors:
    def test_trailing_bytes_rejected(self):
        data = CODEC.encode(schema_of(int), 7) + b"\x00"
        with pytest.raises(DecodeError, match="trailing"):
            CODEC.decode(schema_of(int), data)

    def test_truncated_buffer_rejected(self):
        data = CODEC.encode(schema_of(str), "hello")
        with pytest.raises(DecodeError, match="truncated"):
            CODEC.decode(schema_of(str), data[:-2])

    def test_bad_bool_byte(self):
        with pytest.raises(DecodeError, match="bool"):
            CODEC.decode(schema_of(bool), b"\x07")

    def test_bad_optional_presence_byte(self):
        with pytest.raises(DecodeError, match="presence"):
            CODEC.decode(schema_of(Optional[int]), b"\x05\x00")

    def test_enum_index_out_of_range(self):
        with pytest.raises(DecodeError, match="out of range"):
            CODEC.decode(schema_of(Suit), b"\x63")

    def test_container_count_bomb_rejected(self):
        # A count far exceeding the buffer cannot allocate gigabytes.
        bomb = b"\xff\xff\xff\xff\x7f" + b"\x00"
        with pytest.raises(DecodeError, match="count"):
            CODEC.decode(schema_of(list[int]), bomb)

    def test_invalid_utf8_rejected(self):
        data = bytes([2, 0xFF, 0xFE])
        with pytest.raises(DecodeError, match="utf-8"):
            CODEC.decode(schema_of(str), data)

    def test_encode_wrong_type_raises_encode_error(self):
        with pytest.raises(EncodeError):
            CODEC.encode(schema_of(int), "not an int")

    def test_encode_bool_as_int_rejected(self):
        with pytest.raises(EncodeError):
            CODEC.encode(schema_of(int), True)

    def test_tuple_arity_mismatch(self):
        with pytest.raises(EncodeError):
            CODEC.encode(schema_of(tuple[int, int]), (1, 2, 3))

    def test_uvarint_overlong_rejected(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(int), b"\xff" * 11)
