"""The tagged (protobuf-style) baseline format, including version skew."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.codegen.schema import schema_of
from repro.core.errors import DecodeError
from repro.serde.compact import CODEC as COMPACT
from repro.serde.tagged import CODEC


class Level(enum.Enum):
    LOW = 1
    HIGH = 2


@dataclass
class V1Message:
    name: str
    count: int


@dataclass
class V2Message:
    """V1 plus a new trailing field — a backward-compatible evolution."""

    name: str
    count: int
    priority: int


@dataclass
class Inner:
    values: list[int]


@dataclass
class Outer:
    label: str
    inner: Inner
    table: dict[str, int]
    matrix: list[list[int]]


def roundtrip(tp, value):
    schema = schema_of(tp)
    data = CODEC.encode(schema, value)
    out = CODEC.decode(schema, data)
    assert out == value
    return data


class TestRoundTrips:
    @pytest.mark.parametrize("n", [0, 1, -1, 127, -128, 2**40, -(2**40)])
    def test_ints(self, n):
        roundtrip(int, n)

    def test_primitives(self):
        roundtrip(bool, True)
        roundtrip(float, 2.5)
        roundtrip(str, "héllo")
        roundtrip(bytes, b"\x00\x01")

    def test_struct(self):
        roundtrip(V1Message, V1Message("a", 3))

    def test_struct_with_defaults_on_wire(self):
        # Zero values still round-trip (we always write present fields).
        roundtrip(V1Message, V1Message("", 0))

    def test_containers(self):
        roundtrip(list[int], [1, 2, 3])
        roundtrip(list[str], ["", "a"])
        roundtrip(set[int], {3, 1})
        roundtrip(dict[str, int], {"k": 5})
        roundtrip(dict[int, str], {7: "seven"})

    def test_empty_containers_decode_as_empty(self):
        roundtrip(list[int], [])
        roundtrip(dict[str, int], {})

    def test_nested_containers_do_not_flatten(self):
        roundtrip(list[list[int]], [[1, 2], [], [3]])
        roundtrip(dict[str, list[int]], {"a": [1], "b": []})

    def test_deep_nesting(self):
        o = Outer("x", Inner([1, 2]), {"a": 1}, [[1], [2, 3]])
        roundtrip(Outer, o)

    def test_tuples(self):
        roundtrip(tuple[int, str], (1, "a"))
        roundtrip(tuple[int, ...], (1, 2, 3))
        roundtrip(tuple[int, ...], ())

    def test_optional(self):
        roundtrip(Optional[int], 5)
        roundtrip(Optional[int], None)

    def test_enum(self):
        roundtrip(Level, Level.HIGH)


class TestVersionSkew:
    """The feature compact lacks by design: cross-schema decoding."""

    def test_new_reader_old_message(self):
        old = CODEC.encode(schema_of(V1Message), V1Message("job", 3))
        new = CODEC.decode(schema_of(V2Message), old)
        assert new == V2Message("job", 3, 0)  # missing field -> zero value

    def test_old_reader_new_message_skips_unknown(self):
        new = CODEC.encode(schema_of(V2Message), V2Message("job", 3, 9))
        old = CODEC.decode(schema_of(V1Message), new)
        assert old == V1Message("job", 3)

    def test_compact_cannot_do_this(self):
        """The same skew corrupts or errors under the compact format —
        which is exactly why compact requires the version handshake."""
        new = COMPACT.encode(schema_of(V2Message), V2Message("job", 3, 9))
        with pytest.raises(DecodeError):
            COMPACT.decode(schema_of(V1Message), new)

    def test_field_reorder_silently_corrupts_tagged(self):
        """Field renumbering (reordering) is the classic tagged-format
        upgrade bug: decoding succeeds but values land in wrong fields."""

        @dataclass
        class Reordered:
            count: int  # was field 2, now field 1
            name: str  # was field 1, now field 2

        data = CODEC.encode(schema_of(V1Message), V1Message("five", 5))
        # name (field 1) is a string, count (field 1 in Reordered) is an
        # int: the wire types disagree, which at best errors and at worst
        # mis-assigns.  Either way the result is not the original message.
        try:
            out = CODEC.decode(schema_of(Reordered), data)
            assert (out.count, out.name) != (5, "five")
        except DecodeError:
            pass


class TestFormat:
    def test_tagged_larger_than_compact(self):
        v = V1Message("hello world", 12345)
        tagged = CODEC.encode(schema_of(V1Message), v)
        compact = COMPACT.encode(schema_of(V1Message), v)
        assert len(tagged) > len(compact)

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(DecodeError):
            CODEC.decode(schema_of(V1Message), bytes([(1 << 3) | 7, 0]))

    def test_wrong_wire_type_for_field_rejected(self):
        # field 2 (count) tagged as length-delimited instead of varint
        data = bytes([(2 << 3) | 2, 1, 65])
        with pytest.raises(DecodeError, match="wire type"):
            CODEC.decode(schema_of(V1Message), data)

    def test_unknown_enum_value_degrades_to_first_member(self):
        data = bytes([(1 << 3) | 0, 99])
        assert CODEC.decode(schema_of(Level), data) is Level.LOW
