"""Property-based invariants of the DES engine (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Resource, Simulator

job_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),  # arrival offset
        st.floats(min_value=0.001, max_value=2.0),  # service time
    ),
    min_size=1,
    max_size=15,
)


@settings(max_examples=60, deadline=None)
@given(job_lists, st.integers(min_value=1, max_value=4))
def test_all_jobs_complete_and_busy_time_conserved(jobs, capacity):
    """Whatever the arrival pattern: every job finishes, total busy time
    equals the sum of service times, and utilization never exceeds 1."""
    sim = Simulator()
    server = Resource(sim, capacity=capacity)
    done = []

    def job(arrive, service):
        yield sim.timeout(arrive)
        with (yield server.acquire()):
            yield sim.timeout(service)
        done.append(sim.now)

    for arrive, service in jobs:
        sim.spawn(job(arrive, service))
    sim.run()

    assert len(done) == len(jobs)
    total_service = sum(s for _, s in jobs)
    assert server.snapshot_busy() == pytest.approx(total_service, rel=1e-9)
    assert server.utilization() <= 1.0 + 1e-9
    assert server.in_use == 0
    assert server.queue_length == 0


@settings(max_examples=60, deadline=None)
@given(job_lists)
def test_single_server_serializes(jobs):
    """With capacity 1, makespan >= total service time (no overlap)."""
    sim = Simulator()
    server = Resource(sim, capacity=1)
    finished = []

    def job(arrive, service):
        yield sim.timeout(arrive)
        with (yield server.acquire()):
            yield sim.timeout(service)
        finished.append(sim.now)

    for arrive, service in jobs:
        sim.spawn(job(arrive, service))
    end = sim.run()
    assert max(finished) == end
    assert end >= sum(s for _, s in jobs) - 1e-9 or any(
        a > 0 for a, _ in jobs
    )  # idle gaps can stretch, never compress, the schedule
    # Strict version: end >= busy time always.
    assert end >= server.snapshot_busy() - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20)
)
def test_time_is_monotone(delays):
    """Observed times across many processes never decrease."""
    sim = Simulator()
    observed = []

    def proc(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for d in delays:
        sim.spawn(proc(d))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@settings(max_examples=40, deadline=None)
@given(job_lists, st.integers(min_value=1, max_value=3))
def test_fifo_grant_order(jobs, capacity):
    """Resource grants respect request order among queued waiters."""
    sim = Simulator()
    server = Resource(sim, capacity=capacity)
    requested = []
    granted = []

    def job(index, arrive, service):
        yield sim.timeout(arrive)
        requested.append((sim.now, index))
        with (yield server.acquire()):
            granted.append(index)
            yield sim.timeout(service)

    for i, (arrive, service) in enumerate(jobs):
        sim.spawn(job(i, arrive, service))
    sim.run()

    # Jobs that requested strictly earlier (and had to queue) are granted
    # no later than jobs that requested strictly later — verify that the
    # grant sequence is a stable reordering: for any two jobs with equal
    # arrival the spawn order holds.
    assert len(granted) == len(jobs)
    request_order = [i for _, i in sorted(requested, key=lambda t: (t[0],))]
    if capacity == 1:
        assert granted == request_order
