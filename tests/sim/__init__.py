"""Test package."""
