"""Stack cost models and live calibration."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.codegen.schema import schema_of
from repro.sim.costmodel import (
    BASELINE_STACK,
    JSON_BASELINE_STACK,
    WEAVER_STACK,
    calibrate_stacks,
    measure_codec_cost,
    measure_protocol_overhead,
)


@dataclass
class Sample:
    name: str
    values: list[int]
    note: str


SAMPLES = [
    (schema_of(str), "x"),
    (schema_of(Sample), Sample("payload", list(range(200)), "note " * 50)),
]


class TestDefaults:
    def test_weaver_cheaper_per_message(self):
        req, resp = 200, 800
        assert WEAVER_STACK.caller_cpu_s(req, resp) < BASELINE_STACK.caller_cpu_s(req, resp)
        assert WEAVER_STACK.callee_cpu_s(req, resp) < BASELINE_STACK.callee_cpu_s(req, resp)

    def test_weaver_fewer_wire_bytes(self):
        assert WEAVER_STACK.protocol_overhead_bytes < BASELINE_STACK.protocol_overhead_bytes

    def test_wire_time_monotone_in_bytes(self):
        assert WEAVER_STACK.wire_s(10, 10) < WEAVER_STACK.wire_s(10_000, 10_000)

    def test_wire_time_has_latency_floor(self):
        assert WEAVER_STACK.wire_s(0, 0) >= 2 * WEAVER_STACK.network_latency_s

    def test_codec_assignments(self):
        assert WEAVER_STACK.codec == "compact"
        assert BASELINE_STACK.codec == "tagged"
        assert JSON_BASELINE_STACK.codec == "json"


class TestMeasurement:
    def test_codec_cost_fit_positive(self):
        fixed, per_byte = measure_codec_cost("compact", SAMPLES)
        assert fixed > 0
        assert per_byte >= 0

    def test_tagged_costs_more_per_byte_than_compact(self):
        _, compact = measure_codec_cost("compact", SAMPLES)
        _, tagged = measure_codec_cost("tagged", SAMPLES)
        assert tagged > compact

    def test_protocol_overhead_shapes(self):
        overhead = measure_protocol_overhead()
        weaver_cpu, weaver_bytes = overhead["weaver"]
        http_cpu, http_bytes = overhead["baseline"]
        assert weaver_bytes < 20
        assert http_bytes > 150
        assert weaver_cpu > 0 and http_cpu > 0

    def test_calibration_produces_weaver_advantage(self):
        stacks = calibrate_stacks(SAMPLES)
        assert set(stacks) == {"weaver", "baseline", "baseline-json"}
        req, resp = 300, 1200
        assert (
            stacks["weaver"].caller_cpu_s(req, resp)
            < stacks["baseline"].caller_cpu_s(req, resp)
        )
        assert (
            stacks["weaver"].protocol_overhead_bytes
            < stacks["baseline"].protocol_overhead_bytes
        )
