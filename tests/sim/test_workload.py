"""Open-loop load generation and latency statistics."""

from __future__ import annotations

import random

import pytest

from repro.sim.cluster import build_deployment
from repro.sim.engine import Simulator
from repro.sim.profile import CallNode
from repro.sim.workload import LatencyStats, RequestType, WorkloadMix, run_load

from tests.sim.test_cluster import CHEAP_NET


def leaf_tree(cpu=0.001):
    return CallNode(
        "<root>", "r",
        children=[CallNode("A", "m", self_cpu_s=cpu, request_bytes={"compact": 10}, response_bytes={"compact": 10})],
    )


def mix_of(*types):
    return WorkloadMix(types=list(types))


class TestLatencyStats:
    def test_exact_quantiles(self):
        s = LatencyStats()
        for v in range(1, 101):
            s.observe(v / 1000)
        assert s.median_s == pytest.approx(0.050)
        assert s.p95_s == pytest.approx(0.095)
        assert s.p99_s == pytest.approx(0.099)
        assert s.mean_s == pytest.approx(0.0505)

    def test_empty(self):
        s = LatencyStats()
        assert s.median_s == 0.0 and s.mean_s == 0.0

    def test_single_sample(self):
        s = LatencyStats()
        s.observe(0.42)
        assert s.median_s == s.p99_s == 0.42


class TestMix:
    def test_sampling_follows_weights(self):
        mix = mix_of(
            RequestType("heavy", 90, leaf_tree()),
            RequestType("light", 10, leaf_tree()),
        )
        rng = random.Random(0)
        picks = [mix.sample(rng).name for _ in range(2000)]
        heavy = picks.count("heavy") / len(picks)
        assert 0.85 < heavy < 0.95

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(types=[])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            mix_of(RequestType("a", 0, leaf_tree()))

    def test_mean_cpu_weighted(self):
        mix = mix_of(
            RequestType("a", 1, leaf_tree(cpu=0.001)),
            RequestType("b", 3, leaf_tree(cpu=0.005)),
        )
        assert mix.mean_self_cpu_s() == pytest.approx((0.001 + 3 * 0.005) / 4)

    def test_mean_calls(self):
        mix = mix_of(RequestType("a", 1, leaf_tree()))
        assert mix.mean_calls() == 1


class TestRunLoad:
    def test_open_loop_issues_expected_count(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=4)
        report = run_load(
            deployment,
            mix_of(RequestType("r", 1, leaf_tree())),
            qps=100,
            duration_s=10,
            arrivals="uniform",
            autoscale_interval_s=None,
        )
        assert report.completed == pytest.approx(1000, abs=2)

    def test_warmup_discarded(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=4)
        report = run_load(
            deployment,
            mix_of(RequestType("r", 1, leaf_tree())),
            qps=100,
            duration_s=10,
            warmup_s=5,
            arrivals="uniform",
            autoscale_interval_s=None,
        )
        assert report.completed == pytest.approx(500, abs=2)
        assert report.latency.dropped_warmup == pytest.approx(500, abs=2)

    def test_poisson_arrivals_deterministic_given_seed(self):
        def once(seed):
            sim = Simulator()
            deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=2)
            return run_load(
                deployment,
                mix_of(RequestType("r", 1, leaf_tree())),
                qps=50,
                duration_s=5,
                seed=seed,
                autoscale_interval_s=None,
            ).completed

        assert once(1) == once(1)
        assert once(1) != once(2)  # different arrival draw

    def test_latency_includes_queueing_at_high_load(self):
        def at_qps(qps):
            sim = Simulator()
            deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=1)
            return run_load(
                deployment,
                mix_of(RequestType("r", 1, leaf_tree(cpu=0.008))),
                qps=qps,
                duration_s=10,
                autoscale_interval_s=None,
                seed=3,
            ).latency.median_s

        # 1 core, 8ms/req: 50 qps = 40% load, 110 qps = 88% load.
        assert at_qps(110) > at_qps(50)

    def test_busy_cores_scale_linearly_with_rate(self):
        """The assumption behind run_table2's extrapolation."""

        def busy_at(qps):
            sim = Simulator()
            deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=8)
            report = run_load(
                deployment,
                mix_of(RequestType("r", 1, leaf_tree(cpu=0.004))),
                qps=qps,
                duration_s=20,
                warmup_s=2,
                autoscale_interval_s=None,
                seed=5,
            )
            return report.busy_cores

        ratio = busy_at(200) / busy_at(100)
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_unknown_arrival_process_rejected(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET)
        with pytest.raises(ValueError):
            run_load(
                deployment,
                mix_of(RequestType("r", 1, leaf_tree())),
                qps=10,
                duration_s=1,
                arrivals="bursty",
                autoscale_interval_s=None,
            )

    def test_report_row_shape(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=2)
        report = run_load(
            deployment,
            mix_of(RequestType("r", 1, leaf_tree())),
            qps=50,
            duration_s=5,
            autoscale_interval_s=None,
        )
        row = report.row()
        assert set(row) == {"qps", "cores", "median_ms", "p95_ms"}
        assert report.replica_counts == {"A": 2}
