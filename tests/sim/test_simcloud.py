"""The simulated-cloud deployer (config-driven veneer over the sim)."""

from __future__ import annotations

import pytest

from repro.boutique import ALL_COMPONENTS
from repro.core.config import AppConfig
from repro.runtime.deployers.simcloud import BASELINE_STACK, WEAVER_STACK, deploy_simcloud
from repro.sim.experiment import record_boutique_mix


async def small_mix():
    return await record_boutique_mix(repeats=1)


class TestSimcloudDeployer:
    async def test_default_deploys_singletons(self):
        mix = await small_mix()
        report = await deploy_simcloud(
            mix, components=ALL_COMPONENTS, qps=150, duration_s=4, warmup_s=1
        )
        assert report.completed > 0
        assert len(report.replica_counts) == 11
        assert report.median_latency_ms > 0

    async def test_colocate_config_respected(self):
        from repro.core.component import component_name

        mix = await small_mix()
        names = [component_name(c) for c in ALL_COMPONENTS]
        config = AppConfig(name="sim").colocate_all(names)
        report = await deploy_simcloud(
            mix,
            config,
            components=ALL_COMPONENTS,
            qps=150,
            duration_s=4,
            warmup_s=1,
        )
        assert len(report.replica_counts) == 1

    async def test_stack_choice_changes_outcome(self):
        mix = await small_mix()
        weaver = await deploy_simcloud(
            mix, components=ALL_COMPONENTS, stack=WEAVER_STACK, qps=300, duration_s=5, warmup_s=1
        )
        baseline = await deploy_simcloud(
            mix, components=ALL_COMPONENTS, stack=BASELINE_STACK, qps=300, duration_s=5, warmup_s=1
        )
        assert baseline.busy_cores > weaver.busy_cores
        assert baseline.median_latency_ms > weaver.median_latency_ms
