"""The Table-2 pipeline: recording, simulation, extrapolation, orderings."""

from __future__ import annotations

import pytest

from repro.sim.experiment import (
    colocated_placement,
    record_boutique_mix,
    run_table2,
    singleton_placement,
    table2_specs,
)

# One recorded mix shared by the module (recording drives the real app).
_MIX = None


async def get_mix():
    global _MIX
    if _MIX is None:
        _MIX = await record_boutique_mix(repeats=1)
    return _MIX


class TestPlacements:
    def test_singleton_placement_has_eleven_groups(self):
        placement = singleton_placement()
        assert len(placement) == 11
        assert all(len(g) == 1 for g in placement)

    def test_colocated_placement_is_one_group(self):
        placement = colocated_placement()
        assert len(placement) == 1
        assert len(placement[0]) == 11

    def test_specs_cover_three_rows(self):
        labels = [s.label for s in table2_specs()]
        assert labels == ["baseline", "prototype", "prototype-colocated"]


class TestRecordedMix:
    async def test_mix_has_locust_tasks(self):
        mix = await get_mix()
        assert {t.name for t in mix.types} == {
            "home",
            "browse",
            "add_to_cart",
            "view_cart",
            "checkout",
        }

    async def test_home_is_the_fan_out_heavy_request(self):
        mix = await get_mix()
        by_name = {t.name: t.tree for t in mix.types}
        assert by_name["home"].total_calls() > by_name["view_cart"].total_calls()

    async def test_checkout_touches_most_components(self):
        mix = await get_mix()
        by_name = {t.name: t.tree for t in mix.types}
        assert len(by_name["checkout"].components()) >= 7

    async def test_compact_bytes_smaller_everywhere(self):
        mix = await get_mix()
        for t in mix.types:
            assert t.tree.total_bytes("compact") <= t.tree.total_bytes("tagged")


class TestTable2:
    """The headline reproduction, at reduced scale for test speed.

    Shape assertions only — exact values belong to benchmarks/EXPERIMENTS.md.
    """

    async def test_orderings_hold(self):
        mix = await get_mix()
        reports = run_table2(mix, qps=10_000, sim_qps=400, duration_s=8, warmup_s=2)
        baseline = reports["baseline"]
        prototype = reports["prototype"]
        colocated = reports["prototype-colocated"]

        # Cores: baseline > prototype > colocated (the paper's Table 2 + §6.1).
        assert baseline.average_cores > prototype.average_cores
        assert prototype.average_cores > colocated.average_cores

        # Latency: baseline > prototype > colocated.
        assert baseline.median_latency_ms > prototype.median_latency_ms
        assert prototype.median_latency_ms > colocated.median_latency_ms

    async def test_core_factors_in_paper_ballpark(self):
        mix = await get_mix()
        reports = run_table2(mix, qps=10_000, sim_qps=400, duration_s=8, warmup_s=2)
        core_ratio = reports["baseline"].average_cores / reports["prototype"].average_cores
        # Paper: 2.8x.  Python logic is relatively heavier, compressing the
        # factor; anywhere in [1.3, 5] preserves the phenomenon.
        assert 1.3 < core_ratio < 5.0

        colocated_ratio = (
            reports["baseline"].average_cores
            / reports["prototype-colocated"].average_cores
        )
        assert colocated_ratio > core_ratio  # co-location multiplies the win

    async def test_extrapolation_linear(self):
        """Scaled cores from a low-rate run match a direct higher-rate run."""
        mix = await get_mix()
        spec = table2_specs()[1]  # prototype
        low = run_table2(mix, qps=600, sim_qps=300, duration_s=8, warmup_s=2, specs=[spec])
        high = run_table2(mix, qps=600, sim_qps=600, duration_s=8, warmup_s=2, specs=[spec])
        a = low["prototype"].average_cores
        b = high["prototype"].average_cores
        assert a == pytest.approx(b, rel=0.25)

    async def test_all_requests_complete(self):
        mix = await get_mix()
        reports = run_table2(mix, qps=10_000, sim_qps=200, duration_s=5, warmup_s=1)
        for report in reports.values():
            assert report.completed > 0
            assert report.latency.count == report.completed
