"""The discrete-event engine: time, processes, resources."""

from __future__ import annotations

import pytest

from repro.sim.engine import Resource, SimError, Simulator


class TestTime:
    def test_timeouts_advance_time(self):
        sim = Simulator()
        log = []

        def process():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.spawn(process())
        sim.run()
        assert log == [1.0, 3.5]

    def test_events_fire_in_order(self):
        sim = Simulator()
        log = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            log.append(tag)

        sim.spawn(proc(3, "c"))
        sim.spawn(proc(1, "a"))
        sim.spawn(proc(2, "b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)

        for tag in "abc":
            sim.spawn(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(10)
            log.append("late")

        sim.spawn(proc())
        assert sim.run(until=5) == 5
        assert log == []
        sim.run()
        assert log == ["late"]

    def test_call_at(self):
        sim = Simulator()
        fired = []
        sim.call_at(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(-1)

        sim.spawn(proc())
        with pytest.raises(SimError):
            sim.run()

    def test_events_signal_between_processes(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            value = yield gate
            log.append(("woke", sim.now, value))

        def signaler():
            yield sim.timeout(4.0)
            gate.succeed("go")

        sim.spawn(waiter())
        sim.spawn(signaler())
        sim.run()
        assert log == [("woke", 4.0, "go")]


class TestResources:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        done = []

        def job(tag):
            with (yield server.acquire()):
                yield sim.timeout(1.0)
            done.append((tag, sim.now))

        for tag in "abc":
            sim.spawn(job(tag))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two_runs_in_parallel(self):
        sim = Simulator()
        server = Resource(sim, capacity=2)
        done = []

        def job(tag):
            with (yield server.acquire()):
                yield sim.timeout(1.0)
            done.append((tag, sim.now))

        for tag in "abcd":
            sim.spawn(job(tag))
        sim.run()
        assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_queueing(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        order = []

        def job(tag, arrive):
            yield sim.timeout(arrive)
            with (yield server.acquire()):
                order.append(tag)
                yield sim.timeout(1.0)

        sim.spawn(job("first", 0.0))
        sim.spawn(job("second", 0.1))
        sim.spawn(job("third", 0.2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_busy_time_accounting(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)

        def job():
            with (yield server.acquire()):
                yield sim.timeout(2.0)
            yield sim.timeout(2.0)  # idle tail

        sim.spawn(job())
        sim.run()
        assert server.snapshot_busy() == pytest.approx(2.0)
        assert server.utilization() == pytest.approx(0.5)

    def test_queue_length_visible(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        seen = []

        def hog():
            with (yield server.acquire()):
                yield sim.timeout(5.0)

        def waiter():
            yield sim.timeout(1.0)
            acq = server.acquire()
            seen.append(server.queue_length)
            with (yield acq):
                pass

        sim.spawn(hog())
        sim.spawn(waiter())
        sim.run()
        assert seen == [1]

    def test_invalid_capacity(self):
        with pytest.raises(SimError):
            Resource(Simulator(), capacity=0)

    def test_release_without_acquire_rejected(self):
        server = Resource(Simulator(), capacity=1)
        with pytest.raises(SimError):
            server.release()

    def test_yielding_garbage_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimError, match="must yield Event"):
            sim.run()
