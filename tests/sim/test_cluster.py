"""The simulated cluster: cost charging, placement effects, scaling."""

from __future__ import annotations

import pytest

from repro.core.config import AutoscaleConfig
from repro.sim.cluster import build_deployment
from repro.sim.costmodel import StackCosts
from repro.sim.engine import Simulator
from repro.sim.profile import CallNode

CHEAP_NET = StackCosts(
    name="test",
    codec="compact",
    rpc_fixed_cpu_s=0.001,
    ser_cpu_s_per_byte=0.0,
    protocol_overhead_bytes=0,
    network_latency_s=0.01,
    bandwidth_bytes_per_s=1e12,
)


def two_tier_tree(cpu=0.005):
    """root -> A.handle -> B.work, 100 compact bytes each way."""
    b = CallNode("B", "work", self_cpu_s=cpu, request_bytes={"compact": 100}, response_bytes={"compact": 100})
    a = CallNode("A", "handle", self_cpu_s=cpu, request_bytes={"compact": 100}, response_bytes={"compact": 100}, children=[b])
    return CallNode("<root>", "req", children=[a])


def run_one(placement, tree):
    sim = Simulator()
    deployment = build_deployment(sim, placement, CHEAP_NET)
    latencies = []
    deployment.execute(tree, latencies.append)
    sim.run()
    return deployment, latencies[0]


class TestPlacementEffects:
    def test_remote_call_pays_wire_and_rpc_cpu(self):
        _, split_latency = run_one([("A",), ("B",)], two_tier_tree())
        _, colocated_latency = run_one([("A", "B")], two_tier_tree())
        # Split: 2 hops x (2x10ms RTT) + 4x1ms rpc cpu extra.
        assert split_latency > colocated_latency
        assert colocated_latency == pytest.approx(
            0.005 * 2  # logic only... plus the front-door hop
            + 0.001  # callee rpc cpu for the entry call
            + 0.02,  # entry wire
            rel=0.01,
        )

    def test_local_children_add_no_rpc_cost(self):
        deployment, latency = run_one([("A", "B")], two_tier_tree())
        # Only the front-door entry is an RPC; B ran inline.
        expected = 0.02 + 0.001 + 0.005 + 0.005
        assert latency == pytest.approx(expected, rel=0.01)

    def test_busy_time_matches_cpu_charged(self):
        deployment, _ = run_one([("A",), ("B",)], two_tier_tree())
        total_busy = sum(g.total_busy() for g in deployment.groups)
        # A: entry callee cpu (0.001) + logic (0.005) + caller cpu (0.001)
        # B: callee cpu (0.001) + logic (0.005)
        assert total_busy == pytest.approx(0.013, rel=0.01)

    def test_queueing_under_contention(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET)
        tree = CallNode(
            "<root>", "r",
            children=[CallNode("A", "m", self_cpu_s=0.010, request_bytes={"compact": 0}, response_bytes={"compact": 0})],
        )
        latencies = []
        for _ in range(5):
            deployment.execute(tree, latencies.append)
        sim.run()
        # One core: later requests queue behind earlier ones.
        assert max(latencies) > min(latencies) + 3 * 0.010

    def test_replicas_absorb_contention(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET, initial_replicas=5)
        tree = CallNode(
            "<root>", "r",
            children=[CallNode("A", "m", self_cpu_s=0.010, request_bytes={"compact": 0}, response_bytes={"compact": 0})],
        )
        latencies = []
        for _ in range(5):
            deployment.execute(tree, latencies.append)
        sim.run()
        assert max(latencies) == pytest.approx(min(latencies), rel=0.05)


class TestScaling:
    def test_scale_to_adds_and_drains(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET)
        group = deployment.groups[0]
        group.scale_to(4)
        assert group.replica_count == 4
        group.scale_to(2)
        assert group.replica_count == 2
        assert len(group.retired) == 2

    def test_allocated_core_seconds_integrates_pods(self):
        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET)
        group = deployment.groups[0]

        def timeline():
            yield sim.timeout(10.0)
            group.scale_to(3)  # at t=10: 3 pods
            yield sim.timeout(10.0)
            group.scale_to(1)  # at t=20: back to 1

        sim.spawn(timeline())
        sim.run()
        sim.now = 30.0  # close the window manually for accounting
        # 0-10: 1 pod, 10-20: 3 pods, 20-30: 1 pod => 10+30+10 = 50 core-s
        assert group.allocated_core_seconds(30.0) == pytest.approx(50.0)

    def test_autoscale_tick_scales_up_under_load(self):
        sim = Simulator()
        deployment = build_deployment(
            sim,
            [("A",)],
            CHEAP_NET,
            autoscale=AutoscaleConfig(target_utilization=0.5, max_replicas=100),
        )
        group = deployment.groups[0]
        tree = CallNode(
            "<root>", "r",
            children=[CallNode("A", "m", self_cpu_s=0.009, request_bytes={"compact": 0}, response_bytes={"compact": 0})],
        )
        # 100 QPS x 9ms = 0.9 cores of demand against a 0.5 target.
        for i in range(200):
            sim.call_at(i * 0.01, lambda: deployment.execute(tree, lambda _: None))
        sim.call_at(1.0, group.autoscale_tick)
        sim.call_at(1.95, group.autoscale_tick)
        sim.run()
        assert group.replica_count >= 2

    def test_duplicate_component_placement_rejected(self):
        from repro.core.errors import ConfigError

        sim = Simulator()
        with pytest.raises(ConfigError, match="placed twice"):
            build_deployment(sim, [("A",), ("A", "B")], CHEAP_NET)

    def test_unplaced_component_rejected_at_execute(self):
        from repro.core.errors import ConfigError

        sim = Simulator()
        deployment = build_deployment(sim, [("A",)], CHEAP_NET)
        tree = CallNode("<root>", "r", children=[CallNode("Ghost", "m")])
        deployment.execute(tree, lambda _: None)
        with pytest.raises(ConfigError, match="not placed"):
            sim.run()
