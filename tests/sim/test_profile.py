"""Recording real call trees for simulation input."""

from __future__ import annotations

import pytest

from repro.boutique import ALL_COMPONENTS, CartItem, Frontend
from repro.serde import COMPACT, JSON, TAGGED
from repro.sim.profile import CallNode, recording_app


async def record_view_cart():
    app = await recording_app(ALL_COMPONENTS)
    fe = app.get(Frontend)
    await fe.add_to_cart("u1", "OLJCESPC7Z", 1)

    async def request(a):
        await fe.view_cart("u1", "USD")

    tree = await app.record(request, name="view_cart")
    await app.shutdown()
    return tree


class TestRecording:
    async def test_tree_structure_matches_code(self):
        tree = await record_view_cart()
        # view_cart: root -> Frontend.view_cart -> Cart.get_cart -> CartStore.get
        assert len(tree.children) == 1
        fe = tree.children[0]
        assert fe.component.endswith("Frontend") and fe.method == "view_cart"
        (cart,) = fe.children
        assert cart.component.endswith(".Cart") and cart.method == "get_cart"
        (store,) = cart.children
        assert store.component.endswith("CartStore")

    async def test_total_calls(self):
        tree = await record_view_cart()
        assert tree.total_calls() - 1 == 3  # minus the synthetic root

    async def test_self_cpu_nonnegative_and_total_positive(self):
        tree = await record_view_cart()
        def walk(n):
            assert n.self_cpu_s >= 0
            for c in n.children:
                walk(c)
        walk(tree)
        assert tree.total_self_cpu_s() > 0

    async def test_recorded_bytes_match_codecs(self):
        tree = await record_view_cart()
        fe = tree.children[0]
        # view_cart(user_id, currency) args: ("u1", "USD")
        from repro.core.registry import global_registry

        assert fe.request_bytes["compact"] < fe.request_bytes["tagged"]
        assert fe.request_bytes["tagged"] <= fe.request_bytes["json"]
        assert fe.response_bytes["compact"] > 0

    async def test_total_bytes_sums_subtree(self):
        tree = await record_view_cart()
        manual = 0

        def walk(n):
            nonlocal manual
            manual += n.request_bytes.get("compact", 0) + n.response_bytes.get("compact", 0)
            for c in n.children:
                walk(c)

        walk(tree)
        assert tree.total_bytes("compact") == manual

    async def test_components_set(self):
        tree = await record_view_cart()
        names = {c.rsplit(".", 1)[-1] for c in tree.components()}
        assert {"Frontend", "Cart", "CartStore"} <= names

    def test_scale_cpu(self):
        node = CallNode("c", "m", self_cpu_s=1.0, children=[CallNode("d", "n", self_cpu_s=0.5)])
        scaled = node.scale_cpu(0.1)
        assert scaled.self_cpu_s == pytest.approx(0.1)
        assert scaled.children[0].self_cpu_s == pytest.approx(0.05)
        assert node.self_cpu_s == 1.0  # original untouched

    async def test_multiple_recordings_independent(self):
        app = await recording_app(ALL_COMPONENTS)
        fe = app.get(Frontend)

        async def home(a):
            await fe.home("u1", "USD")

        t1 = await app.record(home, name="home")
        t2 = await app.record(home, name="home")
        assert t1.total_calls() == t2.total_calls()
        await app.shutdown()
