"""Load shedding in the simulated cluster: overload behavior with and
without admission control.

The claim (mirroring the real runtime's ``max_inflight``): under sustained
overload, a deployment that sheds excess requests at the pod door serves
strictly more successful requests within their deadline than one that
queues everything — unbounded queues convert overload into universal
deadline misses.
"""

from __future__ import annotations

import pytest

from repro.sim.cluster import build_deployment
from repro.sim.costmodel import StackCosts
from repro.sim.engine import Simulator
from repro.sim.profile import CallNode
from repro.sim.workload import RequestType, WorkloadMix, run_load

FAST_NET = StackCosts(
    name="test",
    codec="compact",
    rpc_fixed_cpu_s=0.0,
    ser_cpu_s_per_byte=0.0,
    protocol_overhead_bytes=0,
    network_latency_s=0.0001,
    bandwidth_bytes_per_s=1e12,
)


def service_tree(cpu_s: float = 0.01) -> CallNode:
    svc = CallNode("Svc", "handle", self_cpu_s=cpu_s)
    return CallNode("<root>", "req", children=[svc])


def drive(qps: float, *, shed_queue_limit: int = 0, deadline_s=None, duration_s=2.0):
    sim = Simulator()
    deployment = build_deployment(sim, [("Svc",)], FAST_NET)
    deployment.shed_queue_limit = shed_queue_limit
    deployment.deadline_s = deadline_s
    mix = WorkloadMix([RequestType("req", 1.0, service_tree())])
    return run_load(
        deployment, mix, qps=qps, duration_s=duration_s, arrivals="uniform", seed=1
    )


class TestSheddingMechanics:
    def test_no_shed_under_light_load(self):
        report = drive(qps=50, shed_queue_limit=4, deadline_s=0.5)
        assert report.shed == 0
        assert report.deadline_misses == 0
        assert report.success_rate == 1.0

    def test_overload_sheds_instead_of_queueing(self):
        # 10ms of work per request at 200 qps on one core: 2x overload.
        report = drive(qps=200, shed_queue_limit=4)
        assert report.shed > 0
        assert report.completed > 0
        assert report.issued == report.completed + report.shed

    def test_unbounded_queue_blows_deadlines(self):
        report = drive(qps=200, deadline_s=0.1)
        assert report.deadline_misses > 0

    def test_shed_accounting_in_report(self):
        report = drive(qps=200, shed_queue_limit=4, deadline_s=0.1)
        assert report.failed == report.shed + report.deadline_misses
        assert 0.0 < report.success_rate < 1.0


class TestOverloadAvailability:
    def test_shedding_beats_queueing_at_2x_overload(self):
        """The acceptance bar: at 2x overload, the shedding deployment
        completes strictly more requests within the deadline."""
        shedding = drive(qps=200, shed_queue_limit=4, deadline_s=0.1)
        queueing = drive(qps=200, shed_queue_limit=0, deadline_s=0.1)
        assert shedding.issued == queueing.issued
        ok_shedding = shedding.completed
        ok_queueing = queueing.completed
        assert ok_shedding > ok_queueing
        # And not marginally: bounded queues keep waiting time bounded, so
        # nearly every *admitted* request meets its deadline.
        assert shedding.deadline_misses <= shedding.issued * 0.05

    def test_shedding_preserves_availability_floor(self):
        shedding = drive(qps=200, shed_queue_limit=4, deadline_s=0.1)
        # One core can do ~100 qps of 10ms work: roughly half the offered
        # load should complete, not collapse to zero.
        assert shedding.success_rate > 0.35
