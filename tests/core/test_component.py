"""Component declaration and registration rules."""

from __future__ import annotations

import pytest

import repro
from repro.core.component import (
    Component,
    ComponentContext,
    component_name,
    instantiate,
    shutdown_instance,
)
from repro.core.errors import RegistrationError
from repro.core.registry import Registry


class Echo(Component):
    async def echo(self, text: str) -> str: ...


class TestInterfaceRules:
    def test_interface_with_init_rejected(self):
        with pytest.raises(RegistrationError, match="__init__"):

            class Bad(Component):
                def __init__(self) -> None:
                    pass

    def test_component_name_is_qualified(self):
        assert component_name(Echo).endswith("test_component.Echo")


class TestImplementsValidation:
    def test_valid_implementation(self):
        registry = Registry()

        class EchoImpl:
            async def echo(self, text: str) -> str:
                return text

        registry.register(Echo, EchoImpl)
        assert Echo in registry

    def test_missing_method_rejected(self):
        from repro.core.component import _check_implementation

        class Incomplete:
            pass

        with pytest.raises(RegistrationError, match="does not implement"):
            _check_implementation(Echo, Incomplete)

    def test_sync_implementation_rejected(self):
        from repro.core.component import _check_implementation

        class Sync:
            def echo(self, text: str) -> str:
                return text

        with pytest.raises(RegistrationError, match="async"):
            _check_implementation(Echo, Sync)

    def test_wrong_signature_rejected(self):
        from repro.core.component import _check_implementation

        class WrongParams:
            async def echo(self, text: str, extra: int) -> str:
                return text

        with pytest.raises(RegistrationError, match="does not match"):
            _check_implementation(Echo, WrongParams)

    def test_impl_subclassing_component_rejected(self):
        from repro.core.component import _check_implementation

        class SubclassImpl(Component):
            async def echo(self, text: str) -> str:
                return text

        with pytest.raises(RegistrationError, match="must not subclass"):
            _check_implementation(Echo, SubclassImpl)

    def test_implements_requires_component_interface(self):
        with pytest.raises(RegistrationError, match="Component interface"):
            repro.implements(int)

    def test_implements_component_base_rejected(self):
        with pytest.raises(RegistrationError):
            repro.implements(Component)


class TestLifecycle:
    async def test_init_hook_runs(self):
        ran = []

        class WithInit:
            async def init(self, ctx) -> None:
                ran.append(ctx.component)

            async def echo(self, text: str) -> str:
                return text

        ctx = ComponentContext(
            component="c", replica_id=3, version="v", getter=lambda i: None
        )
        await instantiate(WithInit, ctx)
        assert ran == ["c"]

    async def test_shutdown_hook_runs(self):
        stopped = []

        class WithShutdown:
            async def shutdown(self) -> None:
                stopped.append(True)

        inst = WithShutdown()
        await shutdown_instance(inst)
        assert stopped == [True]

    async def test_no_hooks_is_fine(self):
        class Plain:
            pass

        ctx = ComponentContext(
            component="c", replica_id=0, version="v", getter=lambda i: None
        )
        inst = await instantiate(Plain, ctx)
        await shutdown_instance(inst)

    async def test_constructor_args_rejected_with_clear_error(self):
        class NeedsArgs:
            def __init__(self, dependency) -> None:
                self.dependency = dependency

        ctx = ComponentContext(
            component="c", replica_id=0, version="v", getter=lambda i: None
        )
        with pytest.raises(RegistrationError, match="no\\s+arguments"):
            await instantiate(NeedsArgs, ctx)

    async def test_context_get_delegates_to_getter(self):
        seen = []
        ctx = ComponentContext(
            component="c",
            replica_id=0,
            version="v",
            getter=lambda iface: seen.append(iface) or "stub",
        )
        assert ctx.get(Echo) == "stub"
        assert seen == [Echo]
