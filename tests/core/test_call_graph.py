"""Call-graph telemetry and the queries the runtime builds on (§5.1)."""

from __future__ import annotations

from repro.core.call_graph import ROOT, CallGraph


def populated() -> CallGraph:
    g = CallGraph()
    # root -> FE -> {Cart, Catalog}; Cart -> Store (chatty pair)
    for _ in range(10):
        g.record(ROOT, "FE", "home", latency_s=0.010, local=False, bytes_sent=100, bytes_received=1000)
        g.record("FE", "Catalog", "list", latency_s=0.002, local=False, bytes_sent=10, bytes_received=800)
        g.record("FE", "Cart", "get", latency_s=0.004, local=False, bytes_sent=20, bytes_received=60)
        for _ in range(3):
            g.record("Cart", "Store", "get", latency_s=0.001, local=False, bytes_sent=20, bytes_received=40)
    return g


class TestRecording:
    def test_edge_aggregation(self):
        g = populated()
        (edge,) = [e for e in g.edges() if e.callee == "Catalog"]
        assert edge.calls == 10
        assert edge.bytes_sent == 100
        assert abs(edge.avg_latency_s - 0.002) < 1e-9

    def test_local_vs_remote_counted(self):
        g = CallGraph()
        g.record("A", "B", "m", latency_s=0.001, local=True)
        g.record("A", "B", "m", latency_s=0.001, local=False)
        (edge,) = g.edges()
        assert edge.local_calls == 1
        assert edge.remote_calls == 1

    def test_errors_counted(self):
        g = CallGraph()
        g.record("A", "B", "m", latency_s=0.001, error=True)
        assert g.edges()[0].errors == 1

    def test_components_excludes_root(self):
        assert ROOT not in populated().components()

    def test_total_calls(self):
        assert populated().total_calls() == 10 * (1 + 1 + 1 + 3)

    def test_reset(self):
        g = populated()
        g.reset()
        assert g.edges() == []


class TestQueries:
    def test_chattiest_pair_is_cart_store(self):
        g = populated()
        top = g.chatty_pairs(1)
        assert top[0][:2] == ("Cart", "Store")
        assert top[0][2] == 30

    def test_critical_path_follows_heaviest_chain(self):
        g = populated()
        path = g.critical_path()
        assert path[0] == "FE"
        assert path[-1] == "Store"

    def test_bottlenecks_rank_by_self_time(self):
        g = populated()
        ranking = dict(g.bottlenecks())
        # FE self time: 10*10ms - (10*2ms + 10*4ms) = 40ms, the largest.
        assert max(ranking, key=ranking.get) == "FE"

    def test_colocation_advice_orders_by_bytes(self):
        g = populated()
        advice = g.colocation_advice()
        assert ("FE", "Catalog") == advice[0]  # 8100 bytes saved, largest

    def test_pair_traffic_merges_methods(self):
        g = CallGraph()
        g.record("A", "B", "m1", latency_s=0.001)
        g.record("A", "B", "m2", latency_s=0.001)
        pairs = g.pair_traffic()
        assert pairs[("A", "B")].calls == 2

    def test_cycle_does_not_hang_critical_path(self):
        g = CallGraph()
        g.record(ROOT, "A", "m", latency_s=0.001)
        g.record("A", "B", "m", latency_s=0.001)
        g.record("B", "A", "m", latency_s=0.001)  # cycle
        path = g.critical_path()
        assert path[0] == "A"
        assert len(path) <= 3


class TestWire:
    def test_wire_roundtrip_preserves_totals(self):
        g = populated()
        manager_side = CallGraph()
        manager_side.replace_from_wire("proclet-1", g.to_wire())
        assert manager_side.total_calls() == g.total_calls()
        assert manager_side.chatty_pairs(1) == g.chatty_pairs(1)

    def test_replace_is_idempotent_per_source(self):
        g = populated()
        m = CallGraph()
        m.replace_from_wire("p1", g.to_wire())
        m.replace_from_wire("p1", g.to_wire())  # cumulative snapshot again
        assert m.total_calls() == g.total_calls()

    def test_sources_are_additive(self):
        g = populated()
        m = CallGraph()
        m.replace_from_wire("p1", g.to_wire())
        m.replace_from_wire("p2", g.to_wire())
        assert m.total_calls() == 2 * g.total_calls()
