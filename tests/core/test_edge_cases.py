"""Edge cases across core modules that the main suites don't reach."""

from __future__ import annotations

from typing import Any

import pytest

import repro
from repro.codegen.compiler import compile_interface
from repro.codegen.schema import schema_of
from repro.core.component import Component
from repro.core.errors import EncodeError
from repro.serde import COMPACT, codec_by_name


class TestCodecRegistry:
    def test_unknown_codec_name(self):
        with pytest.raises(ValueError, match="unknown codec"):
            codec_by_name("msgpack")

    def test_known_names(self):
        for name in ("compact", "tagged", "json"):
            assert codec_by_name(name).name == name


class TestAnyKind:
    def test_any_param_compiles_but_cannot_encode(self):
        """`Any` passes schema derivation (it is a real annotation) but the
        wire formats refuse it at encode time with a clear error — a
        deliberate fail-at-the-boundary design."""

        class Loose(Component):
            async def take(self, x: Any) -> None: ...

        spec = compile_interface(Loose, "t.Loose")
        with pytest.raises(EncodeError):
            COMPACT.encode(spec.method("take").arg_schema, ({"arbitrary": object()},))


class TestStubIdentity:
    async def test_distinct_callers_distinct_stubs_same_instance(self, demo_build):
        from repro.core.call_graph import CallGraph
        from repro.core.stub import LocalInvoker, make_stub
        from tests.conftest import Adder

        invoker = LocalInvoker(version=demo_build.version, call_graph=CallGraph())
        reg = demo_build.by_iface(Adder)
        s1 = make_stub(reg, invoker, "caller-one")
        s2 = make_stub(reg, invoker, "caller-two")
        await s1.add(1, 1)
        await s2.add(2, 2)
        callers = {e.caller for e in invoker.call_graph.edges()}
        assert callers == {"caller-one", "caller-two"}
        # Both stubs hit the same singleton instance.
        assert (await invoker.instance(reg)).calls == 2


class TestBoutiqueDataSanity:
    def test_all_products_have_valid_money(self):
        from repro.boutique.data import PRODUCTS

        assert len(PRODUCTS) == 9
        ids = [p.id for p in PRODUCTS]
        assert len(set(ids)) == 9
        for p in PRODUCTS:
            p.price.validate()
            assert p.price.currency_code == "USD"
            assert p.price.units >= 0
            assert p.categories

    def test_ads_reference_real_products(self):
        from repro.boutique.data import ADS_BY_CATEGORY, PRODUCTS

        ids = {p.id for p in PRODUCTS}
        for entries in ADS_BY_CATEGORY.values():
            for url, text in entries:
                assert url.startswith("/product/")
                assert url.rsplit("/", 1)[-1] in ids
                assert text

    def test_rates_positive_and_eur_based(self):
        from repro.boutique.data import CURRENCY_RATES

        assert CURRENCY_RATES["EUR"] == 1.0
        assert all(rate > 0 for rate in CURRENCY_RATES.values())
        assert len(CURRENCY_RATES) >= 30

    def test_all_products_serialize_under_every_codec(self):
        from repro.boutique.data import PRODUCTS
        from repro.boutique.types import Product

        schema = schema_of(Product)
        for codec_name in ("compact", "tagged", "json"):
            codec = codec_by_name(codec_name)
            for p in PRODUCTS:
                assert codec.decode(schema, codec.encode(schema, p)) == p


class TestVersionStability:
    def test_boutique_version_is_stable_within_process(self):
        from repro.boutique import ALL_COMPONENTS
        from repro.core.registry import global_registry

        v1 = global_registry().freeze(components=ALL_COMPONENTS).version
        v2 = global_registry().freeze(components=ALL_COMPONENTS).version
        assert v1 == v2

    def test_component_ids_follow_sorted_names(self):
        from repro.boutique import ALL_COMPONENTS
        from repro.core.registry import global_registry

        build = global_registry().freeze(components=ALL_COMPONENTS)
        names = [r.name for r in build.registrations]
        assert names == sorted(names)
        assert [r.component_id for r in build.registrations] == list(range(11))


class TestRunHelpers:
    def test_colocate_all_roundtrip(self):
        cfg = repro.AppConfig(name="x")
        resolved = cfg.colocate_all(["a.A", "b.B"]).resolve(["a.A", "b.B"])
        assert len(resolved.groups) == 1
