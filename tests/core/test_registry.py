"""Registry registration, freezing, and id assignment."""

from __future__ import annotations

import pytest

from repro.core.component import Component
from repro.core.errors import ComponentNotFound, RegistrationError
from repro.core.registry import Registry

from tests.conftest import Adder, AdderImpl, Greeter, GreeterImpl


class TestRegistration:
    def test_register_and_lookup(self, demo_registry):
        reg = demo_registry.lookup(Adder)
        assert reg.impl is AdderImpl
        assert reg.name.endswith("conftest.Adder")

    def test_duplicate_same_impl_is_idempotent(self, demo_registry):
        demo_registry.register(Adder, AdderImpl)  # no error

    def test_conflicting_impl_rejected(self, demo_registry):
        class OtherAdder:
            async def add(self, a: int, b: int) -> int:
                return 0

            async def add_all(self, values: list[int]) -> int:
                return 0

        with pytest.raises(RegistrationError, match="already has implementation"):
            demo_registry.register(Adder, OtherAdder)

    def test_lookup_unregistered_raises(self):
        registry = Registry()
        with pytest.raises(ComponentNotFound, match="forget @implements"):
            registry.lookup(Adder)

    def test_len_and_contains(self, demo_registry):
        assert len(demo_registry) == 4
        assert Adder in demo_registry
        assert Component not in demo_registry

    def test_interfaces_sorted_by_name(self, demo_registry):
        names = [i.__name__ for i in demo_registry.interfaces()]
        assert names == sorted(names)


class TestFreeze:
    def test_ids_assigned_in_name_order(self, demo_build):
        names = [r.name for r in demo_build.registrations]
        assert names == sorted(names)
        assert [r.component_id for r in demo_build.registrations] == list(
            range(len(names))
        )

    def test_freeze_deterministic_across_registries(self):
        r1, r2 = Registry(), Registry()
        for r in (r1, r2):
            r.register(Adder, AdderImpl)
            r.register(Greeter, GreeterImpl)
        b1, b2 = r1.freeze(), r2.freeze()
        assert b1.version == b2.version
        assert [x.component_id for x in b1.registrations] == [
            x.component_id for x in b2.registrations
        ]

    def test_subset_freeze(self, demo_registry):
        build = demo_registry.freeze(components=[Adder])
        assert len(build) == 1
        with pytest.raises(ComponentNotFound):
            build.by_iface(Greeter)

    def test_subset_changes_version(self, demo_registry):
        full = demo_registry.freeze()
        partial = demo_registry.freeze(components=[Adder])
        assert full.version != partial.version

    def test_salt_changes_version(self, demo_registry):
        assert demo_registry.freeze().version != demo_registry.freeze(salt="x").version

    def test_lookups_by_all_keys(self, demo_build):
        reg = demo_build.by_iface(Adder)
        assert demo_build.by_name(reg.name) is reg
        assert demo_build.by_id(reg.component_id) is reg

    def test_unknown_lookups_raise(self, demo_build):
        with pytest.raises(ComponentNotFound):
            demo_build.by_name("nope.Nope")
        with pytest.raises(ComponentNotFound):
            demo_build.by_id(999)

    def test_names_listing(self, demo_build):
        assert len(demo_build.names()) == 4
        assert all("." in n for n in demo_build.names())

    def test_freeze_of_unregistered_subset_raises(self):
        registry = Registry()
        with pytest.raises(ComponentNotFound):
            registry.freeze(components=[Adder])
