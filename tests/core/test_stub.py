"""Stub generation and the local invoker."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.call_graph import CallGraph, ROOT
from repro.core.stub import LocalInvoker, make_stub

from tests.conftest import Adder, Flaky, Greeter


@pytest.fixture
def invoker(demo_build):
    class Resolver:
        def __init__(self):
            self.inv = None

        def get_for(self, iface, caller):
            return make_stub(demo_build.by_iface(iface), self.inv, caller)

    resolver = Resolver()
    inv = LocalInvoker(
        version=demo_build.version, call_graph=CallGraph(), resolver=resolver
    )
    resolver.inv = inv
    return inv


@pytest.fixture
def adder_stub(demo_build, invoker):
    return make_stub(demo_build.by_iface(Adder), invoker, ROOT)


class TestStubCalls:
    async def test_positional_args(self, adder_stub):
        assert await adder_stub.add(2, 3) == 5

    async def test_keyword_args(self, adder_stub):
        assert await adder_stub.add(a=2, b=3) == 5

    async def test_mixed_args(self, adder_stub):
        assert await adder_stub.add(2, b=3) == 5

    async def test_missing_arg_raises_typeerror(self, adder_stub):
        with pytest.raises(TypeError, match="takes 2 arguments"):
            await adder_stub.add(2)

    async def test_extra_args_raise(self, adder_stub):
        with pytest.raises(TypeError):
            await adder_stub.add(1, 2, 3)

    async def test_unknown_kwarg_raises(self, adder_stub):
        with pytest.raises(TypeError, match="unexpected"):
            await adder_stub.add(1, 2, c=3)

    def test_repr_names_component_and_caller(self, adder_stub):
        assert "Adder" in repr(adder_stub)
        assert ROOT in repr(adder_stub)

    def test_stub_class_cached(self, demo_build, invoker):
        a = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        b = make_stub(demo_build.by_iface(Adder), invoker, "other")
        assert type(a) is type(b)
        assert a is not b


class TestLocalInvoker:
    async def test_singleton_instance(self, demo_build, invoker):
        reg = demo_build.by_iface(Adder)
        i1 = await invoker.instance(reg)
        i2 = await invoker.instance(reg)
        assert i1 is i2

    async def test_concurrent_instantiation_single_instance(self, demo_build, invoker):
        reg = demo_build.by_iface(Adder)
        instances = await asyncio.gather(*[invoker.instance(reg) for _ in range(20)])
        assert len({id(i) for i in instances}) == 1

    async def test_dependency_resolution_through_context(self, demo_build, invoker):
        stub = make_stub(demo_build.by_iface(Greeter), invoker, ROOT)
        assert await stub.greet("Bob") == "Hello, Bob! (4)"

    async def test_call_graph_records_caller(self, demo_build, invoker):
        stub = make_stub(demo_build.by_iface(Greeter), invoker, ROOT)
        await stub.greet("Bob")
        edges = {(e.caller, e.callee.rsplit(".", 1)[-1]) for e in invoker.call_graph.edges()}
        assert (ROOT, "Greeter") in edges
        greeter_name = demo_build.by_iface(Greeter).name
        assert (greeter_name, "Adder") in edges

    async def test_calls_marked_local(self, demo_build, invoker, adder_stub):
        await adder_stub.add(1, 1)
        (edge,) = [e for e in invoker.call_graph.edges() if e.callee.endswith("Adder")]
        assert edge.local_calls == edge.calls == 1

    async def test_errors_recorded_and_propagated(self, demo_build, invoker):
        from repro.core.errors import Unavailable

        stub = make_stub(demo_build.by_iface(Flaky), invoker, ROOT)
        with pytest.raises(Unavailable):
            await stub.work(5)
        (edge,) = [e for e in invoker.call_graph.edges() if e.callee.endswith("Flaky")]
        assert edge.errors == 1

    async def test_fault_plan_applies_to_existing_stubs(self, demo_build, invoker, adder_stub):
        from repro.core.errors import Unavailable
        from repro.testing.faults import FaultPlan, FaultRule

        invoker.fault_plan = FaultPlan([FaultRule(component="Adder", failure_rate=1.0)])
        with pytest.raises(Unavailable, match="injected"):
            await adder_stub.add(1, 2)
