"""CallOptions: validation, layering, aliases, and budget helpers."""

from __future__ import annotations

import random
import time

import pytest

from repro.core.call_graph import ROOT
from repro.core.errors import ConfigError, DeadlineExceeded
from repro.core.options import (
    CallOptions,
    budget_to_wire_ms,
    current_deadline,
    deadline_scope,
    decorrelated_jitter,
    effective_budget_s,
    remaining_budget_s,
)
from repro.core.stub import LocalInvoker, make_stub

from tests.conftest import Adder


class TestCallOptions:
    def test_defaults_mean_deployment_policy(self):
        opts = CallOptions()
        assert opts.deadline_s is None
        assert opts.retries is None
        assert opts.hedge_after_s is None
        assert opts.route_key is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            CallOptions(deadline_s=0)
        with pytest.raises(ConfigError):
            CallOptions(deadline_s=-1)
        with pytest.raises(ConfigError):
            CallOptions(retries=-1)
        with pytest.raises(ConfigError):
            CallOptions(hedge_after_s=-0.1)

    def test_replace_merges_and_keeps_unset(self):
        base = CallOptions(deadline_s=2.0, retries=1)
        merged = base.replace(retries=3)
        assert merged.deadline_s == 2.0
        assert merged.retries == 3
        assert base.retries == 1  # immutable

    def test_replace_aliases(self):
        opts = CallOptions().replace(hedge=0.05, timeout_s=1.5)
        assert opts.hedge_after_s == 0.05
        assert opts.deadline_s == 1.5

    def test_replace_rejects_unknown_option(self):
        with pytest.raises(ConfigError, match="unknown call option"):
            CallOptions().replace(dead_line=1.0)


class TestStubWithOptions:
    def test_with_options_returns_configured_clone(self, demo_build):
        invoker = LocalInvoker(version=demo_build.version)
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        configured = stub.with_options(deadline_s=2.0, retries=0)
        assert configured is not stub
        assert stub._repro_options is None
        assert configured._repro_options == CallOptions(deadline_s=2.0, retries=0)

    def test_with_options_layers(self, demo_build):
        invoker = LocalInvoker(version=demo_build.version)
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        layered = stub.with_options(deadline_s=2.0).with_options(retries=1)
        assert layered._repro_options == CallOptions(deadline_s=2.0, retries=1)

    async def test_configured_stub_still_calls(self, demo_build):
        invoker = LocalInvoker(version=demo_build.version)
        stub = make_stub(demo_build.by_iface(Adder), invoker, ROOT)
        assert await stub.with_options(deadline_s=5.0).add(1, 2) == 3

    async def test_local_deadline_enforced(self, demo_registry):
        import asyncio

        import repro
        from repro.core.component import Component

        class Sleeper(Component):
            async def nap(self, seconds: float) -> str: ...

        class SleeperImpl:
            async def nap(self, seconds: float) -> str:
                await asyncio.sleep(seconds)
                return "rested"

        registry = demo_registry
        registry.register(Sleeper, SleeperImpl)
        app = await repro.init(components=None, registry=registry)
        try:
            sleeper = app.get(Sleeper).with_options(deadline_s=0.05)
            with pytest.raises(DeadlineExceeded):
                await sleeper.nap(1.0)
        finally:
            await app.shutdown()


class TestAmbientDeadline:
    def test_scope_sets_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(time.monotonic() + 1.0):
            assert remaining_budget_s() is not None
        assert current_deadline() is None

    def test_scope_only_shrinks(self):
        tight = time.monotonic() + 0.5
        loose = time.monotonic() + 60.0
        with deadline_scope(tight):
            with deadline_scope(loose):  # must NOT extend
                assert current_deadline() == tight

    def test_effective_budget_capped_by_ambient(self):
        with deadline_scope(time.monotonic() + 0.2):
            assert effective_budget_s(None, 30.0) <= 0.2
            assert effective_budget_s(10.0, 30.0) <= 0.2
        assert effective_budget_s(10.0, 30.0) == 10.0
        assert effective_budget_s(None, 30.0) == 30.0

    def test_budget_to_wire_never_reads_as_unlimited(self):
        assert budget_to_wire_ms(0.5) == 500
        assert budget_to_wire_ms(0.0001) == 1
        assert budget_to_wire_ms(0.0) == 1
        assert budget_to_wire_ms(-1.0) == 1


class TestBackoff:
    def test_jitter_stays_within_bounds(self):
        rng = random.Random(42)
        prev = 0.05
        for _ in range(200):
            prev = decorrelated_jitter(prev, base_s=0.05, cap_s=1.0, rng=rng)
            assert 0.05 <= prev <= 1.0

    def test_jitter_is_capped(self):
        rng = random.Random(7)
        sleep = 100.0  # absurd previous sleep
        assert decorrelated_jitter(sleep, base_s=0.05, cap_s=1.0, rng=rng) == 1.0

    def test_jitter_decorrelates(self):
        rng = random.Random(3)
        values = set()
        prev = 0.05
        for _ in range(20):
            prev = decorrelated_jitter(prev, base_s=0.05, cap_s=10.0, rng=rng)
            values.add(round(prev, 6))
        assert len(values) > 10  # not a fixed geometric ladder
