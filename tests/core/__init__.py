"""Test package."""
