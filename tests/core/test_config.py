"""AppConfig validation and resolution."""

from __future__ import annotations

import pytest

from repro.core.config import AppConfig, AutoscaleConfig, RolloutConfig
from repro.core.errors import ConfigError

NAMES = ["app.A", "app.B", "app.C", "app.D"]


class TestValidation:
    def test_defaults_valid(self):
        AppConfig()

    def test_unknown_codec(self):
        with pytest.raises(ConfigError, match="codec"):
            AppConfig(codec="msgpack")

    def test_unknown_transport(self):
        with pytest.raises(ConfigError, match="transport"):
            AppConfig(transport="carrier-pigeon")

    def test_bad_timeout(self):
        with pytest.raises(ConfigError):
            AppConfig(call_timeout_s=0)

    def test_bad_retries(self):
        with pytest.raises(ConfigError):
            AppConfig(max_retries=-1)

    def test_autoscale_bounds(self):
        with pytest.raises(ConfigError):
            AutoscaleConfig(min_replicas=0)
        with pytest.raises(ConfigError):
            AutoscaleConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ConfigError):
            AutoscaleConfig(target_utilization=0.0)
        with pytest.raises(ConfigError):
            AutoscaleConfig(target_utilization=1.5)

    def test_rollout_validation(self):
        with pytest.raises(ConfigError):
            RolloutConfig(strategy="yolo")
        with pytest.raises(ConfigError):
            RolloutConfig(steps=0)


class TestResolve:
    def test_default_groups_are_singletons(self):
        resolved = AppConfig().resolve(NAMES)
        assert sorted(resolved.groups) == [(n,) for n in NAMES]
        assert all(resolved.replicas[n] == 1 for n in NAMES)

    def test_explicit_group_plus_singletons(self):
        cfg = AppConfig(colocate=(("app.A", "app.B"),))
        resolved = cfg.resolve(NAMES)
        assert ("app.A", "app.B") in resolved.groups
        assert ("app.C",) in resolved.groups
        assert len(resolved.groups) == 3

    def test_group_of(self):
        cfg = AppConfig(colocate=(("app.A", "app.B"),))
        resolved = cfg.resolve(NAMES)
        assert resolved.group_of("app.A") == resolved.group_of("app.B")
        assert resolved.group_of("app.C") != resolved.group_of("app.A")

    def test_unknown_component_in_group(self):
        with pytest.raises(ConfigError, match="unknown component"):
            AppConfig(colocate=(("app.Z",),)).resolve(NAMES)

    def test_component_in_two_groups(self):
        cfg = AppConfig(colocate=(("app.A",), ("app.A", "app.B")))
        with pytest.raises(ConfigError, match="more than one"):
            cfg.resolve(NAMES)

    def test_replica_counts(self):
        cfg = AppConfig(replicas={"app.A": 3})
        resolved = cfg.resolve(NAMES)
        assert resolved.replicas["app.A"] == 3
        assert resolved.replicas["app.B"] == 1

    def test_replica_for_unknown_component(self):
        with pytest.raises(ConfigError):
            AppConfig(replicas={"app.Z": 2}).resolve(NAMES)

    def test_zero_replicas_rejected(self):
        with pytest.raises(ConfigError):
            AppConfig(replicas={"app.A": 0}).resolve(NAMES)

    def test_colocate_all(self):
        cfg = AppConfig().colocate_all(NAMES)
        resolved = cfg.resolve(NAMES)
        assert len(resolved.groups) == 1
        assert set(resolved.groups[0]) == set(NAMES)

    def test_group_of_unknown_raises(self):
        resolved = AppConfig().resolve(NAMES)
        with pytest.raises(ConfigError):
            resolved.group_of("app.Z")


class TestFromDict:
    def test_roundtrip_fields(self):
        cfg = AppConfig.from_dict(
            {
                "name": "shop",
                "codec": "tagged",
                "colocate": [["app.A", "app.B"]],
                "autoscale": {"min_replicas": 2, "target_utilization": 0.5},
                "rollout": {"strategy": "blue_green", "steps": 4},
            }
        )
        assert cfg.name == "shop"
        assert cfg.codec == "tagged"
        assert cfg.colocate == (("app.A", "app.B"),)
        assert cfg.autoscale.min_replicas == 2
        assert cfg.rollout.steps == 4

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            AppConfig.from_dict({"naem": "typo"})

    def test_from_toml(self):
        cfg = AppConfig.from_toml(
            """
            name = "shop"
            codec = "tagged"
            compress_wire = true
            colocate = [["app.A", "app.B"]]

            [replicas]
            "app.A" = 3

            [autoscale]
            target_utilization = 0.5

            [rollout]
            steps = 4
            """
        )
        assert cfg.name == "shop"
        assert cfg.compress_wire is True
        assert cfg.colocate == (("app.A", "app.B"),)
        assert cfg.replicas == {"app.A": 3}
        assert cfg.autoscale.target_utilization == 0.5
        assert cfg.rollout.steps == 4

    def test_from_toml_invalid_syntax(self):
        with pytest.raises(ConfigError, match="invalid TOML"):
            AppConfig.from_toml("name = [unterminated")

    def test_from_toml_unknown_key(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            AppConfig.from_toml('naem = "typo"')

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "app.toml"
        path.write_text('name = "filed"\ncodec = "json"\n')
        cfg = AppConfig.load(str(path))
        assert cfg.name == "filed"
        assert cfg.codec == "json"

    def test_classes_accepted_as_refs(self, demo_registry):
        from repro.core.component import component_name
        from tests.conftest import Adder, Greeter

        names = [component_name(Adder), component_name(Greeter)]
        cfg = AppConfig(colocate=((Adder, Greeter),), replicas={Adder: 2})
        resolved = cfg.resolve(names)
        assert len(resolved.groups) == 1
        assert resolved.replicas[component_name(Adder)] == 2
