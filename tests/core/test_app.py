"""The init/get/run facade (Figure 2 parity)."""

from __future__ import annotations

import pytest

import repro
from repro.core.app import init, run
from repro.core.errors import ComponentNotFound

from tests.conftest import Adder, Greeter, KVStore


class TestInit:
    async def test_hello_world_shape(self, demo_registry):
        app = await init(registry=demo_registry)
        greeter = app.get(Greeter)
        assert await greeter.greet("World") == "Hello, World! (6)"
        await app.shutdown()

    async def test_get_unknown_component(self, demo_registry):
        app = await init(registry=demo_registry, components=[Adder])
        with pytest.raises(ComponentNotFound):
            app.get(Greeter)
        await app.shutdown()

    async def test_version_exposed(self, demo_registry):
        app = await init(registry=demo_registry)
        assert len(app.version) == 16
        await app.shutdown()

    async def test_context_manager(self, demo_registry):
        async with await init(registry=demo_registry) as app:
            assert await app.get(Adder).add(1, 1) == 2

    async def test_shutdown_runs_component_hooks(self, demo_registry):
        stopped = []

        class Closeable(repro.Component):
            async def noop(self, x: int) -> int: ...

        class CloseableImpl:
            async def noop(self, x: int) -> int:
                return x

            async def shutdown(self) -> None:
                stopped.append(True)

        demo_registry.register(Closeable, CloseableImpl)
        app = await init(registry=demo_registry)
        await app.get(Closeable).noop(1)  # instantiate
        await app.shutdown()
        assert stopped == [True]

    async def test_routed_methods_work_locally(self, demo_registry):
        app = await init(registry=demo_registry)
        kv = app.get(KVStore)
        await kv.put("k", "v")
        assert await kv.get("k") == "v"
        await app.shutdown()


def test_run_sync_facade(demo_registry):
    """repro.run is the weaver.Run equivalent: sync in, app managed."""
    import asyncio

    async def main(app):
        return await app.get(Adder).add(20, 22)

    # run() uses the global registry; build a local variant for isolation.
    async def body():
        app = await init(registry=demo_registry)
        try:
            return await main(app)
        finally:
            await app.shutdown()

    assert asyncio.run(body()) == 42


def test_run_with_global_registry():
    class RunDemo(repro.Component):
        async def ping(self) -> str: ...

    @repro.implements(RunDemo)
    class RunDemoImpl:
        async def ping(self) -> str:
            return "pong"

    async def main(app):
        return await app.get(RunDemo).ping()

    assert repro.run(main) == "pong"
