"""Shared test plumbing.

pytest-asyncio is not available in this environment, so a minimal hook
runs ``async def`` tests through ``asyncio.run`` — each async test gets a
fresh event loop, which also guarantees cross-test isolation of sockets,
tasks, and servers.

Fixtures here provide isolated component registries with a small demo
application (an adder, a greeter that depends on it, and a routed
key-value store), so runtime tests don't need the full boutique.
"""

from __future__ import annotations

import asyncio
import inspect

import pytest

import repro
from repro.codegen.compiler import idempotent, routed
from repro.core.component import Component
from repro.core.registry import Registry


@pytest.fixture(scope="session", autouse=True)
def _sweep_state_scratch():
    """Remove WAL/snapshot scratch dirs the session leaves in tempdir.

    MultiProcessApp provisions ``repro-state-*`` under the system tempdir
    and removes it on clean shutdown, but chaos tests kill deployments
    mid-flight by design.  Sweep only dirs that appeared during this
    session so concurrent runs on the same machine are untouched.
    """
    import glob
    import os
    import shutil
    import tempfile

    pattern = os.path.join(tempfile.gettempdir(), "repro-state-*")
    preexisting = set(glob.glob(pattern))
    yield
    for path in set(glob.glob(pattern)) - preexisting:
        shutil.rmtree(path, ignore_errors=True)


def pytest_pyfunc_call(pyfuncitem):
    fn = pyfuncitem.obj
    if inspect.iscoroutinefunction(fn):
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(fn(**kwargs))
        return True
    return None


# ---------------------------------------------------------------------------
# Demo components (interfaces + impls), registered into private registries.
# ---------------------------------------------------------------------------


class Adder(Component):
    @idempotent
    async def add(self, a: int, b: int) -> int: ...

    @idempotent
    async def add_all(self, values: list[int]) -> int: ...


class AdderImpl:
    def __init__(self) -> None:
        self.calls = 0

    async def add(self, a: int, b: int) -> int:
        self.calls += 1
        return a + b

    async def add_all(self, values: list[int]) -> int:
        self.calls += 1
        return sum(values)


class Greeter(Component):
    @idempotent
    async def greet(self, name: str) -> str: ...


class GreeterImpl:
    async def init(self, ctx) -> None:
        self.adder = ctx.get(Adder)
        self.replica_id = ctx.replica_id

    async def greet(self, name: str) -> str:
        n = await self.adder.add(len(name), 1)
        return f"Hello, {name}! ({n})"


class KVStore(Component):
    @routed(by="key")
    async def put(self, key: str, value: str) -> None: ...

    @idempotent
    @routed(by="key")
    async def get(self, key: str) -> str: ...

    @idempotent
    @routed(by="key")
    async def which_replica(self, key: str) -> int: ...


class KVStoreImpl:
    async def init(self, ctx) -> None:
        self.replica_id = ctx.replica_id
        self.data: dict[str, str] = {}

    async def put(self, key: str, value: str) -> None:
        self.data[key] = value

    async def get(self, key: str) -> str:
        return self.data.get(key, "")

    async def which_replica(self, key: str) -> int:
        return self.replica_id


class Flaky(Component):
    @idempotent
    async def work(self, fail_times: int) -> str: ...


class FlakyImpl:
    def __init__(self) -> None:
        self.attempts: dict[int, int] = {}

    async def work(self, fail_times: int) -> str:
        seen = self.attempts.get(fail_times, 0)
        self.attempts[fail_times] = seen + 1
        if seen < fail_times:
            from repro.core.errors import Unavailable

            raise Unavailable("still warming up")
        return "done"


DEMO_PAIRS = [
    (Adder, AdderImpl),
    (Greeter, GreeterImpl),
    (KVStore, KVStoreImpl),
    (Flaky, FlakyImpl),
]

# Register into the global registry at import time as well: subprocess
# proclets rebuild their registry by importing this module (procmain), so
# registration must be an import-time effect, exactly as @implements is.
for _iface, _impl in DEMO_PAIRS:
    repro.global_registry().register(_iface, _impl)


@pytest.fixture
def demo_registry() -> Registry:
    registry = Registry()
    for iface, impl in DEMO_PAIRS:
        registry.register(iface, impl)
    return registry


@pytest.fixture
def demo_build(demo_registry):
    return demo_registry.freeze()
