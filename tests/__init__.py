"""Test package."""
