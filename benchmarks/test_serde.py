"""E7 — serialization ablation (§6).

    "Most of the performance benefits of our prototype come from its use of
    a custom serialization format designed for non-versioned data exchange."

Microbenchmarks of the three codecs on real boutique messages, plus the
wire-size table.  These measured numbers are what calibrates the cluster
simulation's cost model, so this experiment is load-bearing for E1.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.boutique import ALL_COMPONENTS, Frontend
from repro.boutique.types import HomePage, OrderResult, Product
from repro.codegen.schema import schema_of
from repro.serde import codec_by_name
from repro.sim.profile import recording_app

CODECS = ("compact", "tagged", "json")


@pytest.fixture(scope="module")
def messages():
    """Real messages captured from the running application."""

    async def capture():
        app = await recording_app(ALL_COMPONENTS)
        fe = app.get(Frontend)
        home = await fe.home("bench-user", "USD")
        product = await fe.browse_product("bench-user", "1YMWWN1N4O", "USD")
        await fe.add_to_cart("bench-user", "OLJCESPC7Z", 2)
        from repro.boutique import Address, CreditCard

        order = await fe.checkout(
            "bench-user",
            "USD",
            Address("1 Main", "Springfield", "IL", "US", 62701),
            "b@x.com",
            CreditCard("4432-8015-6152-0454", 672, 2030, 1),
        )
        await app.shutdown()
        return {
            "home_page": (schema_of(HomePage), home),
            "product": (schema_of(Product), product),
            "order": (schema_of(OrderResult), order),
        }

    return asyncio.run(capture())


@pytest.mark.parametrize("codec_name", CODECS)
@pytest.mark.parametrize("message_name", ["home_page", "product", "order"])
def test_encode_decode(benchmark, messages, codec_name, message_name):
    codec = codec_by_name(codec_name)
    schema, value = messages[message_name]
    data = codec.encode(schema, value)

    def roundtrip():
        return codec.decode(schema, codec.encode(schema, value))

    result = benchmark(roundtrip)
    assert result == value
    benchmark.extra_info["wire_bytes"] = len(data)


def test_wire_sizes(benchmark, messages):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The size table behind the CPU numbers."""
    rows = []
    for name, (schema, value) in messages.items():
        row = {"message": name}
        for codec_name in CODECS:
            row[codec_name] = len(codec_by_name(codec_name).encode(schema, value))
        row["tagged/compact"] = row["tagged"] / row["compact"]
        row["json/compact"] = row["json"] / row["compact"]
        rows.append(row)
    print_table(
        "E7: wire bytes per message",
        rows,
        ["message", "compact", "tagged", "json", "tagged/compact", "json/compact"],
    )
    for row in rows:
        assert row["compact"] < row["tagged"] < row["json"]


def test_no_tags_on_wire(benchmark, messages):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The compact format ships zero schema metadata."""
    schema, value = messages["order"]
    compact = codec_by_name("compact").encode(schema, value)
    json_bytes = codec_by_name("json").encode(schema, value)
    assert b"order_id" not in compact
    assert b"order_id" in json_bytes
