"""Design-choice ablations (DESIGN.md commitments beyond the paper's tables).

1. **Serialization vs transport decomposition** — the paper says "most of
   the performance benefits ... come from its use of a custom serialization
   format ... as well as its use of a streamlined transport protocol".
   Hybrid stacks isolate the two contributions.
2. **Wire compression** (§5.1) — bytes saved vs CPU spent on real boutique
   messages, and its effect on the simulated cluster.
3. **Routing vnodes** — the consistent-hashing granularity knob: balance
   and assignment size as vnodes grow.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import pytest

from benchmarks.conftest import print_table
from repro.runtime.routing import build_assignment
from repro.sim.costmodel import BASELINE_STACK, WEAVER_STACK
from repro.sim.experiment import DeploymentSpec, run_table2, singleton_placement


def test_serialization_vs_transport_decomposition(benchmark, boutique_mix):
    """Which half of the baseline's cost is payload format, which is HTTP?"""
    hybrid_serde = replace(  # custom transport, but tagged payloads
        WEAVER_STACK,
        name="custom-tcp+tagged",
        codec="tagged",
        ser_cpu_s_per_byte=BASELINE_STACK.ser_cpu_s_per_byte,
    )
    hybrid_transport = replace(  # HTTP transport, but compact payloads
        BASELINE_STACK,
        name="http+compact",
        codec="compact",
        ser_cpu_s_per_byte=WEAVER_STACK.ser_cpu_s_per_byte,
        rpc_fixed_cpu_s=BASELINE_STACK.rpc_fixed_cpu_s,
    )
    specs = [
        DeploymentSpec("prototype", WEAVER_STACK, singleton_placement()),
        DeploymentSpec("custom-tcp+tagged", hybrid_serde, singleton_placement()),
        DeploymentSpec("http+compact", hybrid_transport, singleton_placement()),
        DeploymentSpec("baseline", BASELINE_STACK, singleton_placement()),
    ]

    def run():
        return run_table2(
            boutique_mix, qps=10_000, sim_qps=600, duration_s=10, warmup_s=2, specs=specs
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "stack": label,
            "cores": r.average_cores,
            "median_ms": r.median_latency_ms,
        }
        for label, r in reports.items()
    ]
    print_table(
        "Ablation: serialization vs transport contributions",
        rows,
        ["stack", "cores", "median_ms"],
    )
    proto = reports["prototype"].average_cores
    serde_only = reports["custom-tcp+tagged"].average_cores
    transport_only = reports["http+compact"].average_cores
    baseline = reports["baseline"].average_cores
    serde_share = (serde_only - proto) / max(1e-9, baseline - proto)
    print(
        f"serialization accounts for ~{serde_share:.0%} of the baseline's extra cores "
        "(the paper attributes 'most' of the benefit to serialization)"
    )
    # Both hybrids sit between prototype and baseline; serde dominates.
    assert proto <= serde_only <= baseline + 1
    assert proto <= transport_only <= baseline + 1
    assert serde_only >= transport_only


def test_compression_ablation(benchmark, boutique_mix):
    """Bytes saved by wire compression on real recorded payload sizes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import asyncio

    from repro.boutique import ALL_COMPONENTS, Frontend
    from repro.boutique.types import HomePage
    from repro.codegen.schema import schema_of
    from repro.serde import codec_by_name
    from repro.sim.profile import recording_app

    async def capture():
        app = await recording_app(ALL_COMPONENTS)
        home = await app.get(Frontend).home("zip-user", "USD")
        await app.shutdown()
        return home

    home = asyncio.run(capture())
    rows = []
    for codec_name in ("compact", "tagged", "json"):
        data = codec_by_name(codec_name).encode(schema_of(HomePage), home)
        squeezed = zlib.compress(data, level=1)
        rows.append(
            {
                "codec": codec_name,
                "raw_bytes": len(data),
                "zlib_bytes": len(squeezed),
                "saved": 1 - len(squeezed) / len(data),
            }
        )
    print_table(
        "Ablation: wire compression of the home-page response",
        rows,
        ["codec", "raw_bytes", "zlib_bytes", "saved"],
    )
    # Self-describing formats compress best (their redundancy is the tags);
    # even the compact format has textual redundancy worth > 25%.
    by = {r["codec"]: r for r in rows}
    assert by["json"]["saved"] > by["compact"]["saved"]
    assert by["compact"]["saved"] > 0.25


@pytest.mark.parametrize("vnodes", [16, 40, 160, 320])
def test_vnode_granularity(benchmark, vnodes):
    """Consistent-hash balance improves (and assignments grow) with vnodes."""
    replicas = [f"r{i}" for i in range(8)]

    def build():
        return build_assignment("c", replicas, generation=1, vnodes=vnodes)

    assignment = benchmark(build)

    import collections

    counts = collections.Counter(
        assignment.replica_for(f"key-{i}") for i in range(20_000)
    )
    skew = max(counts.values()) / min(counts.values())
    benchmark.extra_info["skew"] = round(skew, 3)
    benchmark.extra_info["points"] = len(assignment.points)
    # Even the coarsest setting keeps every replica in rotation.
    assert len(counts) == len(replicas)
    if vnodes >= 160:
        assert skew < 1.8
