"""E12 — automated fault-tolerance testing (§5.3).

    "With our proposal, it is trivial to run end-to-end tests ... This
    opens the door to automated fault tolerance testing, akin to chaos
    testing."

The whole 11-component boutique deploys inside this benchmark process,
replicas are killed while orders flow, and the report quantifies
availability — the test the paper says microservice teams rarely manage
to write.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey

ADDRESS = Address("1 Main", "Springfield", "IL", "US", 62701)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


def test_chaos_availability(benchmark):
    async def scenario():
        config = AppConfig(
            name="chaos",
            replicas={
                "repro.boutique.frontend.Frontend": 2,
                "repro.boutique.catalog.ProductCatalog": 2,
                "repro.boutique.currency.Currency": 2,
            },
        )
        app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
        monkey = ChaosMonkey(app, seed=42)
        fe = app.get(Frontend)
        counter = {"n": 0}

        async def workload():
            counter["n"] += 1
            user = f"chaos-{counter['n']}"
            home = await fe.home(user, "USD")
            assert home.products

        report = await monkey.rampage(workload, requests=60, kill_every=12, settle_s=0.15)
        await app.shutdown()
        return report

    report = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    print_table(
        "E12: availability under chaos (replica kills during load)",
        [
            {"metric": "requests", "value": report.requests_attempted},
            {"metric": "succeeded", "value": report.requests_succeeded},
            {"metric": "replicas killed", "value": len(report.kills)},
            {"metric": "success rate", "value": f"{report.success_rate:.1%}"},
            {"metric": "errors", "value": str(report.errors) or "none"},
        ],
        ["metric", "value"],
    )
    assert len(report.kills) >= 4
    assert report.success_rate >= 0.9
