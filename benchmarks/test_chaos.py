"""E12 — automated fault-tolerance testing (§5.3).

    "With our proposal, it is trivial to run end-to-end tests ... This
    opens the door to automated fault tolerance testing, akin to chaos
    testing."

The whole 11-component boutique deploys inside this benchmark process,
replicas are killed while orders flow, and the report quantifies
availability — the test the paper says microservice teams rarely manage
to write.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey

ADDRESS = Address("1 Main", "Springfield", "IL", "US", 62701)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


def test_chaos_availability(benchmark):
    async def scenario():
        config = AppConfig(
            name="chaos",
            replicas={
                "repro.boutique.frontend.Frontend": 2,
                "repro.boutique.catalog.ProductCatalog": 2,
                "repro.boutique.currency.Currency": 2,
            },
        )
        app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
        monkey = ChaosMonkey(app, seed=42)
        fe = app.get(Frontend)
        counter = {"n": 0}

        async def workload():
            counter["n"] += 1
            user = f"chaos-{counter['n']}"
            home = await fe.home(user, "USD")
            assert home.products

        report = await monkey.rampage(workload, requests=60, kill_every=12, settle_s=0.15)
        await app.shutdown()
        return report

    report = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    print_table(
        "E12: availability under chaos (replica kills during load)",
        [
            {"metric": "requests", "value": report.requests_attempted},
            {"metric": "succeeded", "value": report.requests_succeeded},
            {"metric": "replicas killed", "value": len(report.kills)},
            {"metric": "success rate", "value": f"{report.success_rate:.1%}"},
            {"metric": "errors", "value": str(report.errors) or "none"},
        ],
        ["metric", "value"],
    )
    assert len(report.kills) >= 4
    assert report.success_rate >= 0.9


def test_overload_shedding_availability(benchmark):
    """E13 — load shedding under 2x overload (simulated cluster).

    One core of 10ms-per-request work offered 200 qps with a 100ms
    end-to-end deadline: unbounded queues turn the overload into
    near-universal deadline misses, while a bounded pod queue (the
    ``max_inflight`` admission control of the real runtime) sheds the
    excess and keeps admitted requests inside their deadline.
    """
    from repro.sim.cluster import build_deployment
    from repro.sim.costmodel import StackCosts
    from repro.sim.engine import Simulator
    from repro.sim.profile import CallNode
    from repro.sim.workload import RequestType, WorkloadMix, run_load

    costs = StackCosts(
        name="bench",
        codec="compact",
        rpc_fixed_cpu_s=0.0,
        ser_cpu_s_per_byte=0.0,
        protocol_overhead_bytes=0,
        network_latency_s=0.0001,
        bandwidth_bytes_per_s=1e12,
    )
    tree = CallNode(
        "<root>", "req", children=[CallNode("Svc", "handle", self_cpu_s=0.01)]
    )
    mix = WorkloadMix([RequestType("req", 1.0, tree)])

    def drive(shed_queue_limit: int):
        sim = Simulator()
        deployment = build_deployment(sim, [("Svc",)], costs)
        deployment.shed_queue_limit = shed_queue_limit
        deployment.deadline_s = 0.1
        return run_load(
            deployment, mix, qps=200, duration_s=2.0, arrivals="uniform", seed=1
        )

    def scenario():
        return drive(shed_queue_limit=4), drive(shed_queue_limit=0)

    shedding, queueing = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "E13: availability at 2x overload (100ms deadline, 1 core)",
        [
            {
                "policy": "shed (queue<=4)",
                "issued": shedding.issued,
                "ok": shedding.completed,
                "shed": shedding.shed,
                "missed deadline": shedding.deadline_misses,
                "success": f"{shedding.success_rate:.1%}",
            },
            {
                "policy": "queue unbounded",
                "issued": queueing.issued,
                "ok": queueing.completed,
                "shed": queueing.shed,
                "missed deadline": queueing.deadline_misses,
                "success": f"{queueing.success_rate:.1%}",
            },
        ],
        ["policy", "issued", "ok", "shed", "missed deadline", "success"],
    )
    assert shedding.completed > queueing.completed
    assert shedding.success_rate > 0.35
