"""E9 — affinity routing (§5.2).

    "consider an in-memory cache component ... The cache hit rate and
    overall performance increase when requests for the same key are routed
    to the same cache replica."

A cache component replicated N ways, driven with a Zipf-ish key
distribution: sliced (affinity) routing vs random spraying.  Also
benchmarks assignment construction and lookup, and verifies minimal
movement on rebalance.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.runtime.routing import build_assignment, moved_fraction

REPLICAS = [f"tcp://10.0.0.{i}:9000" for i in range(1, 6)]


def zipf_keys(n: int, universe: int = 500, seed: int = 0) -> list[str]:
    rng = random.Random(seed)
    weights = [1 / (rank + 1) for rank in range(universe)]
    return [f"key-{rng.choices(range(universe), weights=weights)[0]}" for _ in range(n)]


class ReplicaCache:
    """Stand-in for the paper's cache-over-storage component replica."""

    def __init__(self, capacity: int = 60):
        self.capacity = capacity
        self.entries: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> None:
        if key in self.entries:
            self.hits += 1
            return
        self.misses += 1
        if len(self.entries) >= self.capacity:
            self.entries.pop(next(iter(self.entries)))
        self.entries[key] = "value"


def drive(route) -> float:
    caches = {r: ReplicaCache() for r in REPLICAS}
    for key in zipf_keys(20_000):
        caches[route(key)].get(key)
    hits = sum(c.hits for c in caches.values())
    total = hits + sum(c.misses for c in caches.values())
    return hits / total


def test_affinity_vs_random_hit_rate(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assignment = build_assignment("cache", REPLICAS, generation=1)
    rng = random.Random(1)

    routed_rate = drive(assignment.replica_for)
    random_rate = drive(lambda key: rng.choice(REPLICAS))

    print_table(
        "E9: cache hit rate, affinity vs random routing",
        [
            {"routing": "affinity (sliced)", "hit_rate": routed_rate},
            {"routing": "random", "hit_rate": random_rate},
            {"routing": "improvement", "hit_rate": routed_rate / random_rate},
        ],
        ["routing", "hit_rate"],
    )
    # Slicer's observation: affinity routing materially raises hit rate.
    assert routed_rate > random_rate * 1.15


def test_rebalance_movement(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Adding one replica moves ~1/n of the key space, not all of it."""
    rows = []
    for n in (2, 4, 8, 16):
        old = build_assignment("cache", [f"r{i}" for i in range(n)], generation=1)
        new = build_assignment("cache", [f"r{i}" for i in range(n + 1)], generation=2)
        moved = moved_fraction(old, new, samples=4000)
        rows.append({"replicas": f"{n}->{n+1}", "moved_fraction": moved, "ideal": 1 / (n + 1)})
    print_table("E9: key movement on scale-up", rows, ["replicas", "moved_fraction", "ideal"])
    for row in rows:
        assert row["moved_fraction"] < 2.5 * row["ideal"]


def test_assignment_build(benchmark):
    benchmark(build_assignment, "cache", REPLICAS, 1)


def test_assignment_lookup(benchmark):
    assignment = build_assignment("cache", REPLICAS, generation=1)
    keys = zipf_keys(1000)

    def lookups():
        for key in keys:
            assignment.replica_for(key)

    benchmark(lookups)


def test_end_to_end_routed_component(benchmark):
    """Live affinity through the real runtime: CartStore replicated x4."""
    import asyncio

    from repro.boutique import ALL_COMPONENTS, Cart, CartItem
    from repro.core.config import AppConfig
    from repro.runtime.deployers.multi import deploy_multiprocess

    async def scenario() -> int:
        config = AppConfig(
            name="routed",
            replicas={"repro.boutique.cartstore.CartStore": 4},
        )
        app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
        cart = app.get(Cart)
        for i in range(40):
            await cart.add_item(f"user-{i}", CartItem("OLJCESPC7Z", 1))
        found = 0
        for i in range(40):
            if await cart.get_cart(f"user-{i}"):
                found += 1
        await app.shutdown()
        return found

    found = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    assert found == 40  # every key found its writer's replica
