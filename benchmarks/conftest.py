"""Shared benchmark fixtures.

Benchmarks regenerate the paper's evaluation artifacts (see the experiment
index in DESIGN.md).  Heavyweight pipelines (cluster simulations) run once
per session via ``benchmark.pedantic(..., rounds=1)``; microbenchmarks
(serde, transport) use normal pytest-benchmark statistics.

Each experiment prints its table to stdout so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
rows next to the timing stats; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.sim.experiment import record_boutique_mix
from repro.sim.workload import WorkloadMix


@pytest.fixture(scope="session", autouse=True)
def _sweep_state_scratch():
    """Chaos benchmarks kill deployments mid-flight; reap the WAL scratch
    dirs (``repro-state-*`` in tempdir) they orphan, and only those that
    appeared during this session."""
    import glob
    import shutil
    import tempfile

    pattern = os.path.join(tempfile.gettempdir(), "repro-state-*")
    preexisting = set(glob.glob(pattern))
    yield
    for path in set(glob.glob(pattern)) - preexisting:
        shutil.rmtree(path, ignore_errors=True)


@pytest.fixture(scope="session")
def boutique_mix() -> WorkloadMix:
    """The recorded Locust mix, shared by every simulation benchmark."""
    return asyncio.run(record_boutique_mix(repeats=3))


#: Experiment tables are also appended here, because plain
#: ``pytest benchmarks/ --benchmark-only`` captures stdout; the file keeps
#: the rows inspectable without -s.  Truncated at session start.
TABLES_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_tables.txt")
_tables_reset = False


def print_table(title: str, rows: list[dict], order: list[str]) -> None:
    lines = [f"\n=== {title} ==="]
    header = " | ".join(f"{k:>14s}" for k in order)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(" | ".join(f"{_fmt(row.get(k, '')):>14s}" for k in order))
    text = "\n".join(lines)
    print(text)
    global _tables_reset
    mode = "a" if _tables_reset else "w"
    _tables_reset = True
    with open(TABLES_PATH, mode, encoding="utf-8") as f:
        f.write(text + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)
