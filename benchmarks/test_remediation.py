"""E20 — closed-loop remediation: recovery speedup and guardrail ceilings.

The control-plane gate for the remediation controller.  Two scenarios:

**Rampage** — a replicated echo component takes paced load while replicas
are *silently* killed.  Breakers and retries are disabled on both sides,
so the only healer is the control plane.  With ``remediation: off`` the
manager's sweep repairs at ``dead_after_s`` (the conservative,
authoritative signal); with ``remediation: on`` the controller restarts
replicas at *suspect* — the whole point of closing the loop.  Gate: the
controller recovers at least 1.5x faster **or** lifts the chaos success
rate at least 1.2x.

**Storm** — flapping injected latency (``metric_storm``) makes the p99
anomaly detector fire, resolve, and fire again in a loop.  An unguarded
controller would translate every firing into an action; the gate proves
the rolling-minute budget caps *executed* actions at the configured
ceiling, that the suppressions are journaled (auditable, not silent), and
that the replica count never oscillates — it only ever steps up, by at
most the budget.

Results land in ``BENCH_10.json`` at the repo root (both scenarios merge
into one file).  ``REPRO_BENCH_QUICK=1`` shrinks the run and relaxes the
rampage gate to a direction check; the storm ceilings are exact at any
size.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.component import Component
from repro.core.config import AppConfig, AutoscaleConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey, ChaosReport, metric_storm

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 1 if QUICK else 2
REQUESTS = 400 if QUICK else 900
KILL_EVERY = 150 if QUICK else 300
PACE_S = 0.004
#: Detection thresholds: the controller acts at SUSPECT, the baseline
#: sweep at DEAD — the spread is the speedup being measured (in-proc
#: heartbeats tick every 0.2s, the sweep loop every 0.5s).
SUSPECT_AFTER_S = 0.3 if QUICK else 0.4
DEAD_AFTER_S = 1.2 if QUICK else 2.0
TELEMETRY_TICK_S = 0.25
RECOVERY_STREAK = 8 if QUICK else 20
MIN_RECOVERY_RATIO = 1.15 if QUICK else 1.5
MIN_SUCCESS_RATIO = 1.02 if QUICK else 1.2

#: Storm scenario: executed-action budget and run shape.
STORM_BUDGET = 3
STORM_DURATION_S = 6.0 if QUICK else 12.0
STORM_HIGH_DELAY_S = 0.25

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_10.json")


class Echo(Component):
    async def echo(self, value: int) -> int: ...


class EchoImpl:
    async def echo(self, value: int) -> int:
        return value


def _registry() -> Registry:
    registry = Registry()
    registry.register(Echo, EchoImpl)
    return registry


def _merge_results(section: str, payload: dict) -> None:
    """Both scenarios write one BENCH_10.json, whichever runs first."""
    results: dict = {"benchmark": "remediation", "quick": QUICK}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH, "r", encoding="utf-8") as f:
                results = json.load(f)
        except (OSError, ValueError):
            pass
    results[section] = payload
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)


# -- scenario 1: silent-kill rampage, controller on vs off --------------------


def _recovery_s(report: ChaosReport, end_t: float) -> float:
    """Mean seconds-to-steady after each kill (floor: time left black)."""
    samples = []
    for kill_t in report.kill_times:
        r = report.time_to_recover(kill_t, consecutive=RECOVERY_STREAK)
        samples.append(r if r is not None else max(0.0, end_t - kill_t))
    return sum(samples) / len(samples) if samples else 0.0


async def _rampage(remediation: str, seed: int) -> dict:
    config = AppConfig(
        name="rem-rampage",
        replicas={Echo: 3},
        max_retries=0,
        breakers_enabled=False,
        drain_deadline_s=0.0,
        remediation=remediation,
        remediation_cooldown_s=1.0,
        remediation_max_actions_per_min=30,
        telemetry_tick_s=TELEMETRY_TICK_S,
    )
    app = await deploy_multiprocess(config, registry=_registry())
    app.manager.health._suspect_after_s = SUSPECT_AFTER_S
    app.manager.health._dead_after_s = DEAD_AFTER_S
    monkey = ChaosMonkey(app, seed=seed)
    echo = app.get(Echo)
    counter = {"n": 0}

    async def workload():
        counter["n"] += 1
        assert await echo.echo(counter["n"]) == counter["n"]
        await asyncio.sleep(PACE_S)  # paced load: outages span wall time

    report = await monkey.rampage(
        workload, requests=REQUESTS, kill_every=KILL_EVERY, silent_kills=True
    )
    end_t = time.monotonic()
    wire = app.manager.remediation.to_wire()
    await app.shutdown()
    return {
        "mode": f"remediation-{remediation}",
        "requests": report.requests_attempted,
        "succeeded": report.requests_succeeded,
        "success_rate": report.success_rate,
        "kills": len(report.kills),
        "recovery_s": _recovery_s(report, end_t),
        "actions_fired": wire["counts"]["fired"],
        "errors": dict(report.errors),
    }


def _best(runs: list[dict]) -> dict:
    """Best-of-N: noise (CI stalls, GC pauses) only ever hurts a run."""
    return max(runs, key=lambda r: (r["success_rate"], -r["recovery_s"]))


def test_remediation_recovery_gate(benchmark):
    def run_all() -> tuple[list[dict], list[dict]]:
        on_runs, off_runs = [], []
        # Interleaved so machine-wide slow periods tax both modes equally.
        for i in range(REPEATS):
            on_runs.append(asyncio.run(_rampage("on", seed=20 + i)))
            off_runs.append(asyncio.run(_rampage("off", seed=20 + i)))
        return on_runs, off_runs

    on_runs, off_runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    on, off = _best(on_runs), _best(off_runs)

    recovery_ratio = (
        off["recovery_s"] / on["recovery_s"] if on["recovery_s"] else float("inf")
    )
    success_ratio = (
        on["success_rate"] / off["success_rate"] if off["success_rate"] else float("inf")
    )

    _merge_results(
        "rampage",
        {
            "repeats": REPEATS,
            "requests": REQUESTS,
            "detection": {
                "suspect_after_s": SUSPECT_AFTER_S,
                "dead_after_s": DEAD_AFTER_S,
                "telemetry_tick_s": TELEMETRY_TICK_S,
            },
            "on": on_runs,
            "off": off_runs,
            "gate": {
                "min_recovery_ratio": MIN_RECOVERY_RATIO,
                "recovery_ratio": recovery_ratio,
                "min_success_ratio": MIN_SUCCESS_RATIO,
                "success_ratio": success_ratio,
            },
        },
    )

    print_table(
        "E20 — recovery from silent kills, controller on vs off",
        [on, off],
        ["mode", "requests", "succeeded", "success_rate", "kills",
         "recovery_s", "actions_fired"],
    )
    print_table(
        "E20 rampage gate (either ratio may carry it)",
        [
            {"ratio": "recovery (off/on)", "value": recovery_ratio,
             "required": MIN_RECOVERY_RATIO},
            {"ratio": "success (on/off)", "value": success_ratio,
             "required": MIN_SUCCESS_RATIO},
        ],
        ["ratio", "value", "required"],
    )

    assert on["kills"] >= 2 and off["kills"] >= 2
    assert on["actions_fired"] >= 1, "controller-on run never acted"
    assert off["actions_fired"] == 0, "controller-off run acted"
    assert (
        recovery_ratio >= MIN_RECOVERY_RATIO or success_ratio >= MIN_SUCCESS_RATIO
    ), (
        f"controller recovers only {recovery_ratio:.2f}x faster "
        f"(on={on['recovery_s']:.3f}s off={off['recovery_s']:.3f}s) and lifts "
        f"success only {success_ratio:.2f}x "
        f"(on={on['success_rate']:.3f} off={off['success_rate']:.3f}); "
        f"gates: {MIN_RECOVERY_RATIO}x recovery or {MIN_SUCCESS_RATIO}x success"
    )


# -- scenario 2: metric storm vs the guardrails -------------------------------


async def _storm() -> dict:
    config = AppConfig(
        name="rem-storm",
        replicas={Echo: 1},
        remediation="on",
        remediation_cooldown_s=0.5,
        remediation_max_actions_per_min=STORM_BUDGET,
        telemetry_tick_s=TELEMETRY_TICK_S,
        autoscale=AutoscaleConfig(max_replicas=8, scale_down_stabilization_s=0.0),
    )
    app = await deploy_multiprocess(config, registry=_registry())
    echo = app.get(Echo)
    stop = asyncio.Event()

    async def load() -> None:
        i = 0
        while not stop.is_set():
            i += 1
            await echo.echo(i)
            await asyncio.sleep(0.01)

    driver = asyncio.ensure_future(load())
    group = next(iter(app.manager.group_states().values()))
    target_samples = [group.target_replicas]
    try:
        # Warm the client_p99_ms detector (min_samples healthy ticks).
        board = app.manager.signals
        for _ in range(200):
            dets = [
                d
                for (series, _), d in board._detectors.items()
                if series == "client_p99_ms"
            ]
            if dets and all(d.samples >= d.min_samples for d in dets):
                break
            await asyncio.sleep(0.1)
        else:
            raise AssertionError("client_p99_ms detector never warmed up")
        assert not board.firing(), "signals firing before the storm"
        initial_target = group.target_replicas

        storm = metric_storm(
            app, high_delay_s=STORM_HIGH_DELAY_S, period_s=2.0, high_s=1.0
        )
        deadline = time.monotonic() + STORM_DURATION_S
        while time.monotonic() < deadline:
            target_samples.append(group.target_replicas)
            await asyncio.sleep(0.1)
        storm.revert()
    finally:
        stop.set()
        driver.cancel()
        wire = app.manager.remediation.to_wire()
        await app.shutdown()

    verdicts: dict[str, int] = {}
    for entry in wire["journal"]:
        verdicts[entry["verdict"]] = verdicts.get(entry["verdict"], 0) + 1
    return {
        "budget": STORM_BUDGET,
        "duration_s": STORM_DURATION_S,
        "initial_target": initial_target,
        "final_target": group.target_replicas,
        "target_samples": target_samples,
        "fired": wire["counts"]["fired"],
        "suppressed": wire["counts"]["suppressed"],
        "verdicts": verdicts,
        "budget_available_after": wire["budget"]["available"],
    }


def test_remediation_guardrail_gate(benchmark):
    result = benchmark.pedantic(
        lambda: asyncio.run(_storm()), rounds=1, iterations=1
    )

    _merge_results("storm", result)

    print_table(
        "E20 — metric storm vs the action budget",
        [result],
        ["budget", "duration_s", "fired", "suppressed",
         "initial_target", "final_target"],
    )

    # The storm produced decisions — and far more of them than the budget
    # allowed through.
    assert result["fired"] >= 1, "storm never triggered an action"
    assert result["suppressed"] > 0, "guardrails never engaged"
    assert result["verdicts"].get("suppressed:budget", 0) > 0, (
        f"no budget suppressions journaled: {result['verdicts']}"
    )
    # Executed actions capped at the rolling-minute budget.
    assert result["fired"] <= STORM_BUDGET, (
        f"{result['fired']} actions fired, budget is {STORM_BUDGET}"
    )
    # Zero oscillation: capacity only ever steps up, by at most the budget.
    samples = result["target_samples"]
    assert all(b >= a for a, b in zip(samples, samples[1:])), (
        "replica target oscillated during the storm"
    )
    assert result["final_target"] - result["initial_target"] <= STORM_BUDGET
