"""E10 — atomic rollouts vs rolling updates (§4.4).

    "[78] shows that the majority of update failures are caused by these
    cross-version interactions."

Two experiments:

1. *Exposure*: fraction of requests that traverse mixed versions during a
   rolling update of the 11-service application, against the structural
   zero of blue/green (per-request pinning).
2. *Failure injection*: make the version skew semantically meaningful
   (a field reorder between schema versions — the classic tagged-format
   upgrade bug) and count how many crossings corrupt data.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from benchmarks.conftest import print_table
from repro.codegen.schema import schema_of, clear_cache
from repro.core.config import RolloutConfig
from repro.runtime.rollout import BlueGreenRollout, RollingUpdateModel
from repro.serde.tagged import TaggedCodec


def test_cross_version_exposure(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = RollingUpdateModel(num_services=11, replicas_per_service=3, seed=1)
    rows = []
    for upgraded in (0.1, 0.25, 0.5, 0.75, 0.9):
        rows.append(
            {
                "upgraded": upgraded,
                "rolling_crossings": model.simulate(upgraded, requests=4000),
                "blue_green_crossings": 0.0,
            }
        )
    print_table(
        "E10: fraction of requests crossing versions",
        rows,
        ["upgraded", "rolling_crossings", "blue_green_crossings"],
    )
    total = model.total_exposure(steps=20, requests_per_step=2000)
    print(f"mean exposure over a full rolling update: {total:.1%} of requests")
    assert rows[2]["rolling_crossings"] > 0.9  # 11 services at 50%: near-certain
    assert total > 0.5


@dataclass
class OrderV1:
    user_id: str
    total_cents: int


@dataclass
class OrderV1Reordered:
    """The 'new version' after a careless refactor swapped field order —
    under a tagged format this decodes without any error."""

    total_cents: int
    user_id: str


def test_version_skew_corruption_vs_handshake(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    codec = TaggedCodec()
    clear_cache()
    old_schema = schema_of(OrderV1)
    new_schema = schema_of(OrderV1Reordered)

    model = RollingUpdateModel(num_services=2, replicas_per_service=4, seed=2)
    paths = model.sample_paths(upgraded=0.5, requests=2000)

    silent_corruptions = 0
    loud_failures = 0
    crossings = 0
    for sender_new, receiver_new in paths:
        if sender_new == receiver_new:
            continue  # same version: always fine
        crossings += 1
        message = OrderV1Reordered(4200, "user-1") if sender_new else OrderV1("user-1", 4200)
        data = codec.encode(new_schema if sender_new else old_schema, message)
        try:
            decoded = codec.decode(old_schema if sender_new else new_schema, data)
            fields = (
                (decoded.user_id, decoded.total_cents)
                if isinstance(decoded, OrderV1)
                else (decoded.user_id, decoded.total_cents)
            )
            if fields != ("user-1", 4200):
                silent_corruptions += 1
        except Exception:
            loud_failures += 1

    print_table(
        "E10: injected schema skew during rolling update (2-service chain)",
        [
            {
                "outcome": "cross-version requests",
                "count": crossings,
            },
            {"outcome": "silent corruption or error", "count": silent_corruptions + loud_failures},
            {"outcome": "under atomic rollout", "count": 0},
        ],
        ["outcome", "count"],
    )
    # Every crossing is affected; atomic rollout makes crossings impossible
    # (the handshake rejects them before any payload flows).
    assert crossings > 0
    assert silent_corruptions + loud_failures == crossings


def test_blue_green_traffic_shift(benchmark):
    """Benchmark the rollout machinery itself: pin + advance over 10 steps."""

    class App:
        def __init__(self, version):
            self.version = version

    def rollout_cycle():
        r = BlueGreenRollout(App("v1"), App("v2"), config=RolloutConfig(steps=10), seed=3)
        greens = 0
        while not r.done:
            r.advance()
            for _ in range(100):
                if r.pin().version == "v2":
                    greens += 1
        return greens

    greens = benchmark(rollout_cycle)
    assert 400 < greens < 700  # ~55% of 1000 under a linear ramp
