"""E1 + E2 — Table 2: QPS, average cores, median latency (§6.1).

Paper's numbers (GKE, Go, 10 000 QPS):

    metric            prototype   baseline
    QPS                  10 000     10 000
    avg cores                28         78      (2.8x)
    median latency      2.66 ms    5.47 ms      (2.1x)

    + co-location (all 11 components in one process): 9 cores, 0.38 ms.

Ours (simulated cluster, measured Python data-plane costs, recorded call
trees): absolute values are Python-speed; the reproduction target is the
*shape* — prototype beats baseline on both axes, co-location compounds the
win by an additional large factor.  See EXPERIMENTS.md for the mapping.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.sim.experiment import run_table2, table2_specs

QPS = 10_000
SIM_QPS = 1_000
DURATION_S = 12.0
WARMUP_S = 3.0


def run_rows(mix):
    reports = run_table2(
        mix, qps=QPS, sim_qps=SIM_QPS, duration_s=DURATION_S, warmup_s=WARMUP_S
    )
    rows = []
    for label in ("prototype", "baseline", "prototype-colocated"):
        r = reports[label]
        rows.append(
            {
                "deployment": label,
                "qps": r.qps,
                "avg_cores": r.average_cores,
                "median_ms": r.median_latency_ms,
                "p95_ms": r.p95_latency_ms,
            }
        )
    return reports, rows


def test_table2(benchmark, boutique_mix):
    reports, rows = benchmark.pedantic(
        lambda: run_rows(boutique_mix), rounds=1, iterations=1
    )
    print_table(
        "Table 2 (E1/E2): Online Boutique at 10k QPS",
        rows,
        ["deployment", "qps", "avg_cores", "median_ms", "p95_ms"],
    )
    baseline = reports["baseline"]
    prototype = reports["prototype"]
    colocated = reports["prototype-colocated"]
    print(
        f"cores:   baseline/prototype = {baseline.average_cores / prototype.average_cores:.2f}x (paper 2.8x); "
        f"baseline/colocated = {baseline.average_cores / colocated.average_cores:.2f}x (paper 8.7x)"
    )
    print(
        f"latency: baseline/prototype = {baseline.median_latency_ms / prototype.median_latency_ms:.2f}x (paper 2.1x); "
        f"baseline/colocated = {baseline.median_latency_ms / colocated.median_latency_ms:.2f}x (paper 14.4x)"
    )

    # The paper's qualitative claims must hold.
    assert prototype.average_cores < baseline.average_cores
    assert prototype.median_latency_ms < baseline.median_latency_ms
    assert colocated.average_cores < prototype.average_cores
    assert colocated.median_latency_ms < prototype.median_latency_ms


def test_table2_colocated(benchmark, boutique_mix):
    """E2 in isolation: the §6.1 co-location experiment."""
    spec = table2_specs()[2]
    report = benchmark.pedantic(
        lambda: run_table2(
            boutique_mix,
            qps=QPS,
            sim_qps=SIM_QPS,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
            specs=[spec],
        )["prototype-colocated"],
        rounds=1,
        iterations=1,
    )
    print(
        f"\nco-located: {report.average_cores:.0f} cores, "
        f"{report.median_latency_ms:.2f} ms median (paper: 9 cores, 0.38 ms)"
    )
    # Replica count collapses to a single autoscaled group.
    assert len(report.replica_counts) == 1
