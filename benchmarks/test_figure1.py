"""E4 — Figure 1 as an executable artifact.

The paper's figure: an application with components A, B, C where A and B
are co-located in one OS process (their calls are plain procedure calls)
and C is replicated across two machines (calls to C are RPCs).  This
benchmark deploys exactly that topology and measures the local/remote
asymmetry the figure illustrates.
"""

from __future__ import annotations

import asyncio
import time

import pytest

import repro
from benchmarks.conftest import print_table
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess


class A(repro.Component):
    async def local_then_remote(self, n: int) -> str: ...


class B(repro.Component):
    async def fast_local(self, n: int) -> int: ...


class C(repro.Component):
    async def remote_work(self, n: int) -> int: ...


class AImpl:
    async def init(self, ctx) -> None:
        self.b = ctx.get(B)
        self.c = ctx.get(C)

    async def local_then_remote(self, n: int) -> str:
        local = await self.b.fast_local(n)
        remote = await self.c.remote_work(n)
        return f"local={local} remote={remote}"


class BImpl:
    async def fast_local(self, n: int) -> int:
        return n * 2


class CImpl:
    async def remote_work(self, n: int) -> int:
        return n * 3


def figure1_registry() -> Registry:
    registry = Registry()
    registry.register(A, AImpl)
    registry.register(B, BImpl)
    registry.register(C, CImpl)
    return registry


def test_figure1_topology(benchmark):
    async def scenario():
        registry = figure1_registry()
        config = AppConfig(
            name="fig1",
            colocate=((A, B),),  # A and B share a process
            replicas={C: 2},  # C is replicated "across two machines"
        )
        app = await deploy_multiprocess(config, registry=registry, mode="inproc")

        # Topology assertions straight from the figure.
        assert app.manager.total_replicas() == 3  # one (A+B) process, C x2
        a = app.get(A)
        assert await a.local_then_remote(7) == "local=14 remote=21"

        # A's proclet hosts B too: the B call was local, the C call remote.
        from repro.core.component import component_name

        ab_proclet = next(
            e.proclet
            for e in app.envelopes.values()
            if component_name(A) in e.proclet.hosted
        )
        assert component_name(B) in ab_proclet.hosted
        assert component_name(C) not in ab_proclet.hosted

        edges = {
            (e.caller.rsplit(".", 1)[-1], e.callee.rsplit(".", 1)[-1]): e
            for e in ab_proclet.call_graph.edges()
        }
        assert edges[("A", "B")].local_calls == 1
        assert edges[("A", "C")].remote_calls == 1

        # Measure the asymmetry the figure depicts.
        b_stub, c_stub = ab_proclet.get(B), ab_proclet.get(C)
        start = time.perf_counter()
        for i in range(200):
            await b_stub.fast_local(i)
        local_us = (time.perf_counter() - start) / 200 * 1e6
        start = time.perf_counter()
        for i in range(200):
            await c_stub.remote_work(i)
        remote_us = (time.perf_counter() - start) / 200 * 1e6

        await app.shutdown()
        return local_us, remote_us

    local_us, remote_us = benchmark.pedantic(
        lambda: asyncio.run(scenario()), rounds=1, iterations=1
    )
    print_table(
        "E4 (Figure 1): local vs remote method call, same component API",
        [
            {"call": "A -> B (co-located)", "mean_us": local_us},
            {"call": "A -> C (RPC, replicated)", "mean_us": remote_us},
            {"call": "remote/local", "mean_us": remote_us / local_us},
        ],
        ["call", "mean_us"],
    )
    assert remote_us > local_us * 3
