"""E14c — multi-core data-plane scaling gate (workers + streaming).

Three questions, answered over real loopback sockets:

1. **Scaling curve** — aggregate echo throughput at 1 / 2 / 4 worker
   loops, many client connections.  The headline target (>=3x at 4
   workers, p99 within 1.5x of single-worker) is only *physically
   reachable* on a free-threaded build with >=4 cores: under the GIL the
   worker threads serialize on the interpreter, and on a 1-core container
   they also serialize on the CPU.  The gate therefore adapts to the
   environment it measures — full target when cores and a free-threaded
   interpreter are both present, a no-collapse floor (workers must not
   *cost* meaningful throughput) otherwise — and records which gate
   applied in ``BENCH_6.json`` so the numbers are never read as more than
   they are.

2. **Streaming interference** — a 10 MB payload streamed over the same
   connection as a stream of small echoes must not monopolize the data
   plane: the bulk outbox lane plus flow-control credits keep small
   frames flushing ahead of queued chunks.  Gate: p99 within 2x of the
   undisturbed p99 where the hardware can parallelize; on a single
   GIL-bound core the p99 is one unavoidable 10MB-assembly pause, so the
   fallback gates the steady-state p50 ratio instead.

3. **c=1 regression** — the adaptive direct write-through must make the
   coalesced path at least match the legacy path for a lone
   request/response stream (the one shape PR 3 lost to the flusher hop).

Results land in ``BENCH_6.json`` at the repo root.  ``REPRO_BENCH_QUICK=1``
shrinks counts and relaxes gates for CI smoke runs (direction, not
magnitude).
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import sys
import sysconfig
import time

from benchmarks.conftest import print_table
from repro.transport.client import ConnectionPool
from repro.transport.server import RPCServer

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 2 if QUICK else 3
WORKER_POINTS = (1, 2, 4)
CONNS_PER_POINT = 8
SCALE_MESSAGES = 4000 if QUICK else 24000
PAYLOAD = b"x" * 128
STREAM_PAYLOAD_MB = 10
SMALLS_DURING_STREAM = 400 if QUICK else 1500
C1_MESSAGES = 400 if QUICK else 3000
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_6.json")


def free_threaded() -> bool:
    if sysconfig.get_config_var("Py_GIL_DISABLED"):
        gil = getattr(sys, "_is_gil_enabled", None)
        return not gil() if gil is not None else True
    return False


CORES = os.cpu_count() or 1
PARALLEL_CAPABLE = CORES >= 4 and free_threaded()
# Full target: the multi-core claim.  Fallback: shared-nothing loops must
# not collapse throughput when the hardware can't parallelize them (thread
# switching + kernel-spread accept overhead stays a small tax).
SCALE_GATE = (2.0 if QUICK else 3.0) if PARALLEL_CAPABLE else 0.6
P99_GATE = 1.5 if PARALLEL_CAPABLE else 3.0
# Interference: the priority lane keeps small frames ahead of queued
# chunks in userspace, so steady-state head-of-line blocking is what this
# gate protects.  On one GIL-bound core the p99 during a 10MB stream is a
# single 10MB-assembly pause (~5-7ms against a ~0.1ms bare-RTT baseline)
# that no queueing discipline can dodge, so the fallback gates the *p50*
# ratio instead — the pre-lane regression showed up there too (p50 ~3ms
# vs ~0.4ms after the lane + 64K chunks).  Full p99 target applies where
# the serving side can actually run in parallel.
INTERFERENCE_GATE = 3.0 if QUICK else 2.0  # p99 ratio, parallel-capable
INTERFERENCE_P50_GATE = 10.0  # p50 ratio, single-core fallback
C1_GATE = 0.9 if QUICK else 1.0


async def _echo(cid, mid, args, trace=(0, 0), deadline_ms=0):
    return args


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _best(runs: list[dict]) -> dict:
    return max(runs, key=lambda r: r["msgs_per_s"])


# -- 1. scaling curve ---------------------------------------------------------


async def _run_scale_point(workers: int, n_msgs: int) -> dict:
    server = RPCServer(_echo, codec="compact", version="bench", workers=workers)
    address = await server.start()
    pools = [
        ConnectionPool(codec="compact", version="bench")
        for _ in range(CONNS_PER_POINT)
    ]
    conns = [await p.get(address) for p in pools]
    per_conn = n_msgs // CONNS_PER_POINT
    latencies: list[float] = []

    async def drive(conn) -> None:
        for i in range(per_conn):
            if i & 7:
                await conn.call(1, 1, PAYLOAD, timeout=30)
            else:
                t0 = time.perf_counter()
                await conn.call(1, 1, PAYLOAD, timeout=30)
                latencies.append(time.perf_counter() - t0)

    # Warm-up: dials, first dispatch, and worker-loop steady state.
    await asyncio.gather(*[c.call(1, 1, PAYLOAD, timeout=30) for c in conns])

    start = time.perf_counter()
    await asyncio.gather(*[drive(c) for c in conns])
    elapsed = time.perf_counter() - start

    stats = {
        "workers": workers,
        "accept_mode": server.accept_mode,
        "connections": CONNS_PER_POINT,
        "messages": per_conn * CONNS_PER_POINT,
        "msgs_per_s": (per_conn * CONNS_PER_POINT) / elapsed,
        "p50_ms": _percentile(latencies, 0.50) * 1000,
        "p99_ms": _percentile(latencies, 0.99) * 1000,
    }
    for pool in pools:
        await pool.close()
    await server.stop()
    return stats


# -- 2. streaming interference ------------------------------------------------


async def _run_interference() -> dict:
    threshold = 256 * 1024
    server = RPCServer(
        _echo, codec="compact", version="bench", stream_threshold=threshold
    )
    address = await server.start()
    pool = ConnectionPool(
        codec="compact", version="bench", stream_threshold=threshold
    )
    conn = await pool.get(address)
    big = b"B" * (STREAM_PAYLOAD_MB * 1024 * 1024)

    async def smalls(n: int, stop_when=None) -> tuple[float, float]:
        lats = []
        for _ in range(n):
            t0 = time.perf_counter()
            await conn.call(1, 1, PAYLOAD, timeout=30)
            lats.append(time.perf_counter() - t0)
            if stop_when is not None and stop_when.done():
                break
        return _percentile(lats, 0.50) * 1000, _percentile(lats, 0.99) * 1000

    await conn.call(1, 1, PAYLOAD, timeout=30)  # warm
    baseline_p50, baseline_p99 = await smalls(SMALLS_DURING_STREAM)

    stream_task = asyncio.ensure_future(conn.call(1, 1, big, timeout=120))
    during_p50, during_p99 = await smalls(
        SMALLS_DURING_STREAM, stop_when=stream_task
    )
    result = await stream_task
    assert result == big, "streamed payload corrupted"

    await pool.close()
    await server.stop()
    return {
        "stream_mb": STREAM_PAYLOAD_MB,
        "baseline_p50_ms": baseline_p50,
        "baseline_p99_ms": baseline_p99,
        "during_stream_p50_ms": during_p50,
        "during_stream_p99_ms": during_p99,
        "p50_ratio": during_p50 / baseline_p50 if baseline_p50 else 1.0,
        "p99_ratio": during_p99 / baseline_p99 if baseline_p99 else 1.0,
        "msgs_per_s": 0.0,  # not ranked by _best
    }


# -- 3. c=1 coalesced vs legacy ----------------------------------------------


async def _run_c1(coalesce: bool, n_msgs: int) -> dict:
    server = RPCServer(_echo, codec="compact", version="bench", coalesce=coalesce)
    address = await server.start()
    pool = ConnectionPool(codec="compact", version="bench", coalesce=coalesce)
    conn = await pool.get(address)
    for _ in range(50):
        await conn.call(1, 1, PAYLOAD, timeout=30)
    start = time.perf_counter()
    for _ in range(n_msgs):
        await conn.call(1, 1, PAYLOAD, timeout=30)
    elapsed = time.perf_counter() - start
    stats = {
        "mode": "coalesced" if coalesce else "legacy",
        "msgs_per_s": n_msgs / elapsed,
        "direct_writes": conn.direct_writes,
        "flushes": conn.flushes,
    }
    await pool.close()
    await server.stop()
    return stats


def _timed(coro_factory) -> dict:
    gc.collect()
    return asyncio.run(coro_factory())


def test_multicore_scaling_gate():
    # 1. scaling curve, interleaved repeats.
    point_runs: dict[int, list[dict]] = {w: [] for w in WORKER_POINTS}
    for _ in range(REPEATS):
        for w in WORKER_POINTS:
            point_runs[w].append(
                _timed(lambda w=w: _run_scale_point(w, SCALE_MESSAGES))
            )
    curve = [_best(point_runs[w]) for w in WORKER_POINTS]
    base = curve[0]
    for row in curve:
        row["scale_vs_1w"] = row["msgs_per_s"] / base["msgs_per_s"]
    scale_at_4 = curve[-1]["scale_vs_1w"]
    p99_ratio_at_4 = curve[-1]["p99_ms"] / base["p99_ms"] if base["p99_ms"] else 1.0

    # 2. streaming interference.  The baseline p50 on a quiet box is the
    # bare RTT and jitters ~2x run to run; repeats + best keep the gate on
    # the queueing discipline rather than on scheduler luck.
    interference_runs = [_timed(_run_interference) for _ in range(REPEATS)]
    interference = min(interference_runs, key=lambda r: r["p50_ratio"])

    # 3. c=1 direct write-through vs legacy.
    legacy_runs, coalesced_runs = [], []
    for _ in range(REPEATS):
        legacy_runs.append(_timed(lambda: _run_c1(False, C1_MESSAGES)))
        coalesced_runs.append(_timed(lambda: _run_c1(True, C1_MESSAGES)))
    c1_legacy = _best(legacy_runs)
    c1_coalesced = _best(coalesced_runs)
    c1_ratio = c1_coalesced["msgs_per_s"] / c1_legacy["msgs_per_s"]

    results = {
        "benchmark": "multicore-scaling",
        "quick": QUICK,
        "environment": {
            "cores": CORES,
            "free_threaded": free_threaded(),
            "parallel_capable": PARALLEL_CAPABLE,
            "python": sys.version.split()[0],
        },
        "scaling": curve,
        "interference": interference,
        "c1": [c1_legacy, c1_coalesced],
        "gate": {
            "target_scale_at_4w": 3.0,
            "applied_scale_at_4w": SCALE_GATE,
            "measured_scale_at_4w": scale_at_4,
            "applied_p99_ratio": P99_GATE,
            "measured_p99_ratio": p99_ratio_at_4,
            "target_interference_p99": 2.0,
            "applied_interference_gate": (
                {"metric": "p99_ratio", "limit": INTERFERENCE_GATE}
                if PARALLEL_CAPABLE
                else {"metric": "p50_ratio", "limit": INTERFERENCE_P50_GATE}
            ),
            "measured_interference_p50": interference["p50_ratio"],
            "measured_interference_p99": interference["p99_ratio"],
            "c1_gate": C1_GATE,
            "measured_c1_ratio": c1_ratio,
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)

    print_table(
        "E14c — multi-core scaling curve "
        f"({CORES} cores, free-threaded={free_threaded()})",
        curve,
        ["workers", "accept_mode", "msgs_per_s", "p50_ms", "p99_ms", "scale_vs_1w"],
    )
    print_table(
        "E14c — streaming interference (10MB stream vs small-RPC latency)",
        [interference],
        [
            "stream_mb", "baseline_p50_ms", "during_stream_p50_ms",
            "p50_ratio", "p99_ratio",
        ],
    )
    print_table(
        "E14c — c=1 lone-stream regression (direct write-through)",
        [c1_legacy, c1_coalesced],
        ["mode", "msgs_per_s", "direct_writes", "flushes"],
    )

    assert scale_at_4 >= SCALE_GATE, (
        f"4-worker aggregate is {scale_at_4:.2f}x the 1-worker throughput, "
        f"below the {SCALE_GATE}x gate for this environment "
        f"(cores={CORES}, free_threaded={free_threaded()})"
    )
    assert p99_ratio_at_4 <= P99_GATE, (
        f"4-worker p99 is {p99_ratio_at_4:.2f}x the 1-worker p99 "
        f"(gate {P99_GATE}x)"
    )
    if PARALLEL_CAPABLE:
        assert interference["p99_ratio"] <= INTERFERENCE_GATE, (
            f"small-RPC p99 rose {interference['p99_ratio']:.2f}x during a "
            f"{STREAM_PAYLOAD_MB}MB stream (gate {INTERFERENCE_GATE}x)"
        )
    else:
        assert interference["p50_ratio"] <= INTERFERENCE_P50_GATE, (
            f"small-RPC p50 rose {interference['p50_ratio']:.2f}x during a "
            f"{STREAM_PAYLOAD_MB}MB stream "
            f"(single-core fallback gate {INTERFERENCE_P50_GATE}x)"
        )
    assert c1_ratio >= C1_GATE, (
        f"c=1 coalesced throughput is {c1_ratio:.2f}x legacy "
        f"(gate {C1_GATE}x) — the direct write-through regressed"
    )
