"""E11 — latency vs offered load: the curve behind Table 2.

Sweeps QPS for both stacks on the simulated cluster with a *fixed* replica
allocation, exposing the queueing knee: the baseline, needing ~2x the CPU
per request, saturates the same hardware at roughly half the load.  (With
autoscaling on — as in Table 2 — the knee turns into the core-count gap.)
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.component import component_name
from repro.boutique import ALL_COMPONENTS
from repro.sim.cluster import build_deployment
from repro.sim.costmodel import BASELINE_STACK, WEAVER_STACK
from repro.sim.engine import Simulator
from repro.sim.experiment import singleton_placement
from repro.sim.workload import run_load

FIXED_REPLICAS = 6  # per service group
SWEEP_QPS = (200, 400, 600, 800)


def sweep(stack, mix):
    series = []
    for qps in SWEEP_QPS:
        sim = Simulator()
        deployment = build_deployment(
            sim, singleton_placement(), stack, initial_replicas=FIXED_REPLICAS
        )
        report = run_load(
            deployment,
            mix,
            qps=qps,
            duration_s=10,
            warmup_s=2,
            autoscale_interval_s=None,
            seed=11,
        )
        series.append(
            {
                "qps": qps,
                "median_ms": report.median_latency_ms,
                "p95_ms": report.p95_latency_ms,
                "busy_cores": report.busy_cores,
            }
        )
    return series


def test_latency_vs_qps(benchmark, boutique_mix):
    def run():
        return sweep(WEAVER_STACK, boutique_mix), sweep(BASELINE_STACK, boutique_mix)

    weaver, baseline = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for w, b in zip(weaver, baseline):
        rows.append(
            {
                "qps": w["qps"],
                "weaver_median_ms": w["median_ms"],
                "baseline_median_ms": b["median_ms"],
                "weaver_busy_cores": w["busy_cores"],
                "baseline_busy_cores": b["busy_cores"],
            }
        )
    print_table(
        f"E11: latency vs QPS at fixed {FIXED_REPLICAS} replicas/service",
        rows,
        [
            "qps",
            "weaver_median_ms",
            "baseline_median_ms",
            "weaver_busy_cores",
            "baseline_busy_cores",
        ],
    )

    # At every load level the prototype is at least as fast and burns
    # fewer cores; the gap widens with load (queueing amplifies CPU cost).
    for w, b in zip(weaver, baseline):
        assert w["median_ms"] <= b["median_ms"] * 1.05
        assert w["busy_cores"] < b["busy_cores"]
    gap_low = baseline[0]["median_ms"] / weaver[0]["median_ms"]
    gap_high = baseline[-1]["median_ms"] / weaver[-1]["median_ms"]
    assert gap_high >= gap_low * 0.9  # the knee hits the baseline first
