"""Data-plane throughput gate: adaptive write coalescing vs the old path.

Echo round-trips over real loopback sockets at concurrency 1 / 32 / 256,
measured for both data planes *in the same run* — ``coalesce=False``
selects the pre-coalescing transport (one write + drain per frame behind a
write lock), kept precisely so this comparison stays honest.  A boutique
checkout macro-benchmark rides along to show the effect on an end-to-end
component workload.

Results land in ``BENCH_3.json`` at the repo root.  The gate: coalescing
must deliver at least 1.5x echo throughput at concurrency 32 and 256.
At concurrency 1 there is nothing to batch — a lone frame pays one extra
task hop to the flusher — so the single-stream ratio is reported but not
gated.

``REPRO_BENCH_QUICK=1`` shrinks message counts for CI smoke runs and
relaxes the gate to 1.15x: short runs on shared CI runners under-amortize
the fixed setup cost, so the smoke job checks direction, not magnitude —
the 1.5x bar is the full run's.
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import time

from benchmarks.conftest import print_table
from repro.transport.client import ConnectionPool
from repro.transport.server import RPCServer

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 2 if QUICK else 3
CONCURRENCIES = (1, 32, 256)
MESSAGES = (
    {1: 300, 32: 3200, 256: 6400} if QUICK else {1: 2000, 32: 12000, 256: 24000}
)
PAYLOAD = b"x" * 128
MIN_RATIO = 1.15 if QUICK else 1.5
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_3.json")


async def _echo(cid, mid, args, trace=(0, 0), deadline_ms=0):
    return args


async def _run_echo(coalesce: bool, concurrency: int, n_msgs: int) -> dict:
    server = RPCServer(_echo, codec="compact", version="bench", coalesce=coalesce)
    address = await server.start()
    pool = ConnectionPool(codec="compact", version="bench", coalesce=coalesce)
    conn = await pool.get(address)
    per_worker = n_msgs // concurrency
    latencies: list[float] = []

    async def worker() -> None:
        # Sample latency on every 4th call: per-call clock reads are
        # measurable at these rates and would tax both modes' throughput.
        for i in range(per_worker):
            if i & 3:
                await conn.call(1, 1, PAYLOAD, timeout=30)
            else:
                t0 = time.perf_counter()
                await conn.call(1, 1, PAYLOAD, timeout=30)
                latencies.append(time.perf_counter() - t0)

    async def warm(n: int) -> None:
        for _ in range(n):
            await conn.call(1, 1, PAYLOAD, timeout=30)

    # Warm up off the clock: connection dial, first-dispatch setup, and the
    # flusher's steady state all land here instead of in the measurement.
    per_warm = max(1, min(100, per_worker // 4))
    await asyncio.gather(*[warm(per_warm) for _ in range(concurrency)])

    start = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    elapsed = time.perf_counter() - start
    stats = {
        "mode": "coalesced" if coalesce else "legacy",
        "concurrency": concurrency,
        "messages": per_worker * concurrency,
        "msgs_per_s": (per_worker * concurrency) / elapsed,
        "p50_ms": _percentile(latencies, 0.50) * 1000,
        "p99_ms": _percentile(latencies, 0.99) * 1000,
        "frames_per_flush": (
            conn.frames_sent / conn.flushes if conn.flushes else 1.0
        ),
    }
    await pool.close()
    await server.stop()
    return stats


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _best(runs: list[dict]) -> dict:
    """Best-of-N by throughput: noise only ever slows a run down."""
    return max(runs, key=lambda r: r["msgs_per_s"])


async def _run_checkout(journeys: int) -> dict:
    from repro.boutique import ALL_COMPONENTS
    from repro.core.config import AppConfig
    from repro.runtime.deployers.multi import deploy_multiprocess
    from tests.integration.test_e2e_boutique import shopping_journey

    app = await deploy_multiprocess(
        AppConfig(name="bench-dataplane"), components=ALL_COMPONENTS, mode="inproc"
    )
    try:
        await shopping_journey(app, "warmup")  # instantiate every component
        start = time.perf_counter()
        await asyncio.gather(
            *[shopping_journey(app, f"u{i}") for i in range(journeys)]
        )
        elapsed = time.perf_counter() - start
    finally:
        await app.shutdown()
    return {
        "journeys": journeys,
        "journeys_per_s": journeys / elapsed,
        "note": "full shopping journey incl. checkout over in-proc RPC",
    }


def _timed_run(coalesce: bool, concurrency: int, n_msgs: int) -> dict:
    # A fresh GC epoch per run keeps collection pauses from accruing to
    # whichever mode happens to run later.
    gc.collect()
    return asyncio.run(_run_echo(coalesce, concurrency, n_msgs))


def test_dataplane_throughput_gate():
    echo_rows = []
    gate = {}
    for concurrency in CONCURRENCIES:
        n_msgs = MESSAGES[concurrency]
        # Interleave the modes repeat-by-repeat so slow periods (noisy
        # neighbours, frequency drift) tax both sides of the ratio equally.
        legacy_runs, coalesced_runs = [], []
        for _ in range(REPEATS):
            legacy_runs.append(_timed_run(False, concurrency, n_msgs))
            coalesced_runs.append(_timed_run(True, concurrency, n_msgs))
        legacy = _best(legacy_runs)
        coalesced = _best(coalesced_runs)
        ratio = coalesced["msgs_per_s"] / legacy["msgs_per_s"]
        gate[concurrency] = ratio
        for row in (legacy, coalesced):
            row["speedup"] = ratio if row is coalesced else 1.0
            echo_rows.append(row)

    checkout = asyncio.run(_run_checkout(8 if QUICK else 32))

    results = {
        "benchmark": "dataplane",
        "payload_bytes": len(PAYLOAD),
        "repeats": REPEATS,
        "quick": QUICK,
        "echo": echo_rows,
        "checkout": checkout,
        "gate": {
            "min_ratio": MIN_RATIO,
            "ratios": {str(c): gate[c] for c in CONCURRENCIES},
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)

    print_table(
        "E14 — data-plane throughput (write coalescing vs legacy)",
        echo_rows,
        ["mode", "concurrency", "msgs_per_s", "p50_ms", "p99_ms",
         "frames_per_flush", "speedup"],
    )
    print_table(
        "E14b — boutique checkout macro-benchmark",
        [checkout],
        ["journeys", "journeys_per_s"],
    )

    for concurrency in (32, 256):
        assert gate[concurrency] >= MIN_RATIO, (
            f"coalescing speedup at concurrency {concurrency} is "
            f"{gate[concurrency]:.2f}x, below the {MIN_RATIO}x gate"
        )
