"""E19 — the observability pipeline: overhead, detection latency, drill-down.

Three gates on the live telemetry pipeline (§5.1, Fig. 3):

1. **Overhead** — full telemetry (spans, client histograms with exemplars,
   per-second series) must cost at most ``MAX_OVERHEAD`` of echo
   throughput at concurrency 32 versus ``telemetry: off``.
2. **Detection** — an injected client-side latency regression must raise
   a firing anomaly/burn-rate signal within ``MAX_DETECTION_S`` of onset.
   The path under test is the real one: driver heartbeat -> manager merge
   -> pipeline delta -> EWMA detector.
3. **Drill-down** — a histogram exemplar's trace id must resolve through
   ``render_trace`` to a multi-proclet call tree with a critical path
   (the "metric spike -> offending trace" pivot).

Results land in ``BENCH_9.json`` at the repo root.  ``REPRO_BENCH_QUICK=1``
shrinks request counts and relaxes the overhead gate for CI smoke: short
runs measure direction, not magnitude.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.status import latency_exemplars, render_trace
from repro.testing.chaos import inject_latency

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 1 if QUICK else 3
REQUESTS = 2_000 if QUICK else 8_000
CONCURRENCY = 32
#: Fraction of throughput full telemetry may cost vs. telemetry=off.
MAX_OVERHEAD = 0.25 if QUICK else 0.10
MAX_DETECTION_S = 5.0
INJECTED_DELAY_S = 0.25
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_9.json")


class Echo(Component):
    async def echo(self, value: int) -> int: ...


class EchoImpl:
    async def echo(self, value: int) -> int:
        return value


class Back(Component):
    async def work(self, value: int) -> int: ...


class BackImpl:
    async def work(self, value: int) -> int:
        await asyncio.sleep(0.002)
        return value * 2


class Front(Component):
    async def handle(self, value: int) -> int: ...


class FrontImpl:
    async def init(self, ctx) -> None:
        self.back = ctx.get(Back)

    async def handle(self, value: int) -> int:
        await asyncio.sleep(0.001)
        return await self.back.work(value)


def _echo_registry() -> Registry:
    registry = Registry()
    registry.register(Echo, EchoImpl)
    return registry


def _chain_registry() -> Registry:
    registry = Registry()
    registry.register(Front, FrontImpl)
    registry.register(Back, BackImpl)
    return registry


# -- scenario 1: throughput overhead ------------------------------------------


async def _throughput(telemetry: str) -> dict:
    config = AppConfig(name="obs-tp", telemetry=telemetry)
    app = await deploy_multiprocess(config, registry=_echo_registry())
    echo = app.get(Echo)
    for i in range(64):  # warm connections, codegen, route table
        await echo.echo(i)

    per_worker = REQUESTS // CONCURRENCY

    async def worker(wid: int) -> None:
        for i in range(per_worker):
            assert await echo.echo(i) == i

    start = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(CONCURRENCY)))
    elapsed = time.perf_counter() - start
    await app.shutdown()
    return {
        "telemetry": telemetry,
        "requests": per_worker * CONCURRENCY,
        "concurrency": CONCURRENCY,
        "elapsed_s": elapsed,
        "rps": per_worker * CONCURRENCY / elapsed,
    }


# -- scenario 2: regression detection latency ---------------------------------


async def _detection() -> dict:
    app = await deploy_multiprocess(
        AppConfig(name="obs-det"), registry=_echo_registry()
    )
    echo = app.get(Echo)
    stop = asyncio.Event()

    async def load() -> None:
        i = 0
        while not stop.is_set():
            i += 1
            await echo.echo(i)
            await asyncio.sleep(0.01)

    driver = asyncio.ensure_future(load())
    try:
        # Warm the detectors: the EWMA needs min_samples healthy ticks of
        # client_p99_ms before it may fire (the telemetry loop ticks 1/s).
        board = app.manager.signals
        for _ in range(300):
            dets = [
                d
                for (series, _), d in board._detectors.items()
                if series == "client_p99_ms"
            ]
            if dets and all(d.samples >= d.min_samples for d in dets):
                break
            await asyncio.sleep(0.1)
        else:
            raise AssertionError("client_p99_ms detector never warmed up")
        assert not board.firing(), "signals firing before injection"

        injection = inject_latency(app, INJECTED_DELAY_S)
        detected_s = None
        fired = []
        while time.monotonic() - injection.started_at < MAX_DETECTION_S + 3.0:
            fired = board.firing()
            if fired:
                detected_s = time.monotonic() - injection.started_at
                break
            await asyncio.sleep(0.05)
        injection.revert()
    finally:
        stop.set()
        await driver
        await app.shutdown()
    return {
        "injected_delay_s": INJECTED_DELAY_S,
        "detected_s": detected_s,
        "signals": [s.key for s in fired],
    }


# -- scenario 3: exemplar -> trace drill-down ---------------------------------


async def _drilldown() -> dict:
    app = await deploy_multiprocess(
        AppConfig(name="obs-drill"), registry=_chain_registry()
    )
    front = app.get(Front)
    try:
        for i in range(20):
            assert await front.handle(i) == i * 2
        # Spans and exemplars ride heartbeats; wait for a client-latency
        # exemplar whose trace has fully assembled at the manager.
        rendered = ""
        for _ in range(100):
            for entry in latency_exemplars(app.manager):
                if entry["metric"] != "rpc_client_latency_s":
                    continue
                tid = entry["trace_id"]
                spans = app.manager.tracer.trace(tid)
                names = {s.name for s in spans}
                if {"rpc Front.handle", "Front.handle", "Back.work"} <= names:
                    rendered = render_trace(app.manager, tid)
                    break
            if rendered:
                break
            await asyncio.sleep(0.1)
        trace_spans = rendered.count("ms") if rendered else 0
    finally:
        await app.shutdown()
    return {
        "rendered": bool(rendered),
        "has_critical_path": "critical path:" in rendered,
        "mentions_both_components": (
            "Front.handle" in rendered and "Back.work" in rendered
        ),
        "sample": rendered.splitlines()[:14],
        "span_lines": trace_spans,
    }


# -- the gate ------------------------------------------------------------------


def test_observability_gate(benchmark):
    def run_all():
        on_runs, off_runs = [], []
        # Interleaved so machine-wide slow periods tax both modes equally.
        for _ in range(REPEATS):
            on_runs.append(asyncio.run(_throughput("full")))
            off_runs.append(asyncio.run(_throughput("off")))
        detection = asyncio.run(_detection())
        drilldown = asyncio.run(_drilldown())
        return on_runs, off_runs, detection, drilldown

    on_runs, off_runs, detection, drilldown = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    on = max(on_runs, key=lambda r: r["rps"])
    off = max(off_runs, key=lambda r: r["rps"])
    overhead = 1.0 - on["rps"] / off["rps"]

    results = {
        "benchmark": "observability",
        "quick": QUICK,
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "full": on_runs,
        "off": off_runs,
        "detection": detection,
        "drilldown": {k: v for k, v in drilldown.items() if k != "sample"},
        "gate": {
            "max_overhead": MAX_OVERHEAD,
            "overhead": overhead,
            "max_detection_s": MAX_DETECTION_S,
            "detected_s": detection["detected_s"],
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)

    print_table(
        "E19 — telemetry overhead (echo, c=32)",
        [on, off],
        ["telemetry", "requests", "elapsed_s", "rps"],
    )
    print_table(
        "E19 — regression detection + drill-down",
        [
            {
                "check": "detection_s",
                "value": detection["detected_s"],
                "required": f"<= {MAX_DETECTION_S}",
            },
            {
                "check": "overhead",
                "value": overhead,
                "required": f"<= {MAX_OVERHEAD}",
            },
            {
                "check": "drilldown",
                "value": "ok" if drilldown["has_critical_path"] else "FAIL",
                "required": "tree+path",
            },
        ],
        ["check", "value", "required"],
    )

    assert overhead <= MAX_OVERHEAD, (
        f"full telemetry costs {overhead:.1%} of throughput "
        f"(full={on['rps']:.0f} rps, off={off['rps']:.0f} rps), "
        f"above the {MAX_OVERHEAD:.0%} gate"
    )
    assert detection["detected_s"] is not None, (
        f"no signal fired within {MAX_DETECTION_S + 3.0:.0f}s of a "
        f"{INJECTED_DELAY_S * 1000:.0f}ms injected regression"
    )
    assert detection["detected_s"] <= MAX_DETECTION_S, (
        f"regression detected after {detection['detected_s']:.1f}s, "
        f"above the {MAX_DETECTION_S:.0f}s gate (signals: "
        f"{detection['signals']})"
    )
    assert drilldown["rendered"], "no exemplar resolved to an assembled trace"
    assert drilldown["has_critical_path"], drilldown
    assert drilldown["mentions_both_components"], drilldown
