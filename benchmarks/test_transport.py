"""E8 — transport ablation: custom TCP protocol vs HTTP/1.1 baseline (§6).

    "...as well as its use of a streamlined transport protocol built
    directly on top of TCP."

Round-trip latency over real loopback sockets for boutique-shaped payloads,
and the per-message wire overhead of each protocol.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.transport.client import ConnectionPool
from repro.transport.http_rpc import HttpRpcClient, HttpRpcServer, _format_request
from repro.transport import message as wire_msg
from repro.transport.server import RPCServer

PAYLOAD_SIZES = [64, 1024, 4096]


class CustomRig:
    def __init__(self):
        async def handler(cid, mid, args, trace=(0, 0), deadline_ms=0):
            return args

        self.loop = asyncio.new_event_loop()
        self.server = RPCServer(handler, codec="compact", version="bench")
        address = self.loop.run_until_complete(self.server.start())
        self.pool = ConnectionPool(codec="compact", version="bench")
        self.conn = self.loop.run_until_complete(self.pool.get(address))

    def call(self, payload: bytes) -> bytes:
        return self.loop.run_until_complete(self.conn.call(1, 1, payload, timeout=5))

    def close(self):
        self.loop.run_until_complete(self.pool.close())
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()


class HttpRig:
    def __init__(self):
        async def handler(component, method, body):
            return body

        self.loop = asyncio.new_event_loop()
        self.server = HttpRpcServer(handler)
        self.address = self.loop.run_until_complete(self.server.start())
        self.client = HttpRpcClient()

    def call(self, payload: bytes) -> bytes:
        return self.loop.run_until_complete(
            self.client.call(self.address, "boutique.Cart", "get_cart", payload, timeout=5)
        )

    def close(self):
        self.loop.run_until_complete(self.client.close())
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()


@pytest.fixture(scope="module")
def custom_rig():
    rig = CustomRig()
    yield rig
    rig.close()


@pytest.fixture(scope="module")
def http_rig():
    rig = HttpRig()
    yield rig
    rig.close()


@pytest.mark.parametrize("size", PAYLOAD_SIZES)
def test_custom_rpc_roundtrip(benchmark, custom_rig, size):
    payload = b"x" * size
    result = benchmark(custom_rig.call, payload)
    assert result == payload


@pytest.mark.parametrize("size", PAYLOAD_SIZES)
def test_http_rpc_roundtrip(benchmark, http_rig, size):
    payload = b"x" * size
    result = benchmark(http_rig.call, payload)
    assert result == payload


def test_per_message_wire_overhead(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Protocol framing bytes for an identical logical call."""
    body = b"p" * 64
    custom = len(wire_msg.encode(wire_msg.Request(1, 5, 2, body))) + 4 - len(body)
    http = _format_request(
        "tcp://127.0.0.1:80", "boutique.Cart", "get_cart", body, 1
    )
    http_overhead = len(http) - len(body)
    print_table(
        "E8: protocol overhead per request message",
        [
            {"protocol": "custom-tcp", "overhead_bytes": custom},
            {"protocol": "http/1.1", "overhead_bytes": http_overhead},
            {"protocol": "ratio", "overhead_bytes": http_overhead / custom},
        ],
        ["protocol", "overhead_bytes"],
    )
    assert custom < 16
    assert http_overhead > 10 * custom


def test_pipelining_concurrency(benchmark, custom_rig):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """One custom connection carries concurrent calls; HTTP/1.1 cannot."""

    async def burst(conn, n):
        return await asyncio.gather(*[conn.call(1, 1, b"x", timeout=5) for _ in range(n)])

    results = custom_rig.loop.run_until_complete(burst(custom_rig.conn, 64))
    assert len(results) == 64
