"""E16 — durable state under chaos: zero acked-write loss, bounded stall.

The ``repro.state`` gate.  A routed stateful component keeps per-key
counters in ``ctx.state`` while two storms hit the deployment:

* **silent kills** — replicas crash without telling the manager, so
  recovery runs through the shared WAL directory: the sweep relaunches a
  replica, routing generation bumps, and the new owner re-merges disk
  before serving moved keys;
* **autoscale shrink** — a planned retirement mid-load, exercising the
  drain handover path: the retiree flushes + snapshots its shards and the
  manager pushes the manifests at the survivors, which replay eagerly.

The client counts an increment only when its call returns success —
that is the *acknowledged* set.  The gate is the paper's durability
contract: every key's final value must be at least its acknowledged
count (increments are not idempotent, so chaos-induced retries may
legitimately overshoot; loss may not undershoot, ever).  The second gate
bounds the rebalance stall: paced load across the shrink must return to
a steady success streak within ``MAX_STALL_S``.

Results land in ``BENCH_5.json`` at the repo root.  ``REPRO_BENCH_QUICK=1``
shrinks the run for CI smoke; the zero-loss gate never relaxes.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.codegen.compiler import idempotent, routed
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 1 if QUICK else 2
REQUESTS = 240 if QUICK else 800        # kill-storm phase
KILL_EVERY = 120 if QUICK else 250
SHRINK_REQUESTS = 150 if QUICK else 400  # paced load across the shrink
PACE_S = 0.004
NUM_KEYS = 32
SUSPECT_AFTER_S = 0.4 if QUICK else 0.6
DEAD_AFTER_S = 0.8 if QUICK else 1.2
RECOVERY_STREAK = 10 if QUICK else 20
#: Rebalance stall budget: eager replay at handover keeps this small.
MAX_STALL_S = 5.0 if QUICK else 3.0
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_5.json")

KEYS = [f"user-{i}" for i in range(NUM_KEYS)]


class Counter(Component):
    """Per-key durable counters: the minimal stateful routed component."""

    @routed(by="key")
    async def bump(self, key: str) -> int: ...

    @idempotent
    @routed(by="key")
    async def read(self, key: str) -> int: ...


class CounterImpl:
    async def init(self, ctx) -> None:
        self._state = ctx.state

    async def bump(self, key: str) -> int:
        return await self._state.update(key, lambda v: v + 1, default=0)

    async def read(self, key: str) -> int:
        return await self._state.get(key, default=0)


def _registry() -> Registry:
    registry = Registry()
    registry.register(Counter, CounterImpl)
    return registry


async def _read_all(counter, component, app) -> dict[str, int]:
    """Final read-back, tolerant of the storm's immediate aftermath."""
    app.driver._table.invalidate(component)
    deadline = time.monotonic() + 10.0
    while True:
        try:
            await counter.read(KEYS[0])
            break
        except Exception:
            assert time.monotonic() < deadline, "service never came back"
            await app.manager.sweep()
            await asyncio.sleep(0.1)
    return {key: await counter.read(key) for key in KEYS}


async def _scenario(seed: int) -> dict:
    config = AppConfig(name="state-bench", replicas={Counter: 3})
    app = await deploy_multiprocess(config, registry=_registry())
    app.manager.health._suspect_after_s = SUSPECT_AFTER_S
    app.manager.health._dead_after_s = DEAD_AFTER_S
    component = app.build.by_iface(Counter).name
    monkey = ChaosMonkey(app, seed=seed)
    counter = app.get(Counter)

    acked = {key: 0 for key in KEYS}
    cursor = {"n": 0}

    async def workload():
        key = KEYS[cursor["n"] % len(KEYS)]
        cursor["n"] += 1
        await counter.bump(key)
        acked[key] += 1  # counted only when the ack reached the client
        await asyncio.sleep(PACE_S)

    # Phase 1 — silent-kill storm under paced stateful load.
    kill_report = await monkey.rampage(
        workload, requests=REQUESTS, kill_every=KILL_EVERY, silent_kills=True
    )

    # Let the sweep finish repairing before the planned-shrink probe.
    for _ in range(60):
        live = [e for e in app.envelopes.values() if not e.stopped]
        if len(live) >= 3:
            break
        await app.manager.sweep()
        await asyncio.sleep(0.1)

    # Phase 2 — autoscale shrink while load continues.  The driver keeps
    # its (now stale) routed cache, so moved keys bounce off the old
    # owner with a retryable wrong-owner rejection and re-resolve.
    load = asyncio.ensure_future(
        monkey.rampage(workload, requests=SHRINK_REQUESTS, kill_every=0)
    )
    await asyncio.sleep(0.2)
    shrink_t = time.monotonic()
    group = next(
        g for g in app.manager.group_states().values() if g.group_id >= 0
    )
    await app.manager._shrink_group(group, max(1, len(group.proclets) - 1))
    shrink_report = await load
    end_t = time.monotonic()

    stall = shrink_report.time_to_recover(shrink_t, consecutive=RECOVERY_STREAK)
    if stall is None:
        # Never steady again before the window closed: score the full
        # remainder (a floor — and a gate failure, loudly).
        stall = max(0.0, end_t - shrink_t)

    # Phase 3 — the durability audit.
    finals = await _read_all(counter, component, app)
    lost = {
        key: {"acked": acked[key], "final": finals[key]}
        for key in KEYS
        if finals[key] < acked[key]
    }

    handover_shards = app.manager.metrics.counter("state_handover_shards").get()
    handover_replayed = app.manager.metrics.counter(
        "state_handover_replayed"
    ).get()
    wrong_owner = 0
    for envelope in app.envelopes.values():
        proclet = getattr(envelope, "proclet", None)
        if proclet is None:
            continue
        cell = proclet.metrics.counter("state_wrong_owner").get(
            component=component
        )
        wrong_owner += int(cell.value)

    await app.shutdown()
    return {
        "seed": seed,
        "kills": len(kill_report.kills),
        "kill_success_rate": kill_report.success_rate,
        "shrink_success_rate": shrink_report.success_rate,
        "acked_total": sum(acked.values()),
        "final_total": sum(finals.values()),
        "lost_keys": len(lost),
        "lost": lost,
        "rebalance_stall_s": stall,
        "handover_shards": int(handover_shards.value),
        "handover_replayed": int(handover_replayed.value),
        "wrong_owner_rejects": wrong_owner,
        "errors": {**kill_report.errors, **shrink_report.errors},
    }


def test_state_durability_gate(benchmark):
    def run_all() -> list[dict]:
        return [asyncio.run(_scenario(seed=20 + i)) for i in range(REPEATS)]

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    best_stall = min(r["rebalance_stall_s"] for r in runs)

    results = {
        "benchmark": "state-durability",
        "quick": QUICK,
        "repeats": REPEATS,
        "requests": {"kill_phase": REQUESTS, "shrink_phase": SHRINK_REQUESTS},
        "keys": NUM_KEYS,
        "detection": {
            "suspect_after_s": SUSPECT_AFTER_S,
            "dead_after_s": DEAD_AFTER_S,
        },
        "runs": runs,
        "gate": {
            "lost_keys": sum(r["lost_keys"] for r in runs),
            "max_stall_s": MAX_STALL_S,
            "best_stall_s": best_stall,
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)

    print_table(
        "E16 — durable state under silent kills + autoscale shrink",
        runs,
        ["seed", "kills", "kill_success_rate", "shrink_success_rate",
         "acked_total", "final_total", "lost_keys", "rebalance_stall_s",
         "handover_shards", "wrong_owner_rejects"],
    )
    print_table(
        "E16 gate",
        [
            {"gate": "lost acked writes", "value": sum(r["lost_keys"] for r in runs),
             "required": 0},
            {"gate": "rebalance stall (s)", "value": best_stall,
             "required": MAX_STALL_S},
        ],
        ["gate", "value", "required"],
    )

    for run in runs:
        assert run["kills"] >= 1, run
        # The drain path moved shards — handover, not just lazy recovery.
        assert run["handover_shards"] > 0, run
        # THE gate: nothing the client was told succeeded may be missing.
        assert run["lost_keys"] == 0, (
            f"acknowledged writes lost under chaos: {run['lost']}"
        )
    # Noise (CI stalls) only ever lengthens a stall: gate best-of-N.
    assert best_stall <= MAX_STALL_S, (
        f"rebalance stalled {best_stall:.2f}s, over the {MAX_STALL_S}s budget"
    )
