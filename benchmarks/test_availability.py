"""E15 — availability under replica failure: breakers + drain vs neither.

The failure-domain gate.  A replicated echo component takes paced load
while replicas are *silently* killed — no report to the manager, so the
only signals are missed heartbeats (slow, authoritative) and failed calls
(fast, client-side).  Two interleaved configurations run in the same
process:

* **on** — per-replica circuit breakers eject the dead address after a few
  failed calls, and planned shutdown drains in-flight work.
* **off** — callers keep picking the dead replica until the manager's
  health sweep notices the silence; planned shutdown is a hard stop.

Retries are disabled (``max_retries=0``) so every routing mistake is
visible in the success rate rather than hidden by the retry budget.

Results land in ``BENCH_4.json`` at the repo root.  Gates: breakers must
lift the chaos success rate at least 1.2x, and recover service at least
2x faster after a silent kill.  ``REPRO_BENCH_QUICK=1`` shrinks the run
and relaxes the gates for CI smoke: short windows under-sample the
outage, so the smoke job checks direction, not magnitude.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from benchmarks.conftest import print_table
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey, ChaosReport

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
REPEATS = 1 if QUICK else 2
REQUESTS = 300 if QUICK else 900
KILL_EVERY = 100 if QUICK else 300
PACE_S = 0.004
#: Shortened detection thresholds so the manager-only baseline recovers
#: within the benchmark window (heartbeats tick every 0.2s in-proc).
SUSPECT_AFTER_S = 0.4 if QUICK else 0.6
DEAD_AFTER_S = 0.8 if QUICK else 1.2
MIN_SUCCESS_RATIO = 1.05 if QUICK else 1.2
MIN_RECOVERY_RATIO = 1.2 if QUICK else 2.0
RECOVERY_STREAK = 10 if QUICK else 25
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_4.json")


class Echo(Component):
    async def echo(self, value: int) -> int: ...

    async def slow_echo(self, value: int, delay_s: float) -> int: ...


class EchoImpl:
    async def echo(self, value: int) -> int:
        return value

    async def slow_echo(self, value: int, delay_s: float) -> int:
        await asyncio.sleep(delay_s)
        return value


def _registry() -> Registry:
    registry = Registry()
    registry.register(Echo, EchoImpl)
    return registry


def _recovery_s(report: ChaosReport, end_t: float) -> float:
    """Mean seconds-to-steady after each kill.

    A run that never got back to steady before it ended scores the time it
    stayed black — a floor, which only understates the slow configuration.
    """
    samples = []
    for kill_t in report.kill_times:
        r = report.time_to_recover(kill_t, consecutive=RECOVERY_STREAK)
        samples.append(r if r is not None else max(0.0, end_t - kill_t))
    return sum(samples) / len(samples) if samples else 0.0


async def _scenario(enabled: bool, seed: int) -> dict:
    config = AppConfig(
        name="avail",
        replicas={Echo: 3},
        max_retries=0,
        breakers_enabled=enabled,
        drain_deadline_s=5.0 if enabled else 0.0,
    )
    app = await deploy_multiprocess(config, registry=_registry())
    app.manager.health._suspect_after_s = SUSPECT_AFTER_S
    app.manager.health._dead_after_s = DEAD_AFTER_S
    monkey = ChaosMonkey(app, seed=seed)
    echo = app.get(Echo)
    counter = {"n": 0}

    async def workload():
        counter["n"] += 1
        assert await echo.echo(counter["n"]) == counter["n"]
        await asyncio.sleep(PACE_S)  # paced load: outages span wall time

    report = await monkey.rampage(
        workload, requests=REQUESTS, kill_every=KILL_EVERY, silent_kills=True
    )
    end_t = time.monotonic()
    # Let the sweep loop finish repairing before the planned-shutdown probe.
    for _ in range(40):
        live = [e for e in app.envelopes.values() if not e.stopped]
        if len(live) >= 3:
            break
        await asyncio.sleep(0.1)

    # The storm leaves the driver with cached addresses of long-dead
    # replicas (kept by their open breakers, occasionally probed).  The
    # planned-shutdown probe measures drain in steady state, so refresh
    # the routing view first — what any long-lived caller converges to.
    app.driver._table.invalidate(app.build.by_iface(Echo).name)
    assert await echo.echo(-1) == -1

    # Planned shutdown: shrink the echo group while slow calls are in
    # flight.  With drain the retiring replica finishes them; without, the
    # hard stop cuts them off mid-execution.
    calls = [
        asyncio.ensure_future(echo.slow_echo(i, 0.25)) for i in range(12)
    ]
    await asyncio.sleep(0.05)
    group = next(
        g for g in app.manager.group_states().values() if g.group_id >= 0
    )
    await app.manager._shrink_group(group, max(1, len(group.proclets) - 1))
    outcomes = await asyncio.gather(*calls, return_exceptions=True)
    shutdown_failures = sum(1 for o in outcomes if isinstance(o, BaseException))

    await app.shutdown()
    return {
        "mode": "breakers+drain" if enabled else "manager-only",
        "requests": report.requests_attempted,
        "succeeded": report.requests_succeeded,
        "success_rate": report.success_rate,
        "kills": len(report.kills),
        "recovery_s": _recovery_s(report, end_t),
        "shutdown_failures": shutdown_failures,
        "errors": dict(report.errors),
    }


def _best(runs: list[dict]) -> dict:
    """Best-of-N: noise (CI stalls, GC pauses) only ever hurts a run."""
    return max(runs, key=lambda r: (r["success_rate"], -r["recovery_s"]))


def test_availability_gate(benchmark):
    def run_all() -> tuple[list[dict], list[dict]]:
        on_runs, off_runs = [], []
        # Interleaved so machine-wide slow periods tax both modes equally.
        for i in range(REPEATS):
            on_runs.append(asyncio.run(_scenario(True, seed=10 + i)))
            off_runs.append(asyncio.run(_scenario(False, seed=10 + i)))
        return on_runs, off_runs

    on_runs, off_runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    on, off = _best(on_runs), _best(off_runs)

    success_ratio = (
        on["success_rate"] / off["success_rate"] if off["success_rate"] else float("inf")
    )
    recovery_ratio = (
        off["recovery_s"] / on["recovery_s"] if on["recovery_s"] else float("inf")
    )

    results = {
        "benchmark": "availability",
        "quick": QUICK,
        "repeats": REPEATS,
        "requests": REQUESTS,
        "detection": {
            "suspect_after_s": SUSPECT_AFTER_S,
            "dead_after_s": DEAD_AFTER_S,
        },
        "on": on_runs,
        "off": off_runs,
        "gate": {
            "min_success_ratio": MIN_SUCCESS_RATIO,
            "success_ratio": success_ratio,
            "min_recovery_ratio": MIN_RECOVERY_RATIO,
            "recovery_ratio": recovery_ratio,
        },
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)

    print_table(
        "E15 — availability under silent replica kills",
        [on, off],
        ["mode", "requests", "succeeded", "success_rate", "kills",
         "recovery_s", "shutdown_failures"],
    )
    print_table(
        "E15 gate",
        [
            {"ratio": "success (on/off)", "value": success_ratio,
             "required": MIN_SUCCESS_RATIO},
            {"ratio": "recovery (off/on)", "value": recovery_ratio,
             "required": MIN_RECOVERY_RATIO},
        ],
        ["ratio", "value", "required"],
    )

    assert on["kills"] >= 2 and off["kills"] >= 2
    # Drain keeps planned shutdown invisible to callers.
    assert on["shutdown_failures"] == 0, on
    assert success_ratio >= MIN_SUCCESS_RATIO, (
        f"breakers lift success rate only {success_ratio:.2f}x "
        f"(on={on['success_rate']:.3f} off={off['success_rate']:.3f}), "
        f"below the {MIN_SUCCESS_RATIO}x gate"
    )
    assert recovery_ratio >= MIN_RECOVERY_RATIO, (
        f"breakers recover only {recovery_ratio:.2f}x faster "
        f"(on={on['recovery_s']:.3f}s off={off['recovery_s']:.3f}s), "
        f"below the {MIN_RECOVERY_RATIO}x gate"
    )
