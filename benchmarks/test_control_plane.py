"""E3 + E6 — Table 1's control-plane API and Figure 3's deployer loop.

Measures the three calls of Table 1 (RegisterReplica, ComponentsToHost,
StartComponent) end-to-end through envelope relays, plus the full deployer
lifecycle: launch N proclets, serve, collect telemetry, tear down.
"""

from __future__ import annotations

import asyncio

import pytest

from benchmarks.conftest import print_table
from repro.boutique import ALL_COMPONENTS, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess


def test_table1_api_roundtrips(benchmark):
    """RegisterReplica / ComponentsToHost / StartComponent latencies."""

    async def scenario():
        import time

        app = await deploy_multiprocess(
            AppConfig(name="ctl"), components=ALL_COMPONENTS, mode="inproc", eager=False
        )
        manager = app.manager
        timings = {}

        start = time.perf_counter()
        await manager.start_component("repro.boutique.catalog.ProductCatalog")
        timings["start_component_ms"] = (time.perf_counter() - start) * 1000

        proclet_id = next(iter(app.envelopes))
        start = time.perf_counter()
        for _ in range(100):
            await manager.components_to_host(proclet_id)
        timings["components_to_host_us"] = (time.perf_counter() - start) * 1e4

        start = time.perf_counter()
        for i in range(100):
            await manager.register_replica(f"bench-{i}", f"tcp://127.0.0.1:{20000+i}", 0)
        timings["register_replica_us"] = (time.perf_counter() - start) * 1e4

        await app.shutdown()
        return timings

    timings = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    print_table(
        "E3: Table 1 control API round-trips",
        [
            {"api": "StartComponent (cold: launches a proclet)", "value": f"{timings['start_component_ms']:.1f} ms"},
            {"api": "ComponentsToHost", "value": f"{timings['components_to_host_us']:.1f} us"},
            {"api": "RegisterReplica", "value": f"{timings['register_replica_us']:.1f} us"},
        ],
        ["api", "value"],
    )


def test_deployer_lifecycle(benchmark):
    """E6: Figure 3 end to end — launch, serve, aggregate, tear down."""

    async def scenario():
        app = await deploy_multiprocess(
            AppConfig(name="lifecycle"), components=ALL_COMPONENTS, mode="inproc"
        )
        fe = app.get(Frontend)
        for i in range(5):
            await fe.home(f"u{i}", "USD")
        # Wait for at least one telemetry heartbeat to reach the manager.
        for _ in range(50):
            if app.manager.call_graph.total_calls() > 0:
                break
            await asyncio.sleep(0.05)
        stats = {
            "replicas": app.manager.total_replicas(),
            "call_graph_edges": len(app.manager.call_graph.edges()),
            "metric_series": len(app.manager.metrics.cells()),
        }
        await app.shutdown()
        return stats

    stats = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    print_table(
        "E6: deployer lifecycle (11 proclets, telemetry aggregated)",
        [{"metric": k, "value": v} for k, v in stats.items()],
        ["metric", "value"],
    )
    assert stats["replicas"] == 11
    assert stats["call_graph_edges"] > 0
    assert stats["metric_series"] > 0


def test_subprocess_launch_cost(benchmark):
    """What a real fork-per-proclet deployment costs on this machine."""

    async def scenario():
        from tests.conftest import Adder, AdderImpl
        from repro.core.registry import Registry

        registry = Registry()
        registry.register(Adder, AdderImpl)
        app = await deploy_multiprocess(
            AppConfig(name="spawn"), registry=registry, mode="subprocess"
        )
        value = await app.get(Adder).add(1, 1)
        await app.shutdown()
        return value

    value = benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)
    assert value == 2
