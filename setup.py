"""Legacy setup shim: this environment's setuptools lacks bdist_wheel,
so `pip install -e . --no-build-isolation --no-use-pep517` uses this path."""
from setuptools import setup

setup()
