"""Atomic blue/green rollout of a live application (§4.4).

Run:  python examples/blue_green_rollout.py

Two complete deployments of the same components run side by side as
different *deployment versions*.  Traffic shifts gradually to green;
every request is pinned to one version for its whole lifetime; and the
transport handshake makes cross-version calls physically impossible —
dial green's replica with blue's version and the connection is refused.
"""

import asyncio

import repro
from repro.core.config import AppConfig, RolloutConfig
from repro.core.errors import VersionMismatch
from repro.core.registry import Registry
from repro.runtime.deployers.multi import MultiProcessApp
from repro.runtime.rollout import run_rollout
from repro.transport.client import ConnectionPool


class Api(repro.Component):
    async def version_banner(self) -> str: ...


class ApiV1:
    async def version_banner(self) -> str:
        return "api v1 (blue)"


class ApiV2:
    async def version_banner(self) -> str:
        return "api v2 (green)"


async def deploy(impl: type, salt: str) -> MultiProcessApp:
    registry = Registry()
    registry.register(Api, impl)
    build = registry.freeze(salt=salt)
    app = MultiProcessApp(build, AppConfig(name=f"api-{salt}"))
    return await app.start()


async def main() -> None:
    blue = await deploy(ApiV1, "build-1")
    green = await deploy(ApiV2, "build-2")
    print(f"blue  = version {blue.version}")
    print(f"green = version {green.version}")

    # The handshake enforces isolation: blue's client cannot reach green.
    green_address = green.manager.replica_addresses(green.build.by_iface(Api).name)[0]
    pool = ConnectionPool(codec="compact", version=blue.version)
    try:
        await pool.get(green_address)
        raise AssertionError("cross-version connection must be refused")
    except VersionMismatch as exc:
        print(f"\ncross-version dial refused by handshake:\n  {exc}")
    await pool.close()

    # Gate on persistent-state compatibility first (§5.4): even atomic
    # rollouts cannot isolate state, so schema evolution is checked —
    # with the actual wire codec — before any traffic shifts.
    from dataclasses import dataclass
    from typing import Optional

    from repro.runtime.stateful import StateCompatibilityChecker, StateType, gate_rollout

    @dataclass
    class SessionV1:
        user_id: str
        cart_total_cents: int

    @dataclass
    class SessionV2:
        user_id: str
        cart_total_cents: int
        loyalty_tier: Optional[str] = None  # additive: safe

    report = await gate_rollout(
        StateCompatibilityChecker(),
        [StateType("sessions", SessionV1)],
        [StateType("sessions", SessionV2)],
        {"sessions": [SessionV1("u-1", 4200), SessionV1("u-2", 0)]},
    )
    print(f"\nstate gate: {report.summary()}")

    # Gradual shift with a per-step probe; a failing probe would abort.
    print("\nrolling out green in 5 steps of 20% ...")
    seen = []

    async def probe(pinned):
        banner = await pinned.app.get(Api).version_banner()
        seen.append(banner)

    report = await run_rollout(
        blue,
        green,
        config=RolloutConfig(steps=5),
        probe=probe,
        requests_per_step=10,
        seed=4,
    )
    for version, count in sorted(report.requests_by_version.items()):
        label = "blue" if version == blue.version else "green"
        print(f"  {label} ({version}): {count} requests")
    print(f"rollout completed: {report.completed}; blue has been shut down")
    print(f"last banner served: {seen[-1]!r}")
    await green.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
