"""The §5.1 loop, closed: observe -> recommend co-location -> redeploy.

Run:  python examples/placement_advisor.py

1. Deploy the boutique with no co-location (11 processes) and drive load.
2. Ask the placement engine which components are chatty enough to merge.
3. Redeploy with the recommended groups and drive the same load.
4. Compare process count and remote-call volume.

This is the runtime doing what the paper says microservice developers do
by hand and get wrong: deciding physical boundaries from measured traffic
rather than org charts.
"""

import asyncio

from repro.boutique import ALL_COMPONENTS
from repro.core.call_graph import ROOT
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.placement import recommend_groups
from repro.sim.realtime import drive_boutique


def remote_fraction(graph) -> float:
    total = remote = 0
    for edge in graph.edges():
        if edge.caller == ROOT:
            continue
        total += edge.calls
        remote += edge.remote_calls
    return remote / total if total else 0.0


async def observe(config: AppConfig, label: str):
    app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
    await drive_boutique(app, qps=60, duration_s=2.0, users=8)
    await asyncio.sleep(0.5)  # let telemetry land at the manager
    graph = app.manager.call_graph
    print(
        f"{label}: {app.manager.total_replicas()} processes, "
        f"{graph.total_calls()} component calls, "
        f"{remote_fraction(graph):.0%} of inter-component calls remote"
    )
    return app


async def main() -> None:
    # Step 1: the naive deployment — every component its own process.
    app = await observe(AppConfig(name="naive"), "naive (11 processes)")

    # Step 2: recommendations from the bird's-eye call graph.
    groups = recommend_groups(
        app.manager.call_graph,
        app.build.names(),
        max_group_size=4,
        min_traffic=20,
    )
    await app.shutdown()

    print("\nrecommended co-location groups:")
    for group in sorted(groups, key=len, reverse=True):
        print("  {" + ", ".join(c.rsplit(".", 1)[-1] for c in group) + "}")

    # Step 3: redeploy with the recommended placement. No code changes —
    # this is the boundary-moving the paper says must stay cheap (C4).
    optimized = AppConfig(name="optimized", colocate=tuple(groups))
    app = await observe(optimized, f"\noptimized ({len(groups)} processes)")
    await app.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
