"""Automated fault-tolerance testing as a plain script (§5.3).

Run:  python examples/chaos_testing.py

The paper's claim: because the whole application deploys from one process,
chaos testing needs no infrastructure.  This script deploys the boutique
with a few replicated components, lets a chaos monkey kill proclets while
orders flow — watching the caller-side circuit breakers trip and recover
live — and prints the availability report; then does the same with
deterministic fault *injection* (no kills, just scripted failures) to show
the second half of the §5.3 toolbox.
"""

import asyncio

from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.chaos import ChaosMonkey
from repro.testing.faults import FaultPlan, FaultRule
from repro.testing.harness import weavertest

ADDRESS = Address("1 Main St", "Springfield", "IL", "US", 62701)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def chaos_run() -> None:
    print("=== chaos monkey: killing replicas under live load ===")
    config = AppConfig(
        name="chaos",
        replicas={
            "repro.boutique.frontend.Frontend": 2,
            "repro.boutique.catalog.ProductCatalog": 2,
            "repro.boutique.currency.Currency": 2,
        },
    )
    app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
    monkey = ChaosMonkey(app, seed=7)
    # A deadline caps how long each pageview can spend retrying around
    # killed replicas; Frontend.home is idempotent, so retries are safe.
    fe = app.get(Frontend).with_options(deadline_s=5.0)
    users = iter(range(10**6))
    last_tripped: dict = {}

    async def one_pageview():
        user = f"u{next(users)}"
        home = await fe.home(user, "USD")
        assert home.products
        # The driver's per-replica breakers react to failed attempts long
        # before the manager's health sweep: print every change away from
        # (or back to) CLOSED as it happens.
        nonlocal last_tripped
        tripped = {
            comp.rsplit(".", 1)[-1]: open_replicas
            for comp, replicas in app.driver.breakers.snapshot().items()
            if (open_replicas := {
                addr: state for addr, state in replicas.items() if state != "closed"
            })
        }
        if tripped != last_tripped:
            print(f"  breakers: {tripped or 'all closed again'}")
            last_tripped = tripped

    calm = await monkey.rampage(one_pageview, requests=10, kill_every=0)
    # silent_kills: nobody tells the manager — the kills are discovered by
    # missed heartbeats and, much sooner, by the breakers ejecting the
    # dead addresses after a few failed attempts.
    report = await monkey.rampage(
        one_pageview, requests=50, kill_every=10, silent_kills=True
    )
    print(f"killed: {', '.join(report.kills)}")
    print(
        f"availability: {calm.success_rate:.0%} before chaos, "
        f"{report.requests_succeeded}/{report.requests_attempted} "
        f"({report.success_rate:.0%}) during; errors: {report.errors or 'none'}"
    )
    await app.shutdown()


async def fault_injection_run() -> None:
    print("\n=== deterministic fault injection: is checkout resilient? ===")
    # Currency fails 30% of the time (seeded => reproducible).  Checkout
    # retries absorb transient failures; persistent ones surface cleanly.
    plan = FaultPlan(
        [FaultRule(component="Currency", failure_rate=0.3, max_failures=50)],
        seed=123,
    )
    succeeded = failed = 0
    async with weavertest(components=ALL_COMPONENTS, mode="multi", faults=plan) as app:
        fe = app.get(Frontend)
        for i in range(20):
            user = f"shopper-{i}"
            try:
                await fe.add_to_cart(user, "OLJCESPC7Z", 1)
                await fe.checkout(user, "USD", ADDRESS, f"{user}@x.com", CARD)
                succeeded += 1
            except Exception as exc:
                failed += 1
    print(f"injected {plan.total_injected} currency failures")
    print(f"orders: {succeeded} succeeded, {failed} failed (retries absorbed the rest)")


if __name__ == "__main__":
    asyncio.run(chaos_run())
    asyncio.run(fault_injection_run())
