"""A guided tour of the deployer architecture (Figure 3).

Run:  python examples/deployer_tour.py

Walks through everything the figure shows, live:

* the global manager launching envelopes and (through them) proclets;
* the Table-1 control API (RegisterReplica / ComponentsToHost /
  StartComponent) in action;
* telemetry flowing up: health, load, metrics, logs, the merged call
  graph, and cross-proclet distributed traces;
* the status report (the "Web UI / Debugging Tools" box, rendered to
  your terminal);
* a replica failure and the manager's repair;
* the routing advisor's suggestions learned from the traffic.
"""

import asyncio

from repro.boutique import ALL_COMPONENTS, Address, CreditCard, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.status import render_status
from repro.sim.realtime import drive_boutique

ADDRESS = Address("1600 Amphitheatre Pkwy", "Mountain View", "CA", "US", 94043)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def main() -> None:
    # The config could equally come from a TOML file (AppConfig.load).
    config = AppConfig.from_toml(
        """
        name = "tour"
        codec = "compact"
        compress_wire = true
        colocate = [["repro.boutique.cart.Cart", "repro.boutique.cartstore.CartStore"]]

        [replicas]
        "repro.boutique.frontend.Frontend" = 2
        """
    )

    print("1) manager launches envelopes; proclets register (Table 1) ...")
    app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode="inproc")
    some_proclet = app.manager.proclets()[0].proclet_id
    hosted = await app.manager.components_to_host(some_proclet)
    print(f"   ComponentsToHost({some_proclet}) -> {[h.rsplit('.', 1)[-1] for h in hosted]}")

    print("\n2) serving the Locust mix for 2.5s ...")
    result = await drive_boutique(app, qps=70, duration_s=2.5, users=8)
    print(
        f"   {result.requests} requests, median {result.median_latency_ms:.2f}ms, "
        f"errors {result.errors}"
    )
    fe = app.get(Frontend)
    await fe.add_to_cart("tour-user", "OLJCESPC7Z", 1)
    await fe.checkout("tour-user", "USD", ADDRESS, "tour@x.com", CARD)
    await asyncio.sleep(1.2)  # heartbeats ship metrics/logs/traces/graph

    print("\n3) a replica dies; the manager notices and repairs ...")
    victim = next(iter(app.envelopes))
    app.kill_replica(victim)
    await app.manager.sweep()
    await asyncio.sleep(0.2)
    home = await fe.home("tour-user", "USD")
    print(f"   killed {victim}; app still serves ({len(home.products)} products)")

    print("\n4) what the runtime learned from the traffic:")
    for envelope in app.envelopes.values():
        for s in envelope.proclet.advisor.suggestions(min_calls=30):
            print(f"   {s}")

    print("\n5) the aggregated status report (Figure 3's dashboard):\n")
    print(render_status(app.manager, max_traces=1))

    await app.shutdown()
    print("\n6) shut down: envelopes stopped, proclets reaped.")


if __name__ == "__main__":
    asyncio.run(main())
