"""The live telemetry pipeline, end to end (§5.1, Figure 3).

Run:  python examples/observability_tour.py

The paper's manager aggregates metrics, traces, and logs from every
envelope; this tour shows what the runtime builds on top of that feed,
with no collector, agent, or sidecar to install:

1. deploy a two-component chain and drive steady load,
2. read the per-second time series the manager derives from heartbeats,
3. inject a client-side latency regression and watch the anomaly
   signals fire within seconds,
4. pivot from a latency histogram *exemplar* straight into the
   assembled cross-proclet trace, critical path included.
"""

import asyncio
import time

from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.registry import Registry
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.runtime.status import latency_exemplars, render_trace
from repro.testing.chaos import inject_latency


class Inventory(Component):
    async def check(self, sku: int) -> bool: ...


class InventoryImpl:
    async def check(self, sku: int) -> bool:
        await asyncio.sleep(0.002)  # pretend to consult storage
        return sku % 7 != 0


class Storefront(Component):
    async def view(self, sku: int) -> str: ...


class StorefrontImpl:
    async def init(self, ctx) -> None:
        self.inventory = ctx.get(Inventory)

    async def view(self, sku: int) -> str:
        await asyncio.sleep(0.001)  # render time
        stocked = await self.inventory.check(sku)
        return f"sku {sku}: {'in stock' if stocked else 'sold out'}"


def registry() -> Registry:
    reg = Registry()
    reg.register(Storefront, StorefrontImpl)
    reg.register(Inventory, InventoryImpl)
    return reg


async def main() -> None:
    app = await deploy_multiprocess(
        AppConfig(name="obs-tour"), registry=registry()
    )
    store = app.get(Storefront)
    stop = asyncio.Event()

    async def load() -> None:
        sku = 0
        while not stop.is_set():
            sku += 1
            await store.view(sku)
            await asyncio.sleep(0.01)

    driver = asyncio.ensure_future(load())
    try:
        print("=== 1. per-second time series (derived from heartbeats) ===")
        await asyncio.sleep(6)  # a few telemetry ticks of steady state
        for series, scope in app.manager.timeseries.names():
            latest = app.manager.timeseries.latest(series, scope)
            if latest is not None and "client" in series:
                print(f"  {series}[{scope}] = {latest:.2f}")

        print("\n=== 2. inject a 250 ms regression; wait for a signal ===")
        injection = inject_latency(app, 0.25)
        fired = []
        while not fired and time.monotonic() - injection.started_at < 10:
            fired = app.manager.signals.firing()
            await asyncio.sleep(0.1)
        took = time.monotonic() - injection.started_at
        injection.revert()
        for signal in fired:
            print(f"  FIRING after {took:.1f}s: {signal.key} — {signal.detail}")
        if not fired:
            print("  (no signal within 10s — unusually noisy host)")

        print("\n=== 3. exemplar -> trace drill-down ===")
        # Histogram buckets remember the last traced observation; any
        # entry here pivots from a metric straight to a kept trace.
        rendered = ""
        for _ in range(50):
            for entry in latency_exemplars(app.manager):
                spans = app.manager.tracer.trace(entry["trace_id"])
                if len(spans) >= 3:  # fully assembled cross-proclet tree
                    print(
                        f"  exemplar: {entry['metric']}[{entry['component']}] "
                        f"bucket<= {entry['bucket']} -> trace {entry['trace_id']:x}"
                    )
                    rendered = render_trace(app.manager, entry["trace_id"])
                    break
            if rendered:
                break
            await asyncio.sleep(0.2)
        print("\n".join(f"  {line}" for line in rendered.splitlines()))
    finally:
        stop.set()
        await driver
        await app.shutdown()
    print("\ntour complete: series -> signal -> trace")


if __name__ == "__main__":
    asyncio.run(main())
