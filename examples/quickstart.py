"""Quickstart: the paper's Figure 2 "Hello, World!" in Python.

Run:  python examples/quickstart.py

Declare an interface, mark an implementation, call through a stub.  The
same code deploys unchanged into any topology — here it runs single-process
(every call local), then as two OS-process-equivalents with a real RPC in
the middle.  The call site never changes.
"""

import asyncio

import repro


class Hello(repro.Component):
    """The component interface — the only thing callers see."""

    @repro.idempotent  # safe to retry/hedge: greeting twice is harmless
    async def greet(self, name: str) -> str: ...


@repro.implements(Hello)
class HelloImpl:
    """The implementation — never constructed or referenced by callers."""

    async def greet(self, name: str) -> str:
        return f"Hello, {name}!"


async def main() -> None:
    # --- single process: Init / Get / call (Figure 2) --------------------
    app = await repro.init(components=[Hello])
    hello = app.get(Hello)
    print(await hello.greet("World"))
    await app.shutdown()

    # --- same app, distributed: the call becomes an RPC invisibly --------
    from repro.runtime.deployers.multi import deploy_multiprocess

    app = await deploy_multiprocess(repro.AppConfig(name="hello"), components=[Hello])
    # Per-call resilience knobs live on the stub, not the transport: this
    # caller gets a 2s end-to-end deadline that shrinks hop by hop.
    hello = app.get(Hello).with_options(deadline_s=2.0)
    print(await hello.greet("distributed World"))
    proclets = [(p.proclet_id, p.address) for p in app.manager.proclets()]
    print(f"served by proclet {proclets[0][0]} at {proclets[0][1]}")
    await app.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
