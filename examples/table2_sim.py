"""Reproduce the paper's Table 2 from your terminal.

Run:  python examples/table2_sim.py [--qps 10000] [--sim-qps 1000] [--calibrate]

Pipeline (see DESIGN.md, experiments E1/E2):

1. run the real 11-component boutique once, recording each Locust request
   type's call tree, per-call business CPU, and per-codec payload bytes;
2. (optionally) re-measure this machine's serialization and transport
   costs instead of using the committed calibration;
3. simulate three deployments of those recordings on an autoscaled
   cluster: the microservice baseline (HTTP + tagged payloads, one
   process per service), the prototype (compact + custom TCP, same
   placement), and the prototype with all 11 components co-located;
4. print the Table-2 rows and the factors next to the paper's.
"""

import argparse
import asyncio

from repro.sim.costmodel import WEAVER_STACK, BASELINE_STACK, calibrate_stacks
from repro.sim.experiment import (
    DeploymentSpec,
    colocated_placement,
    record_boutique_mix,
    run_table2,
    singleton_placement,
    table2_specs,
)


async def main(qps: float, sim_qps: float, calibrate: bool) -> None:
    print("recording request mix from the real application ...")
    mix = await record_boutique_mix(repeats=3)
    for t in mix.types:
        print(
            f"  {t.name:12s} weight={t.weight:4.0f} calls={t.tree.total_calls() - 1:3d} "
            f"logic={t.tree.total_self_cpu_s() * 1e3:6.2f}ms "
            f"bytes compact/tagged={t.tree.total_bytes('compact')}/{t.tree.total_bytes('tagged')}"
        )

    specs = None
    if calibrate:
        print("\ncalibrating data-plane costs on this machine ...")
        from repro.codegen.schema import schema_of
        from repro.boutique.types import HomePage

        samples = [(schema_of(str), "calibration-key")]
        stacks = calibrate_stacks(samples)
        specs = [
            DeploymentSpec("baseline", stacks["baseline"], singleton_placement()),
            DeploymentSpec("prototype", stacks["weaver"], singleton_placement()),
            DeploymentSpec("prototype-colocated", stacks["weaver"], colocated_placement()),
        ]

    print(f"\nsimulating at {sim_qps:.0f} QPS, reporting at {qps:.0f} QPS ...")
    reports = run_table2(mix, qps=qps, sim_qps=sim_qps, duration_s=12, warmup_s=3, specs=specs)

    print(f"\n{'deployment':<22s} {'qps':>8s} {'cores':>8s} {'median':>10s} {'p95':>10s}")
    for label in ("prototype", "baseline", "prototype-colocated"):
        r = reports[label]
        print(
            f"{label:<22s} {r.qps:>8.0f} {r.average_cores:>8.0f} "
            f"{r.median_latency_ms:>8.2f}ms {r.p95_latency_ms:>8.2f}ms"
        )

    b, p, c = reports["baseline"], reports["prototype"], reports["prototype-colocated"]
    print("\nfactors (ours vs paper):")
    print(f"  cores   baseline/prototype : {b.average_cores / p.average_cores:5.2f}x   (paper 2.8x)")
    print(f"  latency baseline/prototype : {b.median_latency_ms / p.median_latency_ms:5.2f}x   (paper 2.1x)")
    print(f"  cores   baseline/colocated : {b.average_cores / c.average_cores:5.2f}x   (paper 8.7x)")
    print(f"  latency baseline/colocated : {b.median_latency_ms / c.median_latency_ms:5.2f}x   (paper 14.4x)")
    print(
        "\n(absolute values are Python-speed; factors are compressed by Python's\n"
        " heavier business logic — see EXPERIMENTS.md for the full discussion)"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qps", type=float, default=10_000)
    parser.add_argument("--sim-qps", type=float, default=1_000)
    parser.add_argument("--calibrate", action="store_true")
    args = parser.parse_args()
    asyncio.run(main(args.qps, args.sim_qps, args.calibrate))
