"""Online Boutique on the multiprocess runtime — the paper's §6.1 app, live.

Run:  python examples/boutique_demo.py [--subprocess]

Deploys the 11-component application (each component in its own process
with ``--subprocess``, or in-process proclets by default), drives a burst
of the Locust request mix against the live deployment, then prints what
the global manager saw: replicas, the merged call graph's chatty pairs and
critical path, latency metrics, and the aggregated structured log.
"""

import argparse
import asyncio

from repro.boutique import ALL_COMPONENTS, Frontend
from repro.core.config import AppConfig
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.sim.realtime import drive_boutique


async def main(mode: str) -> None:
    config = AppConfig(name="boutique")
    print(f"deploying 11 components, mode={mode} ...")
    app = await deploy_multiprocess(config, components=ALL_COMPONENTS, mode=mode)
    print(f"deployment version {app.version}, {app.manager.total_replicas()} proclets:")
    for info in app.manager.proclets():
        hosted = await app.manager.components_to_host(info.proclet_id)
        short = ", ".join(h.rsplit(".", 1)[-1] for h in hosted)
        print(f"  {info.proclet_id:24s} {info.address:28s} hosts {short}")

    print("\ndriving the Locust mix at ~80 QPS for 3 seconds ...")
    result = await drive_boutique(app, qps=80, duration_s=3.0, users=10)
    print(
        f"requests={result.requests} errors={result.errors} "
        f"median={result.median_latency_ms:.2f}ms p95={result.p95_latency_ms:.2f}ms"
    )

    # Give heartbeats a moment to ship telemetry to the manager.
    await asyncio.sleep(0.5)

    graph = app.manager.call_graph
    print("\nchattiest component pairs (co-location candidates, §5.1):")
    for caller, callee, calls in graph.chatty_pairs(5):
        print(f"  {caller.rsplit('.', 1)[-1]:16s} -> {callee.rsplit('.', 1)[-1]:16s} {calls:6d} calls")

    print("\ncritical path:", " -> ".join(c.rsplit(".", 1)[-1] for c in graph.critical_path()))

    latency = app.manager.metrics.histogram("component_method_latency_s")
    cell = latency.get(component="repro.boutique.frontend.Frontend", method="home")
    if cell.count:
        print(
            f"\nFrontend.home server-side: n={cell.count} "
            f"p50={cell.quantile(0.5) * 1000:.2f}ms p99={cell.quantile(0.99) * 1000:.2f}ms"
        )

    orders = app.manager.logs.merged(component="repro.boutique.frontend.Frontend")
    print(f"structured log records aggregated from proclets: {len(app.manager.logs)}")
    for record in orders[:3]:
        print(f"  [{record.level}] {record.component.rsplit('.', 1)[-1]}: {record.message} {dict(record.attributes)}")

    await app.shutdown()
    print("\nshut down cleanly.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--subprocess",
        action="store_true",
        help="run every proclet as a real child OS process",
    )
    args = parser.parse_args()
    asyncio.run(main("subprocess" if args.subprocess else "inproc"))
