"""Distributed tracing across component calls.

Because the whole application is one logical program, tracing needs no
header-propagation protocol between teams: the framework stamps every stub
invocation with the ambient trace context (a ``contextvars`` value that
flows through ``await`` naturally) and the manager can assemble exact call
trees — the "bird's-eye view" the paper leans on for placement and
debugging (§5.1, Figure 3).
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

# Trace/span ids must be unique *across processes* (spans from many
# proclets merge into one tree at the manager), so they are random 63-bit
# values rather than a per-process counter.  A fork copies this module's
# RNG state into the child, so parent and child would emit identical id
# sequences; reseed from the OS entropy pool in every new process.
_id_rng = random.Random()


def _seed_rng() -> None:
    _id_rng.seed(int.from_bytes(os.urandom(16), "big") ^ os.getpid())


_seed_rng()
if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_seed_rng)


# Bound method, not the module-global Random: seeding mutates the instance
# in place, so the binding survives the after-fork reseed.
_getrandbits = _id_rng.getrandbits


def _new_id() -> int:
    return _getrandbits(63) | 1  # never zero: zero means "absent"


_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)


@dataclass(slots=True)
class Span:
    """One timed operation within a trace."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class Tracer:
    """Creates spans and collects finished ones.

    ``trace_rate`` enables *adaptive head sampling*: new traces are
    admitted through a token bucket (``trace_rate`` traces/s, burst
    ``trace_burst``), so low-rate traffic — tests, interactive use — is
    always fully traced while a saturated hot path pays span cost for at
    most a bounded rate of traces.  Metrics are unaffected (histograms
    and counters record every call), sampled-out traces are counted in
    ``unsampled``, and the manager's tail sampler still decides what to
    *retain* among the traces that arrive.  ``trace_rate=None`` (the
    default, used by directly-constructed tracers) traces everything.
    """

    def __init__(
        self,
        max_spans: int = 100_000,
        *,
        trace_rate: Optional[float] = None,
        trace_burst: Optional[float] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._max_spans = max_spans
        #: Spans discarded because the buffer was full.  Exported as a
        #: metric by the proclet heartbeat — truncation is never silent.
        self.dropped = 0
        #: Traces never started because the head sampler was out of
        #: tokens.  Also exported by the heartbeat.
        self.unsampled = 0
        self._trace_rate = trace_rate
        self._trace_burst = (
            trace_burst if trace_burst is not None else max(2 * (trace_rate or 0), 64.0)
        )
        self._tokens = self._trace_burst
        self._token_t = time.monotonic()

    def _take_token(self) -> bool:
        # Approximate under concurrent callers by design: a lock here
        # would cost more than an occasional extra sampled trace.
        now = time.monotonic()
        tokens = min(
            self._trace_burst,
            self._tokens + (now - self._token_t) * self._trace_rate,
        )
        self._token_t = now
        if tokens >= 1.0:
            self._tokens = tokens - 1.0
            return True
        self._tokens = tokens
        return False

    def start_span(
        self,
        name: str,
        *,
        remote_parent: Optional[tuple[int, int]] = None,
        **attributes: Any,
    ) -> "ActiveSpan":
        """Open a span under the ambient parent, or under ``remote_parent``.

        ``remote_parent`` is a ``(trace_id, span_id)`` pair received over
        the wire — how a callee proclet joins the caller's trace.
        """
        if remote_parent is not None and remote_parent[0]:
            trace_id, parent_id = remote_parent
        else:
            parent = _current_span.get()
            if parent is None:
                if self._trace_rate is not None and not self._take_token():
                    self.unsampled += 1
                    return _NoopActiveSpan()
                trace_id = _new_id()
                parent_id = None
            elif parent.trace_id == 0:
                # Inside an unsampled trace: stay unsampled, and skip even
                # the per-use noop (the ambient sentinel is already set).
                return _NESTED_NOOP
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
        # ``attributes`` is already a fresh dict (it's **kwargs) — no copy.
        span = Span(
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            name=name,
            start_s=time.time(),
            attributes=attributes,
        )
        return ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end_s = time.time()
        with self._lock:
            if len(self._finished) < self._max_spans:
                self._finished.append(span)
            else:
                self.dropped += 1

    def record_span(
        self,
        name: str,
        *,
        trace: tuple[int, Optional[int]],
        start_s: float,
        end_s: float,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record an already-timed span retroactively.

        Used where opening a context manager per event would tax the hot
        path — e.g. per-attempt RPC spans that are only materialised for
        retries and failures.
        """
        span = Span(
            trace_id=trace[0] or _new_id(),
            span_id=_new_id(),
            parent_id=trace[1] or None,
            name=name,
            start_s=start_s,
            end_s=end_s,
            attributes=attributes,
            status=status,
        )
        with self._lock:
            if len(self._finished) < self._max_spans:
                self._finished.append(span)
            else:
                self.dropped += 1
        return span

    # -- queries --------------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def traces(self) -> dict[int, list[Span]]:
        out: dict[int, list[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def trace_tree(self, trace_id: int) -> list[tuple[int, Span]]:
        """The spans of one trace as (depth, span), pre-order.

        Spans whose parent has not been collected (e.g. its proclet has
        not shipped a heartbeat yet) are rendered as roots rather than
        dropped — a partial distributed trace is still a trace.
        """
        return assemble_tree(self.traces().get(trace_id, []))

    def drain(self) -> list[Span]:
        """Remove and return finished spans (proclets ship increments)."""
        with self._lock:
            out = list(self._finished)
            self._finished.clear()
            return out

    def ingest(self, spans: list[Span]) -> None:
        """Manager-side merge of spans shipped from proclets."""
        with self._lock:
            room = self._max_spans - len(self._finished)
            self._finished.extend(spans[:room])
            if len(spans) > room:
                self.dropped += len(spans) - room

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()


class ActiveSpan:
    """Context manager binding a span to the ambient context."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _current_span.set(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes["exception"] = repr(exc)
        if self._token is not None:
            _current_span.reset(self._token)
        self._tracer._finish(self.span)


#: Ambient marker for "this request is inside an unsampled trace".  Its
#: zero ids make ``current_context()`` report (0, 0) — nothing propagates
#: over the wire — and zero exemplar ids keep histograms exemplar-free
#: for unsampled calls.
_UNSAMPLED = Span(
    trace_id=0, span_id=0, parent_id=None, name="unsampled", start_s=0.0
)


class _NoopActiveSpan:
    """Stand-in for ActiveSpan on unsampled roots: binds the sentinel."""

    __slots__ = ("_token",)
    span = _UNSAMPLED

    def __enter__(self) -> Span:
        self._token = _current_span.set(_UNSAMPLED)
        return _UNSAMPLED

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        _current_span.reset(self._token)


class _NestedNoopSpan:
    """Shared no-op for spans nested inside an unsampled trace."""

    __slots__ = ()
    span = _UNSAMPLED

    def __enter__(self) -> Span:
        return _UNSAMPLED

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NESTED_NOOP = _NestedNoopSpan()


def assemble_tree(spans: list[Span]) -> list[tuple[int, Span]]:
    """Assemble spans into (depth, span) pre-order, tolerating orphans."""
    known = {s.span_id for s in spans}
    children: dict[Optional[int], list[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in known else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start_s)
    out: list[tuple[int, Span]] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for s in children.get(parent, ()):
            out.append((depth, s))
            walk(s.span_id, depth + 1)

    walk(None, 0)
    return out


def current_span() -> Optional[Span]:
    """The span active in this task's context, if any."""
    return _current_span.get()


#: Process-wide default tracer.
DEFAULT = Tracer()


def current_context() -> tuple[int, int]:
    """The ambient (trace_id, span_id), or (0, 0) outside any span.

    This is what the RPC layer stamps onto outgoing requests so callee
    proclets can join the trace (the cross-process propagation the paper
    gets "for free" from the single-program model).
    """
    span = _current_span.get()
    if span is None:
        return (0, 0)
    return (span.trace_id, span.span_id)


def spans_to_wire(spans: list[Span]) -> list[dict]:
    """JSON-able form for the proclet -> manager telemetry pipe."""
    return [
        {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "start_s": s.start_s,
            "end_s": s.end_s,
            "attributes": dict(s.attributes),
            "status": s.status,
        }
        for s in spans
    ]


def spans_from_wire(raw: list[dict]) -> list[Span]:
    return [
        Span(
            trace_id=e["trace_id"],
            span_id=e["span_id"],
            parent_id=e.get("parent_id"),
            name=e["name"],
            start_s=e["start_s"],
            end_s=e["end_s"],
            attributes=dict(e.get("attributes", {})),
            status=e.get("status", "ok"),
        )
        for e in raw
    ]
