"""Trace store v2: tail-based sampling, bounded retention, call trees.

The manager used to keep a flat, truncate-on-full span list.  This store
buffers spans per trace while the trace is still arriving (spans from
different proclets ship on independent heartbeats), and makes the keep
decision only once the trace has gone quiet — *tail-based* sampling, so
the decision can look at the whole tree:

* always keep traces containing an error or deadline-exceeded span,
* always keep traces whose root lands in the slow tail (above a rolling
  duration percentile),
* otherwise keep with probability ``sample_rate``.

Retention is bounded (``max_traces`` kept traces, oldest evicted) and
every discard path is counted — sampling and eviction are policies, not
silent data loss.  Query API is a superset of the old ``Tracer`` surface
(``spans``/``traces``/``trace_tree``/``ingest``/``reset``) plus
critical-path analysis over assembled cross-proclet trees.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.observability.metrics import HistogramValue
from repro.observability.tracing import Span, assemble_tree

#: Error statuses / codes that force a trace to be kept.
_ERROR_STATUSES = ("error",)
_ERROR_CODES = ("deadline_exceeded",)


@dataclass
class _Pending:
    spans: list[Span] = field(default_factory=list)
    last_seen: float = 0.0


class TraceStore:
    """Tail-sampling, bounded trace storage on the manager."""

    def __init__(
        self,
        *,
        max_traces: int = 2000,
        sample_rate: float = 1.0,
        quiescence_s: float = 1.0,
        slow_percentile: float = 0.95,
        slow_margin: float = 1.25,
        max_spans_per_trace: int = 4000,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.max_traces = max_traces
        self.sample_rate = sample_rate
        self.quiescence_s = quiescence_s
        self.slow_percentile = slow_percentile
        #: The slow-tail rule requires root >= margin * p<slow_percentile>.
        #: Quantiles are bucket midpoints, so without a margin a perfectly
        #: uniform workload reads as "everything is at p95" and the rule
        #: would keep every trace.
        self.slow_margin = slow_margin
        self.max_spans_per_trace = max_spans_per_trace
        self._rng = rng or random.Random()
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: "OrderedDict[int, _Pending]" = OrderedDict()
        self._kept: "OrderedDict[int, list[Span]]" = OrderedDict()
        # Rolling distribution of finalized root durations: the basis of
        # the "slow tail" keep rule.
        self._root_durations = HistogramValue(
            tuple(50e-6 * 2**i for i in range(21))
        )
        # Slow-tail threshold, refreshed every ``_threshold_every`` roots:
        # scanning histogram buckets per finalized trace is measurable at
        # high trace rates, and the rolling p95 moves slowly.
        self._slow_threshold = float("inf")
        self._threshold_every = 32
        # Negative start: the first eligible finalize computes immediately.
        self._threshold_at = -32
        # Drop accounting — everything discarded is counted somewhere.
        self.kept_traces = 0
        self.sampled_out_traces = 0
        self.sampled_out_spans = 0
        self.evicted_traces = 0
        self.evicted_spans = 0
        self.dropped_spans = 0  # over the per-trace span cap

    # -- ingest ---------------------------------------------------------------

    def ingest(self, spans: list[Span]) -> None:
        now = self._clock()
        with self._lock:
            for span in spans:
                pending = self._pending.get(span.trace_id)
                if pending is None:
                    # Re-opened kept trace (late spans): append directly.
                    kept = self._kept.get(span.trace_id)
                    if kept is not None:
                        if len(kept) < self.max_spans_per_trace:
                            kept.append(span)
                        else:
                            self.dropped_spans += 1
                        continue
                    pending = _Pending()
                    # A fresh entry lands at the end already; only traces
                    # that were pending before need re-ordering.
                    self._pending[span.trace_id] = pending
                else:
                    self._pending.move_to_end(span.trace_id)
                if len(pending.spans) < self.max_spans_per_trace:
                    pending.spans.append(span)
                else:
                    self.dropped_spans += 1
                pending.last_seen = now
            # Bound the pending set: finalize the stalest early.
            while len(self._pending) > self.max_traces:
                trace_id, pending = self._pending.popitem(last=False)
                self._finalize(trace_id, pending)

    def maintain(self, now: Optional[float] = None) -> None:
        """Finalize traces quiet for longer than ``quiescence_s``."""
        now = self._clock() if now is None else now
        with self._lock:
            ripe = [
                tid
                for tid, p in self._pending.items()
                if now - p.last_seen >= self.quiescence_s
            ]
            for tid in ripe:
                self._finalize(tid, self._pending.pop(tid))

    def _finalize(self, trace_id: int, pending: _Pending) -> None:
        spans = pending.spans
        root = _root_of(spans)
        if root is not None:
            self._root_durations.observe(root.duration_s)
        if self._should_keep(spans, root):
            self._kept[trace_id] = spans
            self._kept.move_to_end(trace_id)
            self.kept_traces += 1
            while len(self._kept) > self.max_traces:
                _, evicted = self._kept.popitem(last=False)
                self.evicted_traces += 1
                self.evicted_spans += len(evicted)
        else:
            self.sampled_out_traces += 1
            self.sampled_out_spans += len(spans)

    def _should_keep(self, spans: list[Span], root: Optional[Span]) -> bool:
        for span in spans:
            if span.status in _ERROR_STATUSES:
                return True
            code = span.attributes.get("code")
            if code in _ERROR_CODES:
                return True
        if root is not None and self._root_durations.count >= 20:
            if self._root_durations.count - self._threshold_at >= self._threshold_every:
                self._slow_threshold = self.slow_margin * self._root_durations.quantile(
                    self.slow_percentile
                )
                self._threshold_at = self._root_durations.count
            if root.duration_s >= self._slow_threshold:
                return True
        if self.sample_rate >= 1.0:
            return True
        return self._rng.random() < self.sample_rate

    # -- queries (Tracer-compatible surface + extensions) ---------------------

    def spans(self) -> list[Span]:
        with self._lock:
            out: list[Span] = []
            for spans in self._kept.values():
                out.extend(spans)
            for pending in self._pending.values():
                out.extend(pending.spans)
            return out

    def traces(self) -> dict[int, list[Span]]:
        with self._lock:
            out: dict[int, list[Span]] = {
                tid: list(spans) for tid, spans in self._kept.items()
            }
            for tid, pending in self._pending.items():
                out.setdefault(tid, []).extend(pending.spans)
            return out

    def trace(self, trace_id: int) -> list[Span]:
        with self._lock:
            out = list(self._kept.get(trace_id, ()))
            pending = self._pending.get(trace_id)
            if pending is not None:
                out.extend(pending.spans)
            return out

    def trace_tree(self, trace_id: int) -> list[tuple[int, Span]]:
        return assemble_tree(self.trace(trace_id))

    def critical_path(self, trace_id: int) -> list[tuple[Span, float]]:
        """The chain of spans that bounds the trace's wall time.

        Walks from the root, at each step descending into the child that
        *finishes last* (the one the parent waits on).  Returns
        ``(span, exclusive_s)`` pairs where exclusive time is the span's
        duration not covered by its on-path child — where the time
        actually went.
        """
        spans = self.trace(trace_id)
        if not spans:
            return []
        known = {s.span_id: s for s in spans}
        children: dict[int, list[Span]] = {}
        roots: list[Span] = []
        for s in spans:
            if s.parent_id in known:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)
        root = max(roots, key=lambda s: s.duration_s)
        path = [root]
        while children.get(path[-1].span_id):
            path.append(max(children[path[-1].span_id], key=lambda s: s.end_s))
        out: list[tuple[Span, float]] = []
        for i, span in enumerate(path):
            child = path[i + 1] if i + 1 < len(path) else None
            exclusive = span.duration_s - (child.duration_s if child else 0.0)
            out.append((span, max(0.0, exclusive)))
        return out

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._kept.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "kept": len(self._kept),
                "pending": len(self._pending),
                "kept_traces": self.kept_traces,
                "sampled_out_traces": self.sampled_out_traces,
                "sampled_out_spans": self.sampled_out_spans,
                "evicted_traces": self.evicted_traces,
                "evicted_spans": self.evicted_spans,
                "dropped_spans": self.dropped_spans,
                "sample_rate": self.sample_rate,
            }


def _root_of(spans: list[Span]) -> Optional[Span]:
    if not spans:
        return None
    known = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id not in known]
    if not roots:
        return None
    return max(roots, key=lambda s: s.duration_s)
