"""Anomaly and SLO burn-rate signals over the telemetry time series.

Two detector families, both cheap enough to run every telemetry tick:

* :class:`EwmaDetector` — an exponentially-weighted mean/variance tracker
  with a z-score trigger, watched over error-rate and p99 series.  The
  baseline *freezes* while a signal fires, so an incident does not get
  absorbed into "normal" and silently un-fire.
* :class:`Slo` — Google-SRE-style multi-window burn rates: a signal fires
  only when both a fast window (seconds — catches onset quickly) and a
  slow window (tens of seconds — filters blips) burn error budget faster
  than their thresholds.

The :class:`SignalBoard` owns both, publishes machine-readable state
(``to_wire``), and keeps a bounded transition log.  This is the input
surface ROADMAP item 2's remediation controller consumes.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability.timeseries import TimeSeriesStore


@dataclass
class Signal:
    """One evaluated detector: its current verdict plus the evidence."""

    kind: str  # "anomaly" | "slo"
    name: str  # e.g. "p99_ms" or "availability"
    scope: str  # component name or "_total"
    firing: bool
    value: float
    baseline: float
    detail: str
    since: Optional[float] = None  # wall time the current firing began

    @property
    def key(self) -> str:
        return f"{self.kind}:{self.name}:{self.scope}"

    def to_wire(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "scope": self.scope,
            "firing": self.firing,
            "value": round(self.value, 6),
            "baseline": round(self.baseline, 6),
            "detail": self.detail,
            "since": self.since,
        }


class EwmaDetector:
    """EWMA mean/variance with a z-score trigger and frozen-while-firing baseline."""

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        z_threshold: float = 3.0,
        min_ratio: float = 1.5,
        min_value: float = 0.0,
        min_samples: int = 5,
    ) -> None:
        self.alpha = alpha
        self.z_threshold = z_threshold
        #: Guard against firing on microscopic absolute moves: the value
        #: must also exceed baseline * min_ratio and an absolute floor.
        self.min_ratio = min_ratio
        self.min_value = min_value
        self.min_samples = min_samples
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0
        self.firing = False
        self.since: Optional[float] = None
        self.last_z = 0.0

    def update(self, value: float, now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        diff = value - self.mean
        std = math.sqrt(self.var)
        z = diff / std if std > 1e-12 else (math.inf if diff > 1e-12 else 0.0)
        warmed = self.samples >= self.min_samples
        anomalous = (
            warmed
            and z >= self.z_threshold
            and value >= self.mean * self.min_ratio
            and value >= self.min_value
        )
        self.last_z = z if math.isfinite(z) else 99.0
        if anomalous:
            if not self.firing:
                self.firing = True
                self.since = now
            # Baseline frozen: the anomaly must not become the new normal.
            return True
        self.firing = False
        self.since = None
        if self.samples == 0:
            self.mean = value
        else:
            incr = self.alpha * diff
            self.mean += incr
            self.var = (1 - self.alpha) * (self.var + self.alpha * diff * diff)
        self.samples += 1
        return False


@dataclass
class Slo:
    """A service-level objective evaluated as multi-window burn rates.

    ``bad/good`` name series in the store recording per-tick counts; the
    budget is the allowed long-run bad fraction (0.01 == 99% objective).
    Burn rate = (windowed bad fraction) / budget; 1.0 burns the budget
    exactly at the sustainable pace.
    """

    name: str
    good: str  # series of per-tick totals, e.g. "requests"
    bad: str  # series of per-tick bad counts, e.g. "errors"
    budget: float = 0.01
    fast_window_s: float = 5.0
    slow_window_s: float = 30.0
    fast_burn: float = 10.0
    slow_burn: float = 3.0
    scope: str = "_total"
    _since: Optional[float] = field(default=None, repr=False)

    def evaluate(self, store: TimeSeriesStore, now: Optional[float] = None) -> Signal:
        now = time.time() if now is None else now
        burns = []
        for window in (self.fast_window_s, self.slow_window_s):
            total = store.series(self.good, self.scope).window_sum(window, now)
            bad = store.series(self.bad, self.scope).window_sum(window, now)
            frac = bad / total if total > 0 else 0.0
            burns.append(frac / self.budget if self.budget > 0 else 0.0)
        fast, slow = burns
        firing = fast >= self.fast_burn and slow >= self.slow_burn
        if firing and self._since is None:
            self._since = now
        elif not firing:
            self._since = None
        return Signal(
            kind="slo",
            name=self.name,
            scope=self.scope,
            firing=firing,
            value=fast,
            baseline=self.fast_burn,
            detail=(
                f"burn fast({self.fast_window_s:.0f}s)={fast:.1f}x "
                f"slow({self.slow_window_s:.0f}s)={slow:.1f}x "
                f"(fire at {self.fast_burn:.0f}x/{self.slow_burn:.0f}x, "
                f"budget {self.budget:.2%})"
            ),
            since=self._since,
        )


#: (series name, detector kwargs) pairs the board watches per scope.
DEFAULT_ANOMALY_SERIES: tuple[tuple[str, dict], ...] = (
    ("error_rate", {"min_value": 0.02, "min_ratio": 2.0}),
    ("p99_ms", {"min_value": 1.0}),
    ("client_p99_ms", {"min_value": 1.0}),
)


def default_slos(
    *, error_budget: float = 0.01, latency_budget: float = 0.05
) -> list[Slo]:
    return [
        Slo(name="availability", good="requests", bad="errors", budget=error_budget),
        Slo(name="latency", good="requests", bad="slow_requests", budget=latency_budget),
    ]


class SignalBoard:
    """Evaluates every detector each tick and keeps the current picture."""

    def __init__(
        self,
        store: TimeSeriesStore,
        *,
        slos: Optional[list[Slo]] = None,
        anomaly_series: tuple[tuple[str, dict], ...] = DEFAULT_ANOMALY_SERIES,
        max_events: int = 200,
    ) -> None:
        self.store = store
        self.slos = default_slos() if slos is None else slos
        self._anomaly_series = anomaly_series
        self._detectors: dict[tuple[str, str], EwmaDetector] = {}
        self._signals: dict[str, Signal] = {}
        self.events: deque[dict[str, Any]] = deque(maxlen=max_events)

    def evaluate(self, now: Optional[float] = None) -> list[Signal]:
        now = time.time() if now is None else now
        fresh: list[Signal] = []
        scopes_by_series: dict[str, list[str]] = {}
        for name, scope in self.store.names():
            scopes_by_series.setdefault(name, []).append(scope)
        for series, kwargs in self._anomaly_series:
            for scope in scopes_by_series.get(series, []):
                ring = self.store.series(series, scope)
                point = ring.latest()
                if point is None:
                    continue
                det = self._detectors.get((series, scope))
                if det is None:
                    det = EwmaDetector(**kwargs)
                    self._detectors[(series, scope)] = det
                det.update(point.value, now)
                fresh.append(
                    Signal(
                        kind="anomaly",
                        name=series,
                        scope=scope,
                        firing=det.firing,
                        value=point.value,
                        baseline=det.mean,
                        detail=f"z={det.last_z:.1f} ewma={det.mean:.3f} n={det.samples}",
                        since=det.since,
                    )
                )
        for slo in self.slos:
            fresh.append(slo.evaluate(self.store, now))
        for signal in fresh:
            previous = self._signals.get(signal.key)
            if (previous.firing if previous else False) != signal.firing:
                self.events.append(
                    {
                        "ts": now,
                        "key": signal.key,
                        "firing": signal.firing,
                        "detail": signal.detail,
                    }
                )
            self._signals[signal.key] = signal
        return fresh

    def signals(self) -> list[Signal]:
        return list(self._signals.values())

    def firing(self) -> list[Signal]:
        return [s for s in self._signals.values() if s.firing]

    def to_wire(self) -> dict[str, Any]:
        return {
            "signals": [s.to_wire() for s in self.signals()],
            "firing": [s.key for s in self.firing()],
            "events": list(self.events),
        }
