"""Metrics: counters, gauges, and histograms with labels.

Figure 3 shows the manager aggregating "metrics, traces, logs" from every
envelope.  This module is the in-process half: components and the framework
record into a :class:`MetricsRegistry`; envelopes snapshot it and ship it to
the manager, which merges snapshots across proclets
(:meth:`MetricsRegistry.merge_snapshot`).

Histograms use fixed exponential buckets, so merging across processes is
exact (same bucket boundaries everywhere) and quantile estimates are cheap.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

Labels = tuple[tuple[str, str], ...]


def _labels(kwargs: dict[str, str]) -> Labels:
    return tuple(sorted(kwargs.items()))


#: Default latency-oriented buckets: 50µs .. ~105s, exponential x2.
DEFAULT_BUCKETS = tuple(50e-6 * 2**i for i in range(21))


@dataclass
class CounterValue:
    value: float = 0.0


@dataclass
class GaugeValue:
    value: float = 0.0


@dataclass
class HistogramValue:
    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    #: bucket index -> (observed value, trace_id): the most recent traced
    #: observation that landed in that bucket.  A latency spike in bucket i
    #: pivots straight to ``exemplars[i]``'s trace.
    exemplars: dict[int, tuple[float, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float, exemplar: int = 0) -> None:
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.total += value
        self.count += 1
        if exemplar:
            self.exemplars[index] = (value, exemplar)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from bucket midpoints (upper bound bias)."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i == 0:
                    return self.buckets[0] / 2
                if i >= len(self.buckets):
                    return self.buckets[-1]
                return (self.buckets[i - 1] + self.buckets[i]) / 2
        return self.buckets[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramValue") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count
        self.exemplars.update(other.exemplars)


class BoundMetric:
    """One cell with its labels pre-resolved — the hot-path handle.

    ``Metric.inc/observe`` resolve the label set to a cell on every call
    (sort + tuple + dict lookup under the registry lock); call sites that
    record per-RPC bind the cell once and skip all of that.

    Bound updates are deliberately lock-free: each mutation is a single
    list/float operation the GIL keeps atomic, and snapshots are
    statistical — a reader may observe one in-flight observation's fields
    partially applied, which the next heartbeat's snapshot absorbs.
    """

    __slots__ = ("_cell",)

    def __init__(self, cell: Any) -> None:
        self._cell = cell

    def inc(self, value: float = 1.0) -> None:
        self._cell.value += value

    def set(self, value: float) -> None:
        self._cell.value = value

    def observe(self, value: float, exemplar: int = 0) -> None:
        self._cell.observe(value, exemplar)


class BoundHistogram(BoundMetric):
    """Histogram cell handle with the bucket math inlined."""

    __slots__ = ("_buckets", "_counts")

    def __init__(self, cell: HistogramValue) -> None:
        super().__init__(cell)
        self._buckets = cell.buckets
        self._counts = cell.counts

    def observe(self, value: float, exemplar: int = 0) -> None:
        index = bisect.bisect_left(self._buckets, value)
        self._counts[index] += 1
        cell = self._cell
        cell.total += value
        cell.count += 1
        if exemplar:
            cell.exemplars[index] = (value, exemplar)


class Metric:
    """One named metric family; label sets select time series within it."""

    def __init__(self, name: str, kind: str, registry: "MetricsRegistry", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.kind = kind
        self._registry = registry
        self._buckets = buckets

    def _cell(self, kwargs: dict[str, str]) -> Any:
        return self._registry._cell(self.name, self.kind, _labels(kwargs), self._buckets)

    # counter
    def inc(self, value: float = 1.0, **labels: str) -> None:
        cell = self._cell(labels)
        with self._registry._lock:
            cell.value += value

    # gauge
    def set(self, value: float, **labels: str) -> None:
        cell = self._cell(labels)
        with self._registry._lock:
            cell.value = value

    # histogram
    def observe(self, value: float, exemplar: int = 0, **labels: str) -> None:
        cell = self._cell(labels)
        with self._registry._lock:
            cell.observe(value, exemplar)

    def get(self, **labels: str) -> Any:
        return self._cell(labels)

    def bind(self, **labels: str) -> BoundMetric:
        """Pre-resolve one label set for per-call recording."""
        cell = self._cell(labels)
        if isinstance(cell, HistogramValue):
            return BoundHistogram(cell)
        return BoundMetric(cell)


class MetricsRegistry:
    """Thread-safe home of every metric in one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self._cells: dict[tuple[str, Labels], Any] = {}
        self._kinds: dict[str, str] = {}

    def counter(self, name: str) -> Metric:
        return self._metric(name, "counter")

    def gauge(self, name: str) -> Metric:
        return self._metric(name, "gauge")

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Metric:
        return self._metric(name, "histogram", buckets)

    def _metric(self, name: str, kind: str, buckets=DEFAULT_BUCKETS) -> Metric:
        with self._lock:
            existing = self._kinds.get(name)
            if existing is not None and existing != kind:
                raise ValueError(f"metric {name!r} already registered as {existing}")
            self._kinds[name] = kind
            metric = self._metrics.get(name)
            if metric is None:
                metric = Metric(name, kind, self, buckets)
                self._metrics[name] = metric
            return metric

    def _cell(self, name: str, kind: str, labels: Labels, buckets) -> Any:
        key = (name, labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                if kind == "counter":
                    cell = CounterValue()
                elif kind == "gauge":
                    cell = GaugeValue()
                else:
                    cell = HistogramValue(buckets)
                self._cells[key] = cell
            return cell

    # -- aggregation ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot, shipped envelope -> manager."""
        with self._lock:
            out: dict[str, Any] = {}
            for (name, labels), cell in self._cells.items():
                entry = {"labels": list(labels), "kind": self._kinds[name]}
                if isinstance(cell, (CounterValue, GaugeValue)):
                    entry["value"] = cell.value
                else:
                    entry["buckets"] = list(cell.buckets)
                    entry["counts"] = list(cell.counts)
                    entry["total"] = cell.total
                    entry["count"] = cell.count
                    if cell.exemplars:
                        # JSON object keys must be strings.
                        entry["exemplars"] = {
                            str(i): [v, tid] for i, (v, tid) in cell.exemplars.items()
                        }
                out.setdefault(name, []).append(entry)
            return out

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Merge a snapshot from another process into this registry."""
        for name, entries in snapshot.items():
            for entry in entries:
                kind = entry["kind"]
                labels = tuple(tuple(kv) for kv in entry["labels"])
                self._kinds.setdefault(name, kind)
                cell = self._cell(
                    name,
                    kind,
                    labels,
                    tuple(entry.get("buckets", DEFAULT_BUCKETS)),
                )
                with self._lock:
                    if kind == "counter":
                        cell.value += entry["value"]
                    elif kind == "gauge":
                        cell.value = entry["value"]
                    else:
                        incoming = HistogramValue(
                            tuple(entry["buckets"]),
                            list(entry["counts"]),
                            entry["total"],
                            entry["count"],
                            {
                                int(i): (v, tid)
                                for i, (v, tid) in entry.get("exemplars", {}).items()
                            },
                        )
                        cell.merge(incoming)

    def cells(self) -> dict[tuple[str, Labels], Any]:
        with self._lock:
            return dict(self._cells)


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render the registry in the Prometheus text exposition format.

    Figure 3's manager "aggregates metrics"; this is the standard way to
    hand them onward to an external scraper.  Histograms use the
    cumulative ``_bucket``/``_sum``/``_count`` convention.
    """
    lines: list[str] = []
    by_name: dict[str, list[tuple[Labels, Any]]] = {}
    for (name, labels), cell in registry.cells().items():
        by_name.setdefault(name, []).append((labels, cell))
    for name in sorted(by_name):
        kind = registry._kinds.get(name, "untyped")
        prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}[kind]
        lines.append(f"# TYPE {name} {prom_type}")
        for labels, cell in sorted(by_name[name]):
            label_str = _prom_labels(labels)
            if isinstance(cell, (CounterValue, GaugeValue)):
                lines.append(f"{name}{label_str} {_prom_num(cell.value)}")
            else:
                cumulative = 0
                for bound, count in zip(cell.buckets, cell.counts):
                    cumulative += count
                    le = _prom_labels(labels + (("le", _prom_num(bound)),))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += cell.counts[-1]
                inf = _prom_labels(labels + (("le", "+Inf"),))
                lines.append(f"{name}_bucket{inf} {cumulative}")
                lines.append(f"{name}_sum{label_str} {_prom_num(cell.total)}")
                lines.append(f"{name}_count{label_str} {cell.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _prom_escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Timer:
    """Context manager observing elapsed seconds into a histogram metric."""

    def __init__(self, metric: Metric, **labels: str) -> None:
        self._metric = metric
        self._labels = labels
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._metric.observe(self.elapsed, **self._labels)


#: Process-wide default registry (deployments may create private ones).
DEFAULT = MetricsRegistry()
