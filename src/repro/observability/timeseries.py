"""Per-second time series derived from the manager's telemetry tick.

The metrics pipe ships *cumulative* snapshots; trends live in the deltas.
Every tick (1s by default) the :class:`TelemetryPipeline` diffs the merged
deployment-wide registry against the previous tick and appends one point
per derived series — request rate, error rate, latency quantiles from
histogram bucket deltas, breaker trips, worker gauges — into bounded
ring buffers with a windowed query API.

This is the substrate the signal layer (EWMA anomaly detection, SLO burn
rates) and the live dashboard read from, and the input ROADMAP item 2's
remediation controller will consume.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.observability.metrics import HistogramValue, MetricsRegistry

#: Retention per series: ~10 minutes at one point per second.
DEFAULT_CAPACITY = 600


@dataclass
class Point:
    ts: float
    value: float


class RingSeries:
    """One bounded series of (timestamp, value) points."""

    __slots__ = ("name", "_capacity", "_ts", "_values", "_next", "_size")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self._capacity = capacity
        self._ts: list[float] = [0.0] * capacity
        self._values: list[float] = [0.0] * capacity
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, ts: float, value: float) -> None:
        self._ts[self._next] = ts
        self._values[self._next] = value
        self._next = (self._next + 1) % self._capacity
        self._size = min(self._size + 1, self._capacity)

    def points(self, since: float = 0.0) -> list[Point]:
        """Points with ts >= ``since``, oldest first."""
        out: list[Point] = []
        start = (self._next - self._size) % self._capacity
        for i in range(self._size):
            idx = (start + i) % self._capacity
            if self._ts[idx] >= since:
                out.append(Point(self._ts[idx], self._values[idx]))
        return out

    def values(self, last: Optional[int] = None) -> list[float]:
        pts = self.points()
        if last is not None:
            pts = pts[-last:]
        return [p.value for p in pts]

    def latest(self) -> Optional[Point]:
        if not self._size:
            return None
        idx = (self._next - 1) % self._capacity
        return Point(self._ts[idx], self._values[idx])

    def window_sum(self, window_s: float, now: Optional[float] = None) -> float:
        now = time.time() if now is None else now
        return sum(p.value for p in self.points(since=now - window_s))

    def window_mean(self, window_s: float, now: Optional[float] = None) -> float:
        now = time.time() if now is None else now
        pts = self.points(since=now - window_s)
        return sum(p.value for p in pts) / len(pts) if pts else 0.0


class TimeSeriesStore:
    """Keyed collection of ring series; the manager holds one per deployment.

    Keys are ``(series_name, scope)`` where scope is a component name or
    ``"_total"`` for the deployment-wide roll-up.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, str], RingSeries] = {}
        self._capacity = capacity

    def series(self, name: str, scope: str = "_total") -> RingSeries:
        key = (name, scope)
        with self._lock:
            s = self._series.get(key)
            if s is None:
                s = RingSeries(name, self._capacity)
                self._series[key] = s
            return s

    def record(self, name: str, scope: str, ts: float, value: float) -> None:
        self.series(name, scope).append(ts, value)

    def names(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._series)

    def query(
        self, name: str, scope: str = "_total", *, window_s: Optional[float] = None
    ) -> list[Point]:
        s = self.series(name, scope)
        if window_s is None:
            return s.points()
        latest = s.latest()
        anchor = latest.ts if latest else time.time()
        return s.points(since=anchor - window_s)

    def latest(self, name: str, scope: str = "_total") -> Optional[float]:
        p = self.series(name, scope).latest()
        return p.value if p else None

    def to_wire(self, *, last: int = 120) -> dict[str, Any]:
        """JSON-able tails of every series for dashboards and the CLI."""
        out: dict[str, Any] = {}
        for name, scope in self.names():
            pts = self.series(name, scope).points()[-last:]
            out.setdefault(name, {})[scope] = [
                [round(p.ts, 3), _round(p.value)] for p in pts
            ]
        return out


def _round(v: float) -> float:
    if not math.isfinite(v):
        return 0.0
    return round(v, 6)


# -- cumulative-snapshot differencing ----------------------------------------


def _component_of(labels: tuple[tuple[str, str], ...]) -> str:
    for k, v in labels:
        if k == "component":
            return v
    return "_unlabelled"


class TelemetryPipeline:
    """Turns successive merged metric registries into per-second series.

    ``tick(registry)`` diffs counters and histogram buckets against the
    previous tick (per cell, so replica churn cannot produce negative
    deltas as long as dead proclets' cumulative cells are retained — the
    manager keeps the last snapshot of every proclet it ever saw).
    """

    #: Histogram families diffed into latency series, keyed by prefix of
    #: the emitted series names: server-side method latency and the RPC
    #: client view (which sees retries, hedges and injected faults).
    LATENCY_FAMILIES = (
        ("component_method_latency_s", ""),
        ("rpc_client_latency_s", "client_"),
    )

    def __init__(self, store: TimeSeriesStore, *, slow_threshold_s: float = 0.25) -> None:
        self.store = store
        #: Latency SLO objective: a request slower than this is "bad".
        self.slow_threshold_s = slow_threshold_s
        self._last: dict[tuple[str, Any], Any] = {}
        self._last_ts: Optional[float] = None

    def tick(self, registry: MetricsRegistry, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        interval = now - self._last_ts if self._last_ts is not None else None
        self._last_ts = now
        if interval is not None and interval <= 0:
            return

        cells = registry.cells()
        requests: dict[str, float] = {}
        errors: dict[str, float] = {}
        trips: dict[str, float] = {"_total": 0.0}
        half_opens: dict[str, float] = {"_total": 0.0}
        drains: dict[str, float] = {"_total": 0.0}
        lat_deltas: dict[str, dict[str, HistogramValue]] = {}

        def _bump(per: dict[str, float], comp: str, d: float) -> None:
            per[comp] = per.get(comp, 0.0) + d
            per["_total"] += d

        for (name, labels), cell in cells.items():
            if name == "component_method_calls":
                d = self._delta(("c", name, labels), cell.value)
                comp = _component_of(labels)
                requests[comp] = requests.get(comp, 0.0) + d
                requests["_total"] = requests.get("_total", 0.0) + d
            elif name == "component_method_errors":
                d = self._delta(("c", name, labels), cell.value)
                comp = _component_of(labels)
                errors[comp] = errors.get(comp, 0.0) + d
                errors["_total"] = errors.get("_total", 0.0) + d
            elif name == "breaker_transitions":
                # Per-component first-class series, not just status
                # snapshots: trips and half-open probes are the breaker
                # evidence the remediation controller and dashboards read.
                to = dict(labels).get("to")
                if to == "open":
                    _bump(trips, _component_of(labels),
                          self._delta(("c", name, labels), cell.value))
                elif to == "half_open":
                    _bump(half_opens, _component_of(labels),
                          self._delta(("c", name, labels), cell.value))
            elif name == "replica_drains":
                _bump(drains, _component_of(labels),
                      self._delta(("c", name, labels), cell.value))
            elif name.startswith("worker_"):
                labelmap = dict(labels)
                scope = f"{labelmap.get('proclet', '?')}/w{labelmap.get('worker', '?')}"
                self.store.record(name, scope, now, cell.value)
            else:
                for family, prefix in self.LATENCY_FAMILIES:
                    if name == family and isinstance(cell, HistogramValue):
                        delta = self._hist_delta(("h", name, labels), cell)
                        comp = _component_of(labels)
                        per = lat_deltas.setdefault(prefix, {})
                        _merge_hist(per, comp, delta)
                        _merge_hist(per, "_total", delta)

        # First tick establishes the baseline; no deltas to record yet.
        if interval is None:
            return

        scopes = set(requests) | set(errors)
        for scope in scopes:
            req = requests.get(scope, 0.0)
            err = errors.get(scope, 0.0)
            self.store.record("requests", scope, now, req)
            self.store.record("errors", scope, now, err)
            self.store.record("rps", scope, now, req / interval)
            self.store.record("error_rate", scope, now, err / req if req else 0.0)
        for series_name, per in (
            ("breaker_trips", trips),
            ("breaker_half_opens", half_opens),
            ("drains", drains),
        ):
            for scope, value in per.items():
                self.store.record(series_name, scope, now, value)

        for prefix, per_scope in lat_deltas.items():
            for scope, hist in per_scope.items():
                if hist.count == 0:
                    continue
                for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    self.store.record(
                        f"{prefix}{label}_ms", scope, now, hist.quantile(q) * 1000.0
                    )
                if prefix == "":
                    self.store.record(
                        "slow_requests", scope, now, _slow_count(hist, self.slow_threshold_s)
                    )

    def _delta(self, key: tuple, value: float) -> float:
        prev = self._last.get(key, 0.0)
        self._last[key] = value
        return max(0.0, value - prev)

    def _hist_delta(self, key: tuple, cell: HistogramValue) -> HistogramValue:
        prev = self._last.get(key)
        counts = list(cell.counts)
        total, count = cell.total, cell.count
        if prev is not None:
            counts = [max(0, c - p) for c, p in zip(counts, prev[0])]
            total = max(0.0, total - prev[1])
            count = max(0, count - prev[2])
        self._last[key] = (list(cell.counts), cell.total, cell.count)
        return HistogramValue(cell.buckets, counts, total, count)


def _slow_count(hist: HistogramValue, threshold_s: float) -> float:
    """Observations in buckets wholly above ``threshold_s`` (plus overflow)."""
    slow = hist.counts[-1]
    for i in range(1, len(hist.buckets)):
        if hist.buckets[i - 1] >= threshold_s:
            slow += hist.counts[i]
    return float(slow)


def _merge_hist(per: dict[str, HistogramValue], scope: str, delta: HistogramValue) -> None:
    existing = per.get(scope)
    if existing is None:
        per[scope] = HistogramValue(
            delta.buckets, list(delta.counts), delta.total, delta.count
        )
    else:
        existing.merge(delta)


def sparkline(values: Iterable[float], width: int = 30) -> str:
    """Unicode sparkline of the last ``width`` values (dashboard helper)."""
    bars = "▁▂▃▄▅▆▇█"
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return bars[0] * len(vals)
    return "".join(bars[int((v - lo) / (hi - lo) * (len(bars) - 1))] for v in vals)
