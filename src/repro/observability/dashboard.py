"""Live deployment dashboard: ANSI terminal view + single-file HTML server.

The paper's Figure 3 puts a "Web UI / Debugging Tools" box on top of the
manager's aggregated telemetry; this module is that box.  One tiny HTTP
server (stdlib-only, asyncio streams) runs next to the manager and serves:

* ``/``               — a self-contained auto-refreshing HTML page
* ``/status.json``    — the machine-readable status (CLI / remediation)
* ``/dashboard.txt``  — the rendered text dashboard (``repro top`` body)
* ``/trace/<id>``     — one trace: call tree + critical path (text)
* ``/metrics``        — Prometheus text exposition

The terminal renderer (:func:`render_dashboard`) is the same content with
ANSI color, consumed by ``repro top``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Any, Optional

log = logging.getLogger("repro.observability.dashboard")

RESET = "\x1b[0m"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
RED = "\x1b[31m"
GREEN = "\x1b[32m"
YELLOW = "\x1b[33m"
CLEAR = "\x1b[2J\x1b[H"


def render_dashboard(manager: Any, *, color: bool = True, clear: bool = False) -> str:
    """The live terminal dashboard (one frame)."""
    from repro.runtime.status import (
        render_call_graph,
        render_header,
        render_latencies,
        render_remediation,
        render_replicas,
        render_signals,
        render_timeseries,
    )

    def paint(text: str, code: str) -> str:
        return f"{code}{text}{RESET}" if color else text

    firing = []
    board = getattr(manager, "signals", None)
    if board is not None:
        firing = board.firing()
    banner = (
        paint(f"◆ {len(firing)} SIGNAL(S) FIRING", RED + BOLD)
        if firing
        else paint("● all signals nominal", GREEN)
    )
    stamp = paint(time.strftime("%H:%M:%S"), DIM)
    sections = [
        f"{banner}   {stamp}",
        render_header(manager),
        render_signals(manager),
        render_remediation(manager),
        render_timeseries(manager),
        render_replicas(manager),
        render_latencies(manager),
        render_call_graph(manager),
    ]
    body = "\n\n".join(s for s in sections if s)
    return (CLEAR + body) if (clear and color) else body


_HTML = """<!doctype html>
<html><head><meta charset="utf-8"><title>repro dashboard</title>
<style>
 body { background:#101418; color:#d8dee9; font-family:ui-monospace,monospace;
        margin:1.5rem; }
 h1 { font-size:1.1rem; } .ok { color:#a3be8c; } .bad { color:#bf616a; }
 pre { background:#161b22; padding:1rem; border-radius:6px; overflow-x:auto; }
 table { border-collapse:collapse; margin:0.5rem 0; }
 td,th { padding:2px 10px; text-align:left; border-bottom:1px solid #2e3440; }
</style></head>
<body>
<h1>repro live dashboard <span id="state" class="ok">connecting…</span></h1>
<div id="signals"></div>
<div id="remediation"></div>
<pre id="body">loading…</pre>
<script>
async function tick() {
  try {
    const [txt, status] = await Promise.all([
      fetch('/dashboard.txt').then(r => r.text()),
      fetch('/status.json').then(r => r.json()),
    ]);
    document.getElementById('body').textContent = txt;
    const firing = (status.signals && status.signals.firing) || [];
    const state = document.getElementById('state');
    state.textContent = firing.length ? firing.length + ' signal(s) FIRING' : 'healthy';
    state.className = firing.length ? 'bad' : 'ok';
    let rows = '';
    for (const s of (status.signals ? status.signals.signals : [])) {
      rows += '<tr><td>' + (s.firing ? 'FIRING' : 'ok') + '</td><td>' +
              s.kind + ':' + s.name + '</td><td>' + s.scope + '</td><td>' +
              s.detail + '</td></tr>';
    }
    document.getElementById('signals').innerHTML =
      rows ? '<table><tr><th></th><th>signal</th><th>scope</th><th>detail</th></tr>' + rows + '</table>' : '';
    const rem = status.remediation;
    let remHtml = '';
    if (rem && (rem.mode !== 'off' || rem.journal.length)) {
      remHtml = '<p>remediation mode=<b>' + rem.mode + '</b>' +
        ' fired=' + (rem.counts.fired || 0) +
        ' observed=' + (rem.counts.observed || 0) +
        ' suppressed=' + (rem.counts.suppressed || 0) +
        ' budget=' + rem.budget.available + '/' + rem.budget.max_actions_per_min +
        '/min</p>';
      let arows = '';
      for (const a of rem.journal.slice(-8).reverse()) {
        arows += '<tr><td>' + a.verdict + '</td><td>' + a.action + '</td><td>' +
                 a.target + '</td><td>' + a.reason + '</td></tr>';
      }
      if (arows) {
        remHtml += '<table><tr><th>verdict</th><th>action</th><th>target</th>' +
                   '<th>reason</th></tr>' + arows + '</table>';
      }
    }
    document.getElementById('remediation').innerHTML = remHtml;
  } catch (e) {
    document.getElementById('state').textContent = 'disconnected';
    document.getElementById('state').className = 'bad';
  }
  setTimeout(tick, 1000);
}
tick();
</script>
</body></html>
"""


class DashboardServer:
    """Tiny stdlib HTTP server exposing the manager's live telemetry."""

    def __init__(self, manager: Any, *, host: str = "127.0.0.1") -> None:
        self.manager = manager
        self.host = host
        self._server: Optional[asyncio.AbstractServer] = None
        self.url = ""

    async def start(self, port: int = 0) -> str:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        actual = self._server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{actual}"
        log.info("dashboard serving at %s", self.url)
        return self.url

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain headers; requests are tiny and bodies are ignored.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            status, ctype, body = self._route(path.split("?", 1)[0])
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Cache-Control: no-store\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        except Exception:
            log.exception("dashboard request failed")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _route(self, path: str) -> tuple[str, str, str]:
        from repro.observability.metrics import render_prometheus
        from repro.runtime.status import render_trace, status_wire

        if path == "/":
            return "200 OK", "text/html", _HTML
        if path == "/status.json":
            return "200 OK", "application/json", json.dumps(status_wire(self.manager))
        if path == "/dashboard.txt":
            return (
                "200 OK",
                "text/plain",
                render_dashboard(self.manager, color=False),
            )
        if path == "/metrics":
            return "200 OK", "text/plain", render_prometheus(self.manager.metrics)
        if path.startswith("/trace/"):
            raw = path[len("/trace/") :]
            # Ids render as hex but status.json carries decimals; an
            # all-digit string is ambiguous, so try both and prefer the
            # reading that names a known trace.
            candidates: list[int] = []
            for base in (10, 16) if raw.isdigit() else (16,):
                try:
                    tid = int(raw, base)
                except ValueError:
                    continue
                if tid not in candidates:
                    candidates.append(tid)
            if not candidates:
                return "400 Bad Request", "text/plain", f"bad trace id {raw!r}\n"
            for tid in candidates:
                if self.manager.tracer.trace(tid):
                    return "200 OK", "text/plain", render_trace(self.manager, tid)
            return "200 OK", "text/plain", render_trace(self.manager, candidates[0])
        return "404 Not Found", "text/plain", f"no route {path!r}\n"


def fetch(url: str, timeout_s: float = 5.0) -> str:
    """Blocking GET helper for the CLI (stdlib only)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout_s) as resp:  # noqa: S310 (local dashboard)
        return resp.read().decode("utf-8")


def fetch_json(url: str, timeout_s: float = 5.0) -> Any:
    return json.loads(fetch(url, timeout_s))
