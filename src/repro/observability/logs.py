"""Structured, component-attributed logging.

Each proclet captures its components' log records in a ring buffer; the
envelope drains the buffer and forwards records to the manager, which can
present one merged, time-ordered log for the whole deployment — a single
binary's worth of operational surface for an n-component application (§4.3,
Figure 3; this is one of the "it is hard to manage" C3 pains the paper
eliminates).
"""

from __future__ import annotations

import collections
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class LogRecord:
    """One structured record, cheap to serialize for the control plane."""

    timestamp: float
    level: str
    component: str
    replica_id: int
    message: str
    attributes: tuple[tuple[str, Any], ...] = ()


class LogBuffer:
    """Bounded ring buffer of structured records (per proclet)."""

    def __init__(self, capacity: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._records: collections.deque[LogRecord] = collections.deque(maxlen=capacity)
        self.dropped = 0

    def append(self, record: LogRecord) -> None:
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)

    def drain(self) -> list[LogRecord]:
        """Remove and return everything buffered (envelope poll)."""
        with self._lock:
            out = list(self._records)
            self._records.clear()
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class ComponentLogger:
    """The logger handed to a component via its context."""

    def __init__(self, buffer: LogBuffer, component: str, replica_id: int) -> None:
        self._buffer = buffer
        self._component = component
        self._replica_id = replica_id

    def _log(self, level: str, message: str, attributes: dict[str, Any]) -> None:
        self._buffer.append(
            LogRecord(
                timestamp=time.time(),
                level=level,
                component=self._component,
                replica_id=self._replica_id,
                message=message,
                attributes=tuple(sorted(attributes.items())),
            )
        )

    def debug(self, message: str, **attributes: Any) -> None:
        self._log("debug", message, attributes)

    def info(self, message: str, **attributes: Any) -> None:
        self._log("info", message, attributes)

    def warning(self, message: str, **attributes: Any) -> None:
        self._log("warning", message, attributes)

    def error(self, message: str, **attributes: Any) -> None:
        self._log("error", message, attributes)


class LogAggregator:
    """Manager-side merge of records from every proclet."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[LogRecord] = []

    def ingest(self, records: Iterable[LogRecord]) -> None:
        with self._lock:
            self._records.extend(records)

    def merged(
        self, *, component: Optional[str] = None, level: Optional[str] = None
    ) -> list[LogRecord]:
        """Time-ordered records, optionally filtered."""
        with self._lock:
            records = list(self._records)
        if component is not None:
            records = [r for r in records if r.component == component]
        if level is not None:
            records = [r for r in records if r.level == level]
        records.sort(key=lambda r: r.timestamp)
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def records_to_wire(records: list[LogRecord]) -> list[dict[str, Any]]:
    """JSON-able form for the envelope -> manager pipe."""
    return [
        {
            "timestamp": r.timestamp,
            "level": r.level,
            "component": r.component,
            "replica_id": r.replica_id,
            "message": r.message,
            "attributes": [list(kv) for kv in r.attributes],
        }
        for r in records
    ]


def records_from_wire(raw: list[dict[str, Any]]) -> list[LogRecord]:
    return [
        LogRecord(
            timestamp=e["timestamp"],
            level=e["level"],
            component=e["component"],
            replica_id=e["replica_id"],
            message=e["message"],
            attributes=tuple(tuple(kv) for kv in e.get("attributes", [])),
        )
        for e in raw
    ]
