"""Observability: metrics, traces, logs, time-series, and live signals."""

from repro.observability.logs import (
    ComponentLogger,
    LogAggregator,
    LogBuffer,
    LogRecord,
    records_from_wire,
    records_to_wire,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    HistogramValue,
    Metric,
    MetricsRegistry,
    Timer,
)
from repro.observability.signals import (
    EwmaDetector,
    SignalBoard,
    Signal,
    Slo,
    default_slos,
)
from repro.observability.timeseries import (
    RingSeries,
    TelemetryPipeline,
    TimeSeriesStore,
    sparkline,
)
from repro.observability.tracestore import TraceStore
from repro.observability.tracing import (
    ActiveSpan,
    Span,
    Tracer,
    assemble_tree,
    current_span,
)

__all__ = [
    "ComponentLogger",
    "LogAggregator",
    "LogBuffer",
    "LogRecord",
    "records_from_wire",
    "records_to_wire",
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "Metric",
    "MetricsRegistry",
    "Timer",
    "EwmaDetector",
    "Signal",
    "SignalBoard",
    "Slo",
    "default_slos",
    "RingSeries",
    "TelemetryPipeline",
    "TimeSeriesStore",
    "sparkline",
    "TraceStore",
    "ActiveSpan",
    "Span",
    "Tracer",
    "assemble_tree",
    "current_span",
]
