"""Observability: metrics, traces, and logs, aggregated by the manager."""

from repro.observability.logs import (
    ComponentLogger,
    LogAggregator,
    LogBuffer,
    LogRecord,
    records_from_wire,
    records_to_wire,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    HistogramValue,
    Metric,
    MetricsRegistry,
    Timer,
)
from repro.observability.tracing import ActiveSpan, Span, Tracer, current_span

__all__ = [
    "ComponentLogger",
    "LogAggregator",
    "LogBuffer",
    "LogRecord",
    "records_from_wire",
    "records_to_wire",
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "Metric",
    "MetricsRegistry",
    "Timer",
    "ActiveSpan",
    "Span",
    "Tracer",
    "current_span",
]
