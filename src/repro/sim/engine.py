"""A small discrete-event simulation engine (generator-process style).

The paper's evaluation ran on GKE with Locust driving 10 000 QPS — far
beyond what a Python process can serve for real on one laptop.  The
benchmarks therefore run on this engine: processes are Python generators
that ``yield`` timeouts or resource requests; the engine advances virtual
time through an event heap.  Nothing here knows about clusters or RPCs —
that lives in :mod:`repro.sim.cluster`.

The API is deliberately simpy-like (the subset we need)::

    sim = Simulator()
    server = Resource(sim, capacity=1)

    def handle(req):
        with (yield server.acquire()):
            yield sim.timeout(0.005)      # 5ms of service time
        done.append(sim.now)

    sim.spawn(handle(req))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Optional

Process = Generator[Any, Any, Any]


class SimError(Exception):
    """Misuse of the simulation engine."""


class Event:
    """Something a process can wait on."""

    __slots__ = ("sim", "value", "triggered", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.value: Any = None
        self.triggered = False
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.sim._resume(process, value)
        self._waiters.clear()

    def _add_waiter(self, process: Process) -> None:
        if self.triggered:
            self.sim._resume(process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that fires after a virtual delay."""

    def __init__(self, sim: "Simulator", delay: float) -> None:
        super().__init__(sim)
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        sim._schedule(sim.now + delay, self)


class Simulator:
    """The event loop: a heap of (time, seq, action)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._ready: deque[tuple[Process, Any]] = deque()

    # -- process API ------------------------------------------------------------

    def spawn(self, process: Process) -> None:
        """Start a generator process at the current time."""
        self._ready.append((process, None))

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callable at an absolute virtual time."""
        if when < self.now:
            raise SimError(f"cannot schedule at {when} < now {self.now}")
        self._schedule(when, fn)

    # -- engine ---------------------------------------------------------------------

    def _schedule(self, when: float, item: Any) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), item))

    def _resume(self, process: Process, value: Any) -> None:
        self._ready.append((process, value))

    def _step_process(self, process: Process, value: Any) -> None:
        try:
            yielded = process.send(value)
        except StopIteration:
            return
        if isinstance(yielded, Event):
            yielded._add_waiter(process)
        else:
            raise SimError(
                f"process yielded {yielded!r}; processes must yield Event "
                "objects (timeout/acquire/event)"
            )

    def run(self, until: Optional[float] = None) -> float:
        """Advance until the heap is empty or ``until`` is reached."""
        while True:
            while self._ready:
                process, value = self._ready.popleft()
                self._step_process(process, value)
            if not self._heap:
                break
            when, _, item = heapq.heappop(self._heap)
            if until is not None and when > until:
                heapq.heappush(self._heap, (when, next(self._seq), item))
                self.now = until
                break
            self.now = when
            if isinstance(item, Event):
                if not item.triggered:
                    item.succeed()
            else:
                item()  # plain callable from call_at
        return self.now


class _Acquisition(Event):
    """Grant of one resource slot; a context manager that releases."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "_Acquisition":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release()


class Resource:
    """A counted resource with a FIFO wait queue (e.g. one core = capacity 1)."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[_Acquisition] = deque()
        #: Cumulative busy time integral (for utilization measurements).
        self.busy_time = 0.0
        self._last_change = 0.0

    def acquire(self) -> _Acquisition:
        acq = _Acquisition(self)
        self._account()
        if self.in_use < self.capacity:
            self.in_use += 1
            acq.succeed(acq)
        else:
            self._queue.append(acq)
        return acq

    def release(self) -> None:
        self._account()
        if self._queue:
            acq = self._queue.popleft()
            acq.succeed(acq)  # slot transfers directly to the next waiter
        else:
            self.in_use -= 1
            if self.in_use < 0:
                raise SimError("release without acquire")

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def snapshot_busy(self) -> float:
        """Cumulative busy time (slot-seconds) up to now.

        Callers measuring windowed utilization keep the previous snapshot
        and divide the delta by (window * capacity).
        """
        self._account()
        return self.busy_time

    def utilization(self) -> float:
        """Mean busy fraction per slot over the whole run."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / (self.sim.now * self.capacity)

    @property
    def queue_length(self) -> int:
        return len(self._queue)
