"""Real-time load generation against *live* deployments.

The simulator (:mod:`repro.sim.workload`) reproduces the paper's 10k-QPS
scale; this module drives the actual running implementations — any object
with ``get(Frontend)`` stubs, whether single-process, multiprocess, or the
HTTP baseline — at laptop-scale rates, measuring true end-to-end latency.
Integration benchmarks use it to confirm the *measured* ordering
(baseline slower than prototype slower than co-located) that the simulator
then extrapolates.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional

from repro.boutique import Address, CreditCard, Frontend
from repro.sim.workload import BOUTIQUE_MIX_WEIGHTS, LatencyStats

ADDRESS = Address("1600 Amphitheatre Pkwy", "Mountain View", "CA", "US", 94043)
CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)

RequestFn = Callable[[Any, str], Awaitable[Any]]


async def _home(fe: Any, user: str) -> None:
    await fe.home(user, "USD")


async def _browse(fe: Any, user: str) -> None:
    await fe.browse_product(user, "1YMWWN1N4O", "USD")


async def _add_to_cart(fe: Any, user: str) -> None:
    await fe.add_to_cart(user, "OLJCESPC7Z", 1)


async def _view_cart(fe: Any, user: str) -> None:
    await fe.view_cart(user, "USD")


async def _checkout(fe: Any, user: str) -> None:
    await fe.add_to_cart(user, "6E92ZMYYFZ", 1)
    await fe.checkout(user, "USD", ADDRESS, f"{user}@example.com", CARD)


BOUTIQUE_ACTIONS: dict[str, RequestFn] = {
    "home": _home,
    "browse": _browse,
    "add_to_cart": _add_to_cart,
    "view_cart": _view_cart,
    "checkout": _checkout,
}


@dataclass
class LoadResult:
    requests: int
    errors: int
    duration_s: float
    latency: LatencyStats

    @property
    def achieved_qps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def median_latency_ms(self) -> float:
        return self.latency.median_s * 1000

    @property
    def p95_latency_ms(self) -> float:
        return self.latency.p95_s * 1000


async def drive_boutique(
    app: Any,
    *,
    qps: float,
    duration_s: float,
    users: int = 20,
    seed: int = 0,
    concurrency_limit: int = 200,
    weights: Optional[dict[str, float]] = None,
) -> LoadResult:
    """Open-loop Locust-mix load against a live boutique deployment.

    Arrivals are Poisson at ``qps``; each request picks an action from the
    mix and a user from a small pool.  Backpressure is bounded by
    ``concurrency_limit`` so a stalled deployment degrades instead of
    spawning unbounded tasks.
    """
    fe = app.get(Frontend)
    rng = random.Random(seed)
    weights = weights or BOUTIQUE_MIX_WEIGHTS
    actions = list(weights)
    cum_weights = []
    acc = 0.0
    for a in actions:
        acc += weights[a]
        cum_weights.append(acc)

    stats = LatencyStats()
    errors = 0
    inflight: set[asyncio.Task] = set()
    sem = asyncio.Semaphore(concurrency_limit)
    start = time.perf_counter()
    deadline = start + duration_s

    async def one(action: str, user: str) -> None:
        nonlocal errors
        async with sem:
            t0 = time.perf_counter()
            try:
                await BOUTIQUE_ACTIONS[action](fe, user)
                stats.observe(time.perf_counter() - t0)
            except Exception:
                errors += 1

    next_arrival = start
    while True:
        now = time.perf_counter()
        if now >= deadline:
            break
        if now < next_arrival:
            await asyncio.sleep(next_arrival - now)
        next_arrival += rng.expovariate(qps)
        action = rng.choices(actions, cum_weights=cum_weights)[0]
        user = f"user-{rng.randrange(users)}"
        task = asyncio.ensure_future(one(action, user))
        inflight.add(task)
        task.add_done_callback(inflight.discard)

    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)
    elapsed = time.perf_counter() - start
    return LoadResult(
        requests=stats.count + errors,
        errors=errors,
        duration_s=elapsed,
        latency=stats,
    )
