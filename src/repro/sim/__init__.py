"""Cluster simulation: the GKE + Locust stand-in (see DESIGN.md).

* :mod:`repro.sim.engine` — generator-process discrete-event core.
* :mod:`repro.sim.costmodel` — measured per-RPC costs of the two stacks.
* :mod:`repro.sim.profile` — record call trees from the real application.
* :mod:`repro.sim.cluster` — pods, groups, autoscaling, request execution.
* :mod:`repro.sim.workload` — open-loop load generation + latency stats.
* :mod:`repro.sim.experiment` — the Table-2 pipeline end to end.
"""

from repro.sim.cluster import Deployment, ReplicaPod, ServiceGroup, build_deployment
from repro.sim.costmodel import (
    BASELINE_STACK,
    JSON_BASELINE_STACK,
    WEAVER_STACK,
    StackCosts,
    calibrate_stacks,
)
from repro.sim.engine import Event, Resource, SimError, Simulator, Timeout
from repro.sim.profile import CallNode, RecordingApp, RecordingInvoker, recording_app
from repro.sim.workload import (
    BOUTIQUE_MIX_WEIGHTS,
    LatencyStats,
    RequestType,
    SimReport,
    WorkloadMix,
    run_load,
)

__all__ = [
    "Deployment",
    "ReplicaPod",
    "ServiceGroup",
    "build_deployment",
    "BASELINE_STACK",
    "JSON_BASELINE_STACK",
    "WEAVER_STACK",
    "StackCosts",
    "calibrate_stacks",
    "Event",
    "Resource",
    "SimError",
    "Simulator",
    "Timeout",
    "CallNode",
    "RecordingApp",
    "RecordingInvoker",
    "recording_app",
    "BOUTIQUE_MIX_WEIGHTS",
    "LatencyStats",
    "RequestType",
    "SimReport",
    "WorkloadMix",
    "run_load",
]
