"""Open-loop workload generation and latency statistics (the Locust stand-in).

    "We used Locust [26], a workload generator, to load-test the
    application ... The workload generator sends a steady rate of HTTP
    requests to the applications."  (§6.1)

:class:`WorkloadMix` reproduces the Locust task mix of the Online Boutique
demo (index 49%, browse product ~30%, add-to-cart 10%, view cart 6%,
checkout 5%); requests arrive open-loop — Poisson by default, or exactly
uniform — regardless of completions, which is what "a steady rate" means
and what makes queueing effects honest.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.sim.cluster import Deployment
from repro.sim.engine import Simulator
from repro.sim.profile import CallNode


@dataclass(frozen=True)
class RequestType:
    name: str
    weight: float
    tree: CallNode


@dataclass
class WorkloadMix:
    """A weighted mix of recorded request trees."""

    types: list[RequestType]

    def __post_init__(self) -> None:
        if not self.types:
            raise ValueError("workload mix needs at least one request type")
        total = sum(t.weight for t in self.types)
        if total <= 0:
            raise ValueError("workload weights must sum to a positive value")

    def sample(self, rng: random.Random) -> RequestType:
        total = sum(t.weight for t in self.types)
        x = rng.random() * total
        for t in self.types:
            x -= t.weight
            if x <= 0:
                return t
        return self.types[-1]

    def mean_self_cpu_s(self) -> float:
        """Load-weighted business-logic CPU per request (no RPC overheads)."""
        total_w = sum(t.weight for t in self.types)
        return sum(t.weight * t.tree.total_self_cpu_s() for t in self.types) / total_w

    def mean_calls(self) -> float:
        total_w = sum(t.weight for t in self.types)
        return sum(t.weight * (t.tree.total_calls() - 1) for t in self.types) / total_w


#: The Locust task weights of the Online Boutique loadgenerator.
BOUTIQUE_MIX_WEIGHTS = {
    "home": 49.0,
    "browse": 30.0,
    "add_to_cart": 10.0,
    "view_cart": 6.0,
    "checkout": 5.0,
}


class LatencyStats:
    """Latency observations with exact quantiles (post-hoc sort)."""

    def __init__(self) -> None:
        self.samples: list[float] = []
        self.dropped_warmup = 0

    def observe(self, latency_s: float) -> None:
        self.samples.append(latency_s)

    @property
    def count(self) -> int:
        return len(self.samples)

    def quantile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    @property
    def median_s(self) -> float:
        return self.quantile(0.5)

    @property
    def p95_s(self) -> float:
        return self.quantile(0.95)

    @property
    def p99_s(self) -> float:
        return self.quantile(0.99)

    @property
    def mean_s(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


@dataclass
class SimReport:
    """Everything a Table-2-style row needs."""

    stack: str
    qps: float
    duration_s: float
    completed: int
    average_cores: float
    cores_by_group: dict[str, float]
    latency: LatencyStats
    replica_counts: dict[str, int]
    #: Measured CPU demand per group (busy core-rate over the measurement
    #: window).  This is what scales linearly with offered load and what
    #: run_table2 extrapolates to the paper's 10k QPS.
    busy_cores_by_group: dict[str, float] = field(default_factory=dict)
    #: Total requests issued (successes + sheds + deadline misses).
    issued: int = 0
    #: Requests rejected by per-pod admission control.
    shed: int = 0
    #: Requests that blew the deployment's end-to-end deadline.
    deadline_misses: int = 0

    @property
    def busy_cores(self) -> float:
        return sum(self.busy_cores_by_group.values())

    @property
    def failed(self) -> int:
        return self.shed + self.deadline_misses

    @property
    def success_rate(self) -> float:
        if self.issued <= 0:
            return 1.0
        succeeded = self.completed + self.latency.dropped_warmup
        return succeeded / self.issued

    @property
    def median_latency_ms(self) -> float:
        return self.latency.median_s * 1000

    @property
    def p95_latency_ms(self) -> float:
        return self.latency.p95_s * 1000

    def row(self) -> dict[str, float]:
        return {
            "qps": self.qps,
            "cores": round(self.average_cores, 1),
            "median_ms": round(self.median_latency_ms, 3),
            "p95_ms": round(self.p95_latency_ms, 3),
        }


def run_load(
    deployment: Deployment,
    mix: WorkloadMix,
    *,
    qps: float,
    duration_s: float,
    warmup_s: float = 0.0,
    arrivals: str = "poisson",
    seed: int = 0,
    autoscale_interval_s: Optional[float] = 5.0,
) -> SimReport:
    """Drive ``deployment`` at ``qps`` for ``duration_s`` of virtual time.

    Latency samples from the first ``warmup_s`` are discarded; core
    accounting also starts after warmup.  The simulation runs past the end
    of arrivals until every issued request completes.
    """
    sim = deployment.sim
    rng = random.Random(seed)
    stats = LatencyStats()
    shed_before = deployment.shed_count
    misses_before = deployment.deadline_miss_count
    t_start = sim.now
    t_measure = t_start + warmup_s
    t_end = t_start + duration_s

    if autoscale_interval_s is not None and any(
        g.autoscaler is not None for g in deployment.groups
    ):
        deployment.start_autoscalers(autoscale_interval_s, until=t_end)

    outstanding = {"count": 0, "issued": 0}

    def arrival_times():
        t = t_start
        while t < t_end:
            if arrivals == "poisson":
                t += rng.expovariate(qps)
            elif arrivals == "uniform":
                t += 1.0 / qps
            else:
                raise ValueError(f"unknown arrival process {arrivals!r}")
            if t < t_end:
                yield t

    def make_done(issued_at: float):
        def done(latency_s: float) -> None:
            outstanding["count"] -= 1
            if issued_at >= t_measure:
                stats.observe(latency_s)
            else:
                stats.dropped_warmup += 1

        return done

    def issue(request_type: RequestType, when: float) -> None:
        outstanding["count"] += 1
        outstanding["issued"] += 1
        deployment.execute(request_type.tree, make_done(when))

    for when in arrival_times():
        request_type = mix.sample(rng)
        sim.call_at(when, lambda rt=request_type, w=when: issue(rt, w))

    busy_at_measure: dict[str, float] = {}
    busy_at_end: dict[str, float] = {}

    def _snap(into: dict[str, float]) -> None:
        into.update({g.name: g.total_busy() for g in deployment.groups})

    sim.call_at(t_measure, lambda: _snap(busy_at_measure))
    sim.call_at(t_end, lambda: _snap(busy_at_end))

    sim.run()  # drains arrivals and all in-flight requests

    window = max(1e-12, t_end - t_measure)
    busy_cores = {
        name: (busy_at_end.get(name, 0.0) - busy_at_measure.get(name, 0.0)) / window
        for name in busy_at_end
    }

    effective = sim.now  # includes the tail after t_end
    return SimReport(
        stack=deployment.costs.name,
        qps=qps,
        duration_s=duration_s,
        completed=stats.count,
        average_cores=deployment.average_cores(min(t_end, effective), since=t_measure),
        cores_by_group=deployment.cores_by_group(min(t_end, effective), since=t_measure),
        latency=stats,
        replica_counts={g.name: g.replica_count for g in deployment.groups},
        busy_cores_by_group=busy_cores,
        issued=outstanding["issued"],
        shed=deployment.shed_count - shed_before,
        deadline_misses=deployment.deadline_miss_count - misses_before,
    )
