"""Discrete-event cluster: pods, cores, RPC costs, autoscaling.

This is the GKE stand-in (see DESIGN.md substitutions).  A deployment is a
set of *service groups* (one per co-location group); each group runs some
number of single-core replicas (pods) managed by the HPA logic from
:mod:`repro.runtime.autoscaler`.  Requests are recorded call trees
(:mod:`repro.sim.profile`); executing one walks the tree:

* a call within the caller's group runs inline on the already-held core
  (a local call: no serialization, no wire — the paper's central
  mechanism);
* a call to another group releases the caller's core (async servers do not
  burn CPU while awaiting), pays caller-side serialization CPU, wire time,
  callee-side CPU (decode, logic, encode) on a callee replica, then
  re-queues for the caller's core to continue;
* all CPU costs come from the :class:`~repro.sim.costmodel.StackCosts` of
  the deployment's stack and the byte sizes recorded from the real codecs.

Core accounting integrates *allocated* replicas over time (pods reserve a
core whether busy or idle), matching how the paper counts "average number
of cores used" for an autoscaled deployment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.core.errors import ConfigError
from repro.core.config import AutoscaleConfig
from repro.observability.timeseries import TimeSeriesStore
from repro.runtime.autoscaler import Autoscaler, steady_state_replicas
from repro.sim.costmodel import StackCosts
from repro.sim.engine import Resource, Simulator
from repro.sim.profile import CallNode


class ReplicaPod:
    """One single-core pod of a service group."""

    def __init__(self, sim: Simulator, pod_id: str) -> None:
        self.pod_id = pod_id
        self.core = Resource(sim, capacity=1)
        self.allocated_at = sim.now
        self.deallocated_at: Optional[float] = None
        self.draining = False

    def allocated_time(self, now: float) -> float:
        end = self.deallocated_at if self.deallocated_at is not None else now
        return max(0.0, end - self.allocated_at)


class ServiceGroup:
    """A co-location group: components sharing pods, scaled together."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        components: Sequence[str],
        *,
        initial_replicas: int = 1,
        autoscale: Optional[AutoscaleConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.components = tuple(components)
        self.autoscale_config = autoscale
        self.autoscaler = Autoscaler(autoscale) if autoscale else None
        self._pod_ids = itertools.count()
        self.pods: list[ReplicaPod] = []
        self.retired: list[ReplicaPod] = []
        self._rr = itertools.count()
        self._busy_snapshot = 0.0
        self._snapshot_time = 0.0
        for _ in range(initial_replicas):
            self._add_pod()

    def _add_pod(self) -> ReplicaPod:
        pod = ReplicaPod(self.sim, f"{self.name}-{next(self._pod_ids)}")
        self.pods.append(pod)
        return pod

    def pick(self) -> ReplicaPod:
        """Least-loaded of two random-ish choices (cheap and effective)."""
        live = self.pods
        if not live:
            raise ConfigError(f"group {self.name} has no pods")
        if len(live) == 1:
            return live[0]
        i = next(self._rr) % len(live)
        j = (i + 1 + next(self._rr) % (len(live) - 1)) % len(live)
        a, b = live[i], live[j]
        load_a = a.core.in_use + a.core.queue_length
        load_b = b.core.in_use + b.core.queue_length
        return a if load_a <= load_b else b

    # -- scaling ------------------------------------------------------------------

    def total_busy(self) -> float:
        """Cumulative busy core-seconds over all pods, past and present."""
        return sum(p.core.snapshot_busy() for p in self.pods) + sum(
            p.core.snapshot_busy() for p in self.retired
        )

    def utilization_since_snapshot(self) -> float:
        busy = self.total_busy()
        window = self.sim.now - self._snapshot_time
        count = max(1, len(self.pods))
        if window <= 0:
            return 0.0
        value = (busy - self._busy_snapshot) / (window * count)
        self._busy_snapshot = busy
        self._snapshot_time = self.sim.now
        return value

    def autoscale_tick(self) -> None:
        if self.autoscaler is None:
            return
        utilization = self.utilization_since_snapshot()
        decision = self.autoscaler.decide(
            now=self.sim.now,
            current_replicas=len(self.pods),
            utilization=utilization,
        )
        self.scale_to(decision.desired)

    def scale_to(self, desired: int) -> None:
        while len(self.pods) < desired:
            self._add_pod()
        while len(self.pods) > desired:
            pod = self.pods.pop()  # newest first, like an HPA scale-down
            pod.draining = True
            pod.deallocated_at = self.sim.now
            self.retired.append(pod)

    # -- accounting ------------------------------------------------------------------

    def allocated_core_seconds(self, now: float, since: float = 0.0) -> float:
        total = 0.0
        for pod in self.pods + self.retired:
            start = max(pod.allocated_at, since)
            end = pod.deallocated_at if pod.deallocated_at is not None else now
            total += max(0.0, end - start)
        return total

    @property
    def replica_count(self) -> int:
        return len(self.pods)


@dataclass
class Deployment:
    """A simulated deployment: groups, placement, and a data-plane stack."""

    sim: Simulator
    groups: list[ServiceGroup]
    costs: StackCosts
    component_group: dict[str, ServiceGroup] = field(default_factory=dict)
    #: Per-pod admission limit (inflight + queued); 0 disables shedding.
    #: Mirrors ``AppConfig.max_inflight`` + ``max_queue_depth`` in the real
    #: runtime: a request arriving at a pod whose core already has this
    #: many holders-plus-waiters is rejected instead of queued.
    shed_queue_limit: int = 0
    #: End-to-end request deadline; ``None`` disables.  A request that
    #: cannot finish inside its budget counts as failed, exactly like a
    #: ``DeadlineExceeded`` at the client.
    deadline_s: Optional[float] = None
    #: Requests rejected by admission control.
    shed_count: int = 0
    #: Requests that blew their end-to-end deadline.
    deadline_miss_count: int = 0
    #: Optional sim-time telemetry: when set, each autoscaler tick records
    #: per-group ``replicas`` series (timestamps are simulated seconds),
    #: so experiment plots reuse the live pipeline's query API.
    timeseries: Optional[TimeSeriesStore] = None

    def __post_init__(self) -> None:
        for group in self.groups:
            for component in group.components:
                if component in self.component_group:
                    raise ConfigError(f"component {component} placed twice")
                self.component_group[component] = group

    def group_of(self, component: str) -> ServiceGroup:
        try:
            return self.component_group[component]
        except KeyError:
            raise ConfigError(f"component {component} not placed in this deployment") from None

    # -- request execution -------------------------------------------------------

    def execute(self, tree: CallNode, on_done) -> None:
        """Spawn the process that executes one recorded request tree.

        ``on_done(latency_s)`` fires only for requests that *succeed* —
        shed requests and deadline misses are tallied in ``shed_count``
        and ``deadline_miss_count`` instead.
        """
        self.sim.spawn(self._request_process(tree, on_done))

    def _request_process(self, tree: CallNode, on_done):
        start = self.sim.now
        deadline = start + self.deadline_s if self.deadline_s else None
        # The synthetic root models the front door (load balancer): its
        # children execute in order; each top-level child is an RPC from
        # outside the cluster into the owning group.  The simulation
        # engine cannot unwind raised exceptions through suspended
        # processes, so failure propagates via generator return values.
        ok = True
        for child in tree.children:
            ok = yield from self._visit_remote(child, deadline)
            if not ok:
                break
        if ok and deadline is not None and self.sim.now > deadline:
            # Finished, but after the client stopped waiting.
            self.deadline_miss_count += 1
            ok = False
        if ok:
            on_done(self.sim.now - start)

    def _visit_remote(self, node: CallNode, deadline: Optional[float] = None):
        """Execute ``node`` as an RPC: wire + callee pod CPU.

        Returns ``True`` on success, ``False`` if the request was shed or
        ran out of deadline budget.
        """
        costs = self.costs
        req_b = node.request_bytes.get(costs.codec, 0)
        resp_b = node.response_bytes.get(costs.codec, 0)
        # Request travels to the callee.
        yield self.sim.timeout(costs.wire_s(req_b, resp_b) / 2)
        group = self.group_of(node.component)
        pod = group.pick()
        if (
            self.shed_queue_limit
            and pod.core.in_use + pod.core.queue_length >= self.shed_queue_limit
        ):
            # Admission control: reject at the door instead of queueing
            # work the pod cannot finish in time.
            self.shed_count += 1
            return False
        if deadline is not None and self.sim.now >= deadline:
            self.deadline_miss_count += 1
            return False
        with (yield pod.core.acquire()):
            if deadline is not None and self.sim.now >= deadline:
                # The whole budget burned while queued for the core:
                # give the core straight back, don't do dead work.
                self.deadline_miss_count += 1
                return False
            # decode request + business logic + local children + encode
            # response, all on the callee's core.
            yield self.sim.timeout(costs.callee_cpu_s(req_b, resp_b))
            ok = yield from self._run_on_pod(node, group, pod, deadline)
            if not ok:
                return False
        # Response travels back.
        yield self.sim.timeout(costs.wire_s(req_b, resp_b) / 2)
        return True

    def _run_on_pod(
        self,
        node: CallNode,
        group: ServiceGroup,
        pod: ReplicaPod,
        deadline: Optional[float] = None,
    ):
        """Run a node's own CPU and children while holding ``pod``'s core."""
        yield self.sim.timeout(node.self_cpu_s)
        for child in node.children:
            child_group = self.group_of(child.component)
            if child_group is group:
                # Local call: plain procedure call, stay on this core.
                ok = yield from self._run_on_pod(child, group, pod, deadline)
                if not ok:
                    return False
            else:
                # Remote call: pay caller-side serialization CPU, then
                # release the core while the RPC is in flight.
                req_b = child.request_bytes.get(self.costs.codec, 0)
                resp_b = child.response_bytes.get(self.costs.codec, 0)
                yield self.sim.timeout(self.costs.caller_cpu_s(req_b, resp_b))
                pod.core.release()
                ok = yield from self._visit_remote(child, deadline)
                yield pod.core.acquire()
                if not ok:
                    return False
        return True

    # -- metrics ---------------------------------------------------------------------

    def average_cores(self, duration: float, since: float = 0.0) -> float:
        window = duration - since
        if window <= 0:
            return 0.0
        return sum(g.allocated_core_seconds(duration, since) for g in self.groups) / window

    def cores_by_group(self, duration: float, since: float = 0.0) -> dict[str, float]:
        window = max(1e-12, duration - since)
        return {
            g.name: g.allocated_core_seconds(duration, since) / window for g in self.groups
        }

    def start_autoscalers(self, interval_s: float = 5.0, until: Optional[float] = None) -> None:
        """Run HPA ticks every ``interval_s`` until ``until`` (required for
        finite simulations: an immortal tick would keep the event heap
        non-empty forever)."""

        def tick() -> None:
            for group in self.groups:
                group.autoscale_tick()
                if self.timeseries is not None:
                    self.timeseries.record(
                        "replicas", group.name, self.sim.now, group.replica_count
                    )
            next_at = self.sim.now + interval_s
            if until is None or next_at <= until:
                self.sim.call_at(next_at, tick)

        self.sim.call_at(self.sim.now + interval_s, tick)


def build_deployment(
    sim: Simulator,
    placement: Iterable[Sequence[str]],
    costs: StackCosts,
    *,
    autoscale: Optional[AutoscaleConfig] = None,
    initial_replicas: int = 1,
    names: Optional[list[str]] = None,
) -> Deployment:
    """Construct a deployment from co-location groups.

    ``placement`` is a list of component-name groups (one simulated service
    per group, mirroring :class:`repro.runtime.placement.PlacementPlan`).
    """
    groups = []
    for i, members in enumerate(placement):
        name = names[i] if names else _group_name(members, i)
        groups.append(
            ServiceGroup(
                sim,
                name,
                members,
                initial_replicas=initial_replicas,
                autoscale=autoscale,
            )
        )
    return Deployment(sim=sim, groups=groups, costs=costs)


def _group_name(members: Sequence[str], index: int) -> str:
    if len(members) == 1:
        return members[0].rsplit(".", 1)[-1]
    return f"group{index}"
