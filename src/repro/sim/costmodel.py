"""Per-RPC cost models for the two data-plane stacks, measured not guessed.

The simulator charges CPU and wire time for every hop of every simulated
request.  The constants come from *measuring this repository's own code*:

* serialization cost: encode+decode wall time of the actual codecs
  (:mod:`repro.serde`) on representative boutique messages, fit to
  ``fixed + per_byte * size``;
* transport cost: the actual byte overhead and header-processing time of
  the custom framed protocol vs the HTTP/1.1 baseline, measured on the
  real implementations in :mod:`repro.transport`.

So when the Table 2 benchmark reports "prototype uses ~3x fewer cores",
that factor is the measured CPU difference between the two stacks this
repo implements, amplified by the measured call-tree of the real boutique
— not a constant typed into a table.  Absolute numbers are Python-speed,
not Go-speed; the paper comparison is about shape (who wins, by what
factor), per the reproduction ground rules in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.codegen.schema import Schema, schema_of
from repro.serde import codec_by_name


@dataclass(frozen=True)
class StackCosts:
    """What one RPC hop costs under one stack."""

    name: str
    codec: str
    #: CPU seconds per message on each side, independent of size (framing
    #: or HTTP header handling, dispatch, correlation).
    rpc_fixed_cpu_s: float
    #: CPU seconds per payload byte on each side (serialize + deserialize).
    ser_cpu_s_per_byte: float
    #: Wire bytes added per message by the protocol (frame header vs HTTP
    #: text block).
    protocol_overhead_bytes: int
    #: One-way network latency per hop, seconds (intra-cluster).
    network_latency_s: float
    #: Effective NIC/stack bandwidth, bytes/second.
    bandwidth_bytes_per_s: float

    def caller_cpu_s(self, request_bytes: int, response_bytes: int) -> float:
        return self.rpc_fixed_cpu_s + self.ser_cpu_s_per_byte * (
            request_bytes + response_bytes
        )

    def callee_cpu_s(self, request_bytes: int, response_bytes: int) -> float:
        return self.rpc_fixed_cpu_s + self.ser_cpu_s_per_byte * (
            request_bytes + response_bytes
        )

    def wire_s(self, request_bytes: int, response_bytes: int) -> float:
        payload = (
            request_bytes + response_bytes + 2 * self.protocol_overhead_bytes
        )
        return 2 * self.network_latency_s + payload / self.bandwidth_bytes_per_s


#: Defaults measured on the reference machine with calibrate_stacks (see
#: EXPERIMENTS.md for the calibration log); kept here so benchmarks are
#: reproducible without a calibration pass and tests can assert against
#: stable numbers.  Units: seconds, bytes.  All values are Python-speed —
#: the comparison between stacks is what carries, not the absolutes.
WEAVER_STACK = StackCosts(
    name="weaver",
    codec="compact",
    rpc_fixed_cpu_s=4.8e-6,  # compact fixed cost + binary header encode/decode
    ser_cpu_s_per_byte=129e-9,  # measured compact encode+decode per byte
    protocol_overhead_bytes=9,  # 4B frame length + ~5B binary header
    network_latency_s=50e-6,
    bandwidth_bytes_per_s=1.25e9,  # 10 Gb/s
)

BASELINE_STACK = StackCosts(
    name="baseline",
    codec="tagged",
    rpc_fixed_cpu_s=5.9e-6,  # tagged fixed cost + HTTP header format/parse
    ser_cpu_s_per_byte=574e-9,  # measured tagged encode+decode per byte
    protocol_overhead_bytes=209,  # measured HTTP/1.1 header block
    network_latency_s=50e-6,
    bandwidth_bytes_per_s=1.25e9,
)

#: A second baseline flavor: JSON payloads (REST-ish microservices).  Note
#: the per-byte CPU is *lower* than tagged because CPython's json module is
#: C-accelerated while both binary codecs are pure Python; JSON still loses
#: on bytes (≈2x the payload) and headers.  The tagged baseline is the
#: apples-to-apples one (pure Python vs pure Python).
JSON_BASELINE_STACK = replace(
    BASELINE_STACK, name="baseline-json", codec="json", ser_cpu_s_per_byte=172e-9
)


def _measure(fn: Callable[[], Any], min_time_s: float = 0.05) -> float:
    """Mean wall seconds per call of ``fn`` (repeat until min_time_s)."""
    n = 1
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time_s:
            return elapsed / n
        n = max(n * 2, int(n * min_time_s / max(elapsed, 1e-9)))


def measure_codec_cost(codec_name: str, samples: list[tuple[Schema, Any]]) -> tuple[float, float]:
    """Fit encode+decode cost to ``fixed + per_byte * size``.

    Returns (fixed_s, per_byte_s) from a two-point fit over the smallest
    and largest sample messages.
    """
    codec = codec_by_name(codec_name)
    costs: list[tuple[int, float]] = []
    for schema, value in samples:
        data = codec.encode(schema, value)

        def roundtrip(schema=schema, value=value, data=data) -> None:
            codec.decode(schema, codec.encode(schema, value))

        costs.append((len(data), _measure(roundtrip)))
    costs.sort()
    (size_a, cost_a), (size_b, cost_b) = costs[0], costs[-1]
    if size_b == size_a:
        return cost_a, 0.0
    per_byte = max(0.0, (cost_b - cost_a) / (size_b - size_a))
    fixed = max(1e-9, cost_a - per_byte * size_a)
    return fixed, per_byte


def measure_protocol_overhead() -> dict[str, tuple[float, int]]:
    """(per-message header CPU, header bytes) for each transport.

    Measures the actual header construction+parse code paths of the two
    transports on synthetic messages.
    """
    from repro.transport import message as msg
    from repro.transport.http_rpc import _format_request

    body = b"x" * 256

    # Custom protocol: encode+decode a request message.
    request = msg.Request(12345, 7, 3, body)

    def custom() -> None:
        msg.decode(msg.encode(request))

    custom_cost = _measure(custom)
    custom_bytes = len(msg.encode(request)) - len(body) + 4  # + frame length

    # HTTP: format a request and parse its header block the way the
    # server-side parser does (split/partition per line).
    raw = _format_request("tcp://127.0.0.1:80", "boutique.Checkout", "place_order", body, 12345)
    head_len = raw.index(b"\r\n\r\n") + 4

    def http() -> None:
        data = _format_request(
            "tcp://127.0.0.1:80", "boutique.Checkout", "place_order", body, 12345
        )
        head = data[: data.index(b"\r\n\r\n")]
        for line in head.decode("latin-1").split("\r\n")[1:]:
            name, _, value = line.partition(":")
            name.strip().lower()
            value.strip()

    http_cost = _measure(http)
    return {"weaver": (custom_cost, custom_bytes), "baseline": (http_cost, head_len)}


def calibrate_stacks(
    samples: list[tuple[Schema, Any]],
    *,
    network_latency_s: float = 50e-6,
    bandwidth_bytes_per_s: float = 1.25e9,
) -> dict[str, StackCosts]:
    """Measure this machine and return fresh stack cost models.

    ``samples`` are (schema, value) pairs representative of the workload's
    messages (the Table 2 benchmark passes real boutique messages).
    """
    out: dict[str, StackCosts] = {}
    protocol = measure_protocol_overhead()
    for stack_name, codec in (("weaver", "compact"), ("baseline", "tagged"), ("baseline-json", "json")):
        fixed_ser, per_byte = measure_codec_cost(codec, samples)
        proto_cpu, proto_bytes = protocol["weaver" if stack_name == "weaver" else "baseline"]
        out[stack_name] = StackCosts(
            name=stack_name,
            codec=codec,
            rpc_fixed_cpu_s=fixed_ser + proto_cpu,
            ser_cpu_s_per_byte=per_byte,
            protocol_overhead_bytes=proto_bytes,
            network_latency_s=network_latency_s,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        )
    return out
