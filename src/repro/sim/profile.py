"""Workload profiling: derive simulation inputs from the real application.

The cluster simulator needs, for each request type (home, browse,
add-to-cart, checkout, ...):

* the *call tree* — which components call which, in what order,
* per-call *self CPU* — business-logic time excluding nested calls,
* per-call *payload sizes* under each wire format.

Rather than inventing these, we record them from the actual implementation:
a :class:`RecordingApp` runs the request single-process with an invoker
that times each call, subtracts child time, and encodes every argument and
result with all three codecs to get true wire sizes.  The simulated
workload is therefore exactly as chatty, exactly as heavy, and exactly as
byte-fat as the code in :mod:`repro.boutique` really is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

from repro.codegen.compiler import MethodSpec
from repro.core.app import SingleProcessApp
from repro.core.call_graph import ROOT
from repro.core.config import AppConfig
from repro.core.errors import EncodeError
from repro.core.registry import Registration, Registry, global_registry
from repro.core.stub import LocalInvoker
from repro.serde import codec_by_name

CODEC_NAMES = ("compact", "tagged", "json")


@dataclass
class CallNode:
    """One recorded invocation (and, recursively, everything below it)."""

    component: str
    method: str
    self_cpu_s: float = 0.0
    request_bytes: dict[str, int] = field(default_factory=dict)
    response_bytes: dict[str, int] = field(default_factory=dict)
    children: list["CallNode"] = field(default_factory=list)

    def total_calls(self) -> int:
        return 1 + sum(c.total_calls() for c in self.children)

    def total_self_cpu_s(self) -> float:
        return self.self_cpu_s + sum(c.total_self_cpu_s() for c in self.children)

    def total_bytes(self, codec: str) -> int:
        own = self.request_bytes.get(codec, 0) + self.response_bytes.get(codec, 0)
        return own + sum(c.total_bytes(codec) for c in self.children)

    def components(self) -> set[str]:
        out = {self.component}
        for c in self.children:
            out |= c.components()
        return out

    def scale_cpu(self, factor: float) -> "CallNode":
        """A copy with all self-CPU multiplied by ``factor`` (what-if knob)."""
        return CallNode(
            self.component,
            self.method,
            self.self_cpu_s * factor,
            dict(self.request_bytes),
            dict(self.response_bytes),
            [c.scale_cpu(factor) for c in self.children],
        )


class RecordingInvoker(LocalInvoker):
    """LocalInvoker that builds a :class:`CallNode` tree as it executes."""

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.stack: list[CallNode] = []

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Any = None,
    ) -> Any:
        node = CallNode(component=reg.name, method=method.name)
        for codec_name in CODEC_NAMES:
            try:
                node.request_bytes[codec_name] = len(
                    codec_by_name(codec_name).encode(method.arg_schema, args)
                )
            except EncodeError:
                node.request_bytes[codec_name] = 0
        if self.stack:
            self.stack[-1].children.append(node)
        self.stack.append(node)
        start = time.perf_counter()
        try:
            result = await super().invoke(reg, method, args, caller, options=options)
        finally:
            total = time.perf_counter() - start
            self.stack.pop()
            node.self_cpu_s = max(0.0, total - _subtree_total(node))
        for codec_name in CODEC_NAMES:
            try:
                node.response_bytes[codec_name] = len(
                    codec_by_name(codec_name).encode(method.result_schema, result)
                )
            except EncodeError:
                node.response_bytes[codec_name] = 0
        return result


def _subtree_cpu(node: CallNode) -> float:
    return sum(c.self_cpu_s + _subtree_cpu(c) for c in node.children)


def _subtree_total(node: CallNode) -> float:
    """Wall time consumed by direct children (self + their subtrees)."""
    return sum(c.self_cpu_s + _subtree_cpu(c) for c in node.children)


class RecordingApp(SingleProcessApp):
    """Single-process app whose invocations are recorded into call trees."""

    def __init__(self, build: Any, config: AppConfig) -> None:
        super().__init__(build, config)
        self._invoker = RecordingInvoker(
            version=build.version,
            call_graph=self.call_graph,
            resolver=self,
            settings=config.settings,
        )

    async def record(
        self, request: Callable[["RecordingApp"], Awaitable[Any]], name: str = "request"
    ) -> CallNode:
        """Run one request function and return its recorded tree.

        The returned root is synthetic (component ``<root>``) and holds the
        top-level calls the request made, in order.
        """
        root = CallNode(component=ROOT, method=name)
        self._invoker.stack = [root]
        start = time.perf_counter()
        try:
            await request(self)
        finally:
            total = time.perf_counter() - start
            self._invoker.stack = []
        root.self_cpu_s = max(0.0, total - _subtree_cpu(root))
        return root


async def recording_app(
    components: Optional[list[type]] = None,
    *,
    registry: Optional[Registry] = None,
    config: Optional[AppConfig] = None,
) -> RecordingApp:
    reg = registry or global_registry()
    build = reg.freeze(components=components)
    return RecordingApp(build, config or AppConfig())
