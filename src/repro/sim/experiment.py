"""End-to-end experiment drivers: from the real app to Table-2 rows.

The pipeline behind every simulated experiment:

1. run the *real* boutique single-process and record each request type's
   call tree, self-CPU, and per-codec payload bytes
   (:mod:`repro.sim.profile`);
2. pick a data-plane stack (measured costs, :mod:`repro.sim.costmodel`)
   and a placement;
3. drive the simulated cluster with the Locust mix
   (:mod:`repro.sim.workload`) and read off cores + latency.

``run_table2`` produces the three rows of the paper's evaluation: the
baseline (microservices: HTTP + tagged payloads, one service per process),
the prototype without co-location (the paper's apples-to-apples
comparison), and the prototype with all eleven components co-located
(§6.1's closing result).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.boutique import (
    ALL_COMPONENTS,
    Address,
    CartItem,
    CreditCard,
    Frontend,
)
from repro.core.component import component_name
from repro.core.config import AutoscaleConfig
from repro.core.registry import Registry, global_registry
from repro.runtime.autoscaler import steady_state_replicas
from repro.sim.cluster import Deployment, build_deployment
from repro.sim.costmodel import BASELINE_STACK, WEAVER_STACK, StackCosts
from repro.sim.engine import Simulator
from repro.sim.profile import CallNode, recording_app
from repro.sim.workload import (
    BOUTIQUE_MIX_WEIGHTS,
    RequestType,
    SimReport,
    WorkloadMix,
    run_load,
)

TEST_ADDRESS = Address("1600 Amphitheatre Pkwy", "Mountain View", "CA", "US", 94043)
TEST_CARD = CreditCard("4432-8015-6152-0454", 672, 2030, 1)


async def record_boutique_mix(
    *, registry: Optional[Registry] = None, repeats: int = 5
) -> WorkloadMix:
    """Record the Locust request mix from the real implementation.

    Each request type is recorded ``repeats`` times and the **minimum**-CPU
    recording is kept: scheduler interference and cache misses only ever
    add time, so the minimum is the least-biased estimate of intrinsic
    business-logic CPU (the same reasoning behind ``timeit``'s min).
    """
    app = await recording_app(ALL_COMPONENTS, registry=registry)
    fe = app.get(Frontend)

    async def seed_cart(user: str) -> None:
        await fe.add_to_cart(user, "OLJCESPC7Z", 1)
        await fe.add_to_cart(user, "6E92ZMYYFZ", 2)

    async def home(a) -> None:
        await fe.home("sim-user", "USD")

    async def browse(a) -> None:
        await fe.browse_product("sim-user", "1YMWWN1N4O", "USD")

    async def add_to_cart(a) -> None:
        await fe.add_to_cart("sim-user", "OLJCESPC7Z", 1)

    async def view_cart(a) -> None:
        await fe.view_cart("sim-user", "USD")

    async def checkout(a) -> None:
        await fe.checkout("sim-user", "USD", TEST_ADDRESS, "sim@example.com", TEST_CARD)

    recorders = {
        "home": home,
        "browse": browse,
        "add_to_cart": add_to_cart,
        "view_cart": view_cart,
        "checkout": checkout,
    }

    types = []
    for name, weight in BOUTIQUE_MIX_WEIGHTS.items():
        recordings = []
        for _ in range(repeats):
            if name == "checkout":
                await seed_cart("sim-user")
            recordings.append(await app.record(recorders[name], name=name))
        recordings.sort(key=lambda n: n.total_self_cpu_s())
        tree = recordings[0]
        types.append(RequestType(name=name, weight=weight, tree=tree))
    await app.shutdown()
    return WorkloadMix(types=types)


def boutique_component_names() -> list[str]:
    return sorted(component_name(c) for c in ALL_COMPONENTS)


def singleton_placement() -> list[tuple[str, ...]]:
    """One component per process: the baseline topology and the paper's
    non-co-located prototype deployment."""
    return [(name,) for name in boutique_component_names()]


def colocated_placement() -> list[tuple[str, ...]]:
    """All eleven components in one process (§6.1's final experiment)."""
    return [tuple(boutique_component_names())]


@dataclass
class DeploymentSpec:
    """One simulated deployment variant."""

    label: str
    costs: StackCosts
    placement: list[tuple[str, ...]]


def table2_specs(
    weaver: StackCosts = WEAVER_STACK, baseline: StackCosts = BASELINE_STACK
) -> list[DeploymentSpec]:
    return [
        DeploymentSpec("baseline", baseline, singleton_placement()),
        DeploymentSpec("prototype", weaver, singleton_placement()),
        DeploymentSpec("prototype-colocated", weaver, colocated_placement()),
    ]


def simulate(
    spec: DeploymentSpec,
    mix: WorkloadMix,
    *,
    qps: float,
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    autoscale: Optional[AutoscaleConfig] = None,
    prewarm: bool = True,
    seed: int = 0,
) -> SimReport:
    """Run one deployment variant under load and return its report."""
    autoscale = autoscale or AutoscaleConfig(
        min_replicas=1, max_replicas=10_000, target_utilization=0.65
    )
    sim = Simulator()
    deployment = build_deployment(
        sim, spec.placement, spec.costs, autoscale=autoscale
    )
    if prewarm:
        _prewarm(deployment, mix, qps, autoscale)
    report = run_load(
        deployment,
        mix,
        qps=qps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
    )
    report.stack = spec.label
    return report


def _prewarm(
    deployment: Deployment, mix: WorkloadMix, qps: float, autoscale: AutoscaleConfig
) -> None:
    """Start every group at its steady-state replica count.

    The paper measures the autoscaled steady state; fast-forwarding the
    HPA's convergence (minutes of simulated time) keeps benchmarks quick
    while landing on the same fixed point the control loop reaches — the
    autoscaler still runs during the measurement and will correct any
    mis-estimate.
    """
    demand = _offered_cores_by_group(deployment, mix, qps)
    for group in deployment.groups:
        group.scale_to(steady_state_replicas(demand.get(group.name, 0.0), autoscale))


def _offered_cores_by_group(
    deployment: Deployment, mix: WorkloadMix, qps: float
) -> dict[str, float]:
    """Expected CPU demand (cores) per group at ``qps``."""
    total_weight = sum(t.weight for t in mix.types)
    demand: dict[str, float] = {g.name: 0.0 for g in deployment.groups}

    def walk(node: CallNode, rate: float, caller_group) -> None:
        group = deployment.group_of(node.component)
        costs = deployment.costs
        req_b = node.request_bytes.get(costs.codec, 0)
        resp_b = node.response_bytes.get(costs.codec, 0)
        demand[group.name] += rate * node.self_cpu_s
        if group is not caller_group:
            demand[group.name] += rate * costs.callee_cpu_s(req_b, resp_b)
            if caller_group is not None:
                demand[caller_group.name] += rate * costs.caller_cpu_s(req_b, resp_b)
        for child in node.children:
            walk(child, rate, group)

    for rtype in mix.types:
        rate = qps * rtype.weight / total_weight
        for child in rtype.tree.children:
            walk(child, rate, None)
    return demand


def run_table2(
    mix: WorkloadMix,
    *,
    qps: float = 10_000.0,
    sim_qps: Optional[float] = None,
    duration_s: float = 20.0,
    warmup_s: float = 4.0,
    seed: int = 0,
    specs: Optional[list[DeploymentSpec]] = None,
) -> dict[str, SimReport]:
    """Produce the three Table-2 rows.

    ``qps`` is the reported rate (the paper's 10 000); ``sim_qps`` is the
    rate actually simulated, defaulting to ``qps``.  When ``sim_qps`` is
    lower (to keep benchmark wall time sane), cores at the target rate are
    the HPA fixed point over the *measured* per-group CPU demand scaled
    linearly — valid because demand is per-request work times rate, and
    the HPA holds per-replica utilization at its target, so allocation
    tracks demand (plus the one-replica floor per group).  Latency is
    reported as simulated: it depends on utilization, which the HPA pins,
    not on the absolute rate.  ``tests/sim/test_experiment.py`` verifies
    the linearity assumption by simulating two rates directly.
    """
    sim_qps = sim_qps or qps
    scale = qps / sim_qps
    autoscale = AutoscaleConfig(min_replicas=1, max_replicas=100_000, target_utilization=0.65)
    reports: dict[str, SimReport] = {}
    for spec in specs or table2_specs():
        report = simulate(
            spec,
            mix,
            qps=sim_qps,
            duration_s=duration_s,
            warmup_s=warmup_s,
            seed=seed,
            autoscale=autoscale,
        )
        if scale != 1.0:
            scaled_by_group = {
                name: float(
                    steady_state_replicas(busy * scale, autoscale)
                )
                for name, busy in report.busy_cores_by_group.items()
            }
            report.cores_by_group = scaled_by_group
            report.average_cores = sum(scaled_by_group.values())
            report.busy_cores_by_group = {
                name: busy * scale for name, busy in report.busy_cores_by_group.items()
            }
        report.qps = qps
        reports[spec.label] = report
    return reports


def record_mix_sync(**kwargs) -> WorkloadMix:
    """Synchronous convenience for benchmarks."""
    return asyncio.run(record_boutique_mix(**kwargs))
