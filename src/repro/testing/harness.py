"""The e2e test harness: run a whole distributed app inside one test (§5.3).

    "Because applications are written as single binaries in a single
    programming language, end-to-end tests become simple unit tests."

:func:`weavertest` deploys an application in any of three modes and hands
the test a ready app handle::

    async with weavertest(components=[Frontend, ...], mode="multi") as app:
        fe = app.get(Frontend)
        assert (await fe.home("u", "USD")).products

Modes: ``single`` (all local), ``multi`` (one process-equivalent per
component, in-process envelopes, real RPC), ``subprocess`` (real child
processes).  Faults can be injected with a :class:`FaultPlan`.
"""

from __future__ import annotations

import contextlib
from typing import Any, AsyncIterator, Optional

from repro.core.app import init
from repro.core.config import AppConfig
from repro.core.errors import ConfigError
from repro.core.registry import Registry
from repro.core.stub import LocalInvoker
from repro.runtime.deployers.multi import deploy_multiprocess
from repro.testing.faults import FaultInjectingInvoker, FaultPlan


@contextlib.asynccontextmanager
async def weavertest(
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
    config: Optional[AppConfig] = None,
    mode: str = "single",
    faults: Optional[FaultPlan] = None,
    autoscale: bool = False,
) -> AsyncIterator[Any]:
    """Deploy an application for the duration of a test."""
    config = config or AppConfig()
    if mode == "single":
        app = await init(config, components=components, registry=registry)
        if faults is not None:
            app._invoker.fault_plan = faults
    elif mode in ("multi", "subprocess"):
        app = await deploy_multiprocess(
            config,
            components=components,
            registry=registry,
            mode="inproc" if mode == "multi" else "subprocess",
            autoscale=autoscale,
        )
        if faults is not None:
            _inject_everywhere(app, faults)
    else:
        raise ConfigError(f"unknown weavertest mode {mode!r}")
    try:
        yield app
    finally:
        await app.shutdown()


def _inject_everywhere(app: Any, plan: FaultPlan) -> None:
    """Attach the fault plan to the driver's and every in-process proclet's
    invokers (existing stubs pick it up, since the plan is consulted per
    call).  Subprocess proclets cannot be reached from here — kill their
    envelopes instead, via ChaosMonkey."""
    app._driver._remote.fault_plan = plan
    for envelope in app.envelopes.values():
        proclet = getattr(envelope, "proclet", None)
        if proclet is not None:
            proclet._remote.fault_plan = plan
            proclet._local.fault_plan = plan
