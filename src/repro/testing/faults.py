"""Fault injection for component calls (§5.3).

    "This opens the door to automated fault tolerance testing, akin to
    chaos testing, Jepsen testing, and model checking."

A :class:`FaultPlan` decides, per invocation, whether to inject a failure
(an :class:`~repro.core.errors.Unavailable`, an arbitrary exception, or an
added delay).  :class:`FaultInjectingInvoker` wraps any invoker — local or
remote — so the same plan drives single-process unit tests and real
multiprocess deployments.

Plans are deterministic given a seed, so a failing chaos run can be
replayed exactly.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.codegen.compiler import MethodSpec
from repro.core.errors import Unavailable
from repro.core.registry import Registration


@dataclass
class FaultRule:
    """Inject failures on calls matching (component, method) patterns.

    ``component``/``method`` of None match everything.  ``failure_rate``
    is the probability of raising ``error`` (default Unavailable, which
    stubs may retry); ``delay_s`` is added to every matching call;
    ``max_failures`` bounds total injections (0 = unlimited).
    """

    component: Optional[str] = None
    method: Optional[str] = None
    failure_rate: float = 0.0
    delay_s: float = 0.0
    error: Optional[Callable[[], Exception]] = None
    max_failures: int = 0
    injected: int = field(default=0, init=False)

    def matches(self, reg: Registration, spec: MethodSpec) -> bool:
        if self.component is not None and self.component not in reg.name:
            return False
        if self.method is not None and self.method != spec.name:
            return False
        return True

    def make_error(self) -> Exception:
        if self.error is not None:
            return self.error()
        # Injection happens *before* the call is issued, so the default
        # fault is safe to retry for any method (executed=False) — it
        # models a replica found dead at dial time.
        return Unavailable("injected fault", executed=False)

    def delay(self) -> float:
        """Seconds of delay for the *current* matching call.

        Subclasses override for time-varying faults; the base rule's delay
        is constant.
        """
        return self.delay_s


@dataclass
class FlappingDelayRule(FaultRule):
    """A delay that toggles between a high and a low phase on a period.

    Models a *metric storm*: latency that repeatedly crosses an anomaly
    threshold and drops back, so detectors fire, resolve, and fire again.
    A naive remediation controller translates every firing into an action;
    this rule exists to prove the guardrail layer caps that translation.

    The rule spends ``high_s`` of every ``period_s`` in the slow phase
    (delaying ``high_delay_s``) and the remainder fast (``delay_s``, which
    defaults to 0).  The phase is a pure function of wall time since the
    rule was created, so concurrent calls agree on it.
    """

    high_delay_s: float = 0.0
    period_s: float = 2.0
    high_s: float = 1.0
    clock: Callable[[], float] = time.monotonic
    started_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.started_at = self.clock()

    def delay(self) -> float:
        phase = (self.clock() - self.started_at) % self.period_s
        return self.high_delay_s if phase < self.high_s else self.delay_s


class FaultPlan:
    """A seeded set of fault rules with injection accounting."""

    def __init__(self, rules: Optional[list[FaultRule]] = None, *, seed: int = 0) -> None:
        self.rules = rules or []
        self._rng = random.Random(seed)
        self.total_injected = 0

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    async def before_call(self, reg: Registration, spec: MethodSpec) -> None:
        """Apply delays and maybe raise, for one matching invocation."""
        for rule in self.rules:
            if not rule.matches(reg, spec):
                continue
            delay = rule.delay()
            if delay > 0:
                await asyncio.sleep(delay)
            if rule.failure_rate > 0 and (
                rule.max_failures == 0 or rule.injected < rule.max_failures
            ):
                if self._rng.random() < rule.failure_rate:
                    rule.injected += 1
                    self.total_injected += 1
                    raise rule.make_error()


class FaultInjectingInvoker:
    """Wrap any invoker with a fault plan."""

    def __init__(self, inner: Any, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Optional[Any] = None,
    ) -> Any:
        await self.plan.before_call(reg, method)
        return await self._inner.invoke(reg, method, args, caller, options=options)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
