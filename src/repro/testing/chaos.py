"""Chaos testing: kill replicas under load, assert the app survives (§5.3).

A :class:`ChaosMonkey` runs against a live multiprocess deployment,
killing random proclets on an interval while a workload runs.  The manager
is expected to detect the deaths (health sweep), restart replicas, and
repair routing; the monkey's report says how much of the workload survived.

This is the paper's "automated fault tolerance testing ... akin to chaos
testing [47]" made concrete: because the whole application deploys from
one test process, the monkey needs no infrastructure — it is a unit test.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

from repro.core.errors import WeaverError


@dataclass
class ChaosReport:
    kills: list[str] = field(default_factory=list)
    requests_attempted: int = 0
    requests_succeeded: int = 0
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        if self.requests_attempted == 0:
            return 0.0
        return self.requests_succeeded / self.requests_attempted

    def record_error(self, exc: Exception) -> None:
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1


class ChaosMonkey:
    """Kills random replicas of a MultiProcessApp while work runs."""

    def __init__(
        self,
        app: Any,
        *,
        seed: int = 0,
        spare: Optional[set[str]] = None,
    ) -> None:
        self.app = app
        self._rng = random.Random(seed)
        #: proclet-id prefixes never to kill (e.g. a singleton stateful
        #: group the test wants stable).
        self._spare = spare or set()

    def pick_victim(self) -> Optional[str]:
        candidates = [
            proclet_id
            for proclet_id, envelope in self.app.envelopes.items()
            if not envelope.stopped
            and not any(proclet_id.startswith(p) for p in self._spare)
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def kill_one(self) -> Optional[str]:
        victim = self.pick_victim()
        if victim is not None:
            self.app.kill_replica(victim)
        return victim

    async def rampage(
        self,
        workload: Callable[[], Awaitable[Any]],
        *,
        requests: int = 50,
        kill_every: int = 10,
        settle_s: float = 0.1,
    ) -> ChaosReport:
        """Run ``workload()`` ``requests`` times, killing a replica every
        ``kill_every`` requests, and report survival."""
        report = ChaosReport()
        for i in range(requests):
            if kill_every and i > 0 and i % kill_every == 0:
                victim = self.kill_one()
                if victim is not None:
                    report.kills.append(victim)
                    await self.app.manager.sweep()
                    await asyncio.sleep(settle_s)
            report.requests_attempted += 1
            try:
                await workload()
                report.requests_succeeded += 1
            except WeaverError as exc:
                report.record_error(exc)
            except Exception as exc:  # application-level failure
                report.record_error(exc)
        return report
