"""Chaos testing: kill replicas under load, assert the app survives (§5.3).

A :class:`ChaosMonkey` runs against a live multiprocess deployment,
killing random proclets on an interval while a workload runs.  The manager
is expected to detect the deaths (health sweep), restart replicas, and
repair routing; the monkey's report says how much of the workload survived.

This is the paper's "automated fault tolerance testing ... akin to chaos
testing [47]" made concrete: because the whole application deploys from
one test process, the monkey needs no infrastructure — it is a unit test.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Optional

from repro.core.errors import WeaverError
from repro.testing.faults import FaultPlan, FaultRule, FlappingDelayRule


class LatencyInjection:
    """A live latency regression: revert() removes the injected delay.

    Returned by :func:`inject_latency`; the telemetry benchmarks use it to
    create a latency regression with a known onset time and then undo it.
    """

    def __init__(self, rule: FaultRule, plans: list[FaultPlan]) -> None:
        self.rule = rule
        self._plans = plans
        self.started_at = time.monotonic()

    def revert(self) -> None:
        for plan in self._plans:
            if self.rule in plan.rules:
                plan.rules.remove(self.rule)
        self._plans = []


def inject_latency(
    app: Any,
    delay_s: float,
    *,
    component: Optional[str] = None,
    method: Optional[str] = None,
) -> LatencyInjection:
    """Add ``delay_s`` to every matching call issued by the driver and any
    in-process proclet, starting now.

    The delay is applied client-side (before the RPC is issued) so it shows
    up in ``rpc_client_latency_s`` — exactly the series the anomaly
    detectors watch.  Call :meth:`LatencyInjection.revert` to heal.
    """
    rule = FaultRule(component=component, method=method, delay_s=delay_s)
    return LatencyInjection(rule, _attach_rule(app, rule))


def metric_storm(
    app: Any,
    *,
    high_delay_s: float = 0.4,
    period_s: float = 2.0,
    high_s: float = 1.0,
    component: Optional[str] = None,
    method: Optional[str] = None,
) -> LatencyInjection:
    """Inject *flapping* latency: ``high_delay_s`` for ``high_s`` out of
    every ``period_s``, near-zero otherwise.

    Sized against the anomaly detectors' threshold this makes signals fire,
    resolve, and fire again in a loop — the metric storm the remediation
    guardrails (action budget, cooldowns) must absorb without translating
    into an action storm.  Revert like :func:`inject_latency`.
    """
    rule = FlappingDelayRule(
        component=component,
        method=method,
        high_delay_s=high_delay_s,
        period_s=period_s,
        high_s=high_s,
    )
    return LatencyInjection(rule, _attach_rule(app, rule))


def _attach_rule(app: Any, rule: FaultRule) -> list[FaultPlan]:
    """Attach one rule to the driver's and every in-process proclet's
    client-side fault plan; returns the plans touched (for revert)."""
    plans: list[FaultPlan] = []

    def attach(invoker: Any) -> None:
        if invoker is None:
            return
        plan = getattr(invoker, "fault_plan", None)
        if plan is None:
            plan = FaultPlan()
            invoker.fault_plan = plan
        if rule not in plan.rules:  # plans may be shared between invokers
            plan.add(rule)
            plans.append(plan)

    attach(getattr(getattr(app, "_driver", None), "_remote", None))
    for envelope in getattr(app, "envelopes", {}).values():
        proclet = getattr(envelope, "proclet", None)
        if proclet is not None:
            attach(getattr(proclet, "_remote", None))
    return plans


@dataclass
class ChaosReport:
    kills: list[str] = field(default_factory=list)
    #: Monotonic timestamps of each kill (pairs with ``kills`` by index).
    kill_times: list[float] = field(default_factory=list)
    requests_attempted: int = 0
    requests_succeeded: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    #: Per-request (monotonic time, succeeded) in issue order — the raw
    #: series recovery analysis runs over.
    outcomes: list[tuple[float, bool]] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if self.requests_attempted == 0:
            return 0.0
        return self.requests_succeeded / self.requests_attempted

    def record_error(self, exc: Exception) -> None:
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1

    def require_success_rate(self, minimum: float) -> "ChaosReport":
        """Steady-state assertion: the run's success rate meets ``minimum``.

        Returns self so it chains off :meth:`ChaosMonkey.rampage`.
        """
        if self.success_rate < minimum:
            raise AssertionError(
                f"chaos run success rate {self.success_rate:.3f} below "
                f"required {minimum:.3f} "
                f"({self.requests_succeeded}/{self.requests_attempted} ok, "
                f"errors: {self.errors}, kills: {len(self.kills)})"
            )
        return self

    def time_to_recover(self, after_t: float, consecutive: int = 25) -> Optional[float]:
        """Seconds from ``after_t`` until service is steady again.

        "Recovered" means the first of ``consecutive`` successive
        successful requests issued after ``after_t``; returns None if the
        run never got there (recovery must be judged against the outcome
        *series*, not the aggregate rate — a run can average 95% and still
        have been black for seconds).
        """
        run_start: Optional[float] = None
        streak = 0
        for t, ok in self.outcomes:
            if t < after_t:
                continue
            if ok:
                if streak == 0:
                    run_start = t
                streak += 1
                if streak >= consecutive:
                    assert run_start is not None
                    return max(0.0, run_start - after_t)
            else:
                streak = 0
                run_start = None
        return None


class ChaosMonkey:
    """Kills random replicas of a MultiProcessApp while work runs."""

    def __init__(
        self,
        app: Any,
        *,
        seed: int = 0,
        spare: Optional[set[str]] = None,
    ) -> None:
        self.app = app
        self._rng = random.Random(seed)
        #: proclet-id prefixes never to kill (e.g. a singleton stateful
        #: group the test wants stable).
        self._spare = spare or set()

    def pick_victim(self) -> Optional[str]:
        candidates = [
            proclet_id
            for proclet_id, envelope in self.app.envelopes.items()
            if not envelope.stopped
            and not any(proclet_id.startswith(p) for p in self._spare)
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def kill_one(self, *, silent: bool = False) -> Optional[str]:
        victim = self.pick_victim()
        if victim is not None:
            if silent:
                # Crash without informing the manager: detection happens
                # through missed heartbeats only (the realistic case).
                self.app.kill_replica(victim, silent=True)
            else:
                self.app.kill_replica(victim)
        return victim

    async def rampage(
        self,
        workload: Callable[[], Awaitable[Any]],
        *,
        requests: int = 50,
        kill_every: int = 10,
        settle_s: float = 0.1,
        silent_kills: bool = False,
        min_success_rate: Optional[float] = None,
    ) -> ChaosReport:
        """Run ``workload()`` ``requests`` times, killing a replica every
        ``kill_every`` requests, and report survival.

        ``min_success_rate`` turns the report into an assertion: the run
        fails unless the steady-state success rate meets it.
        ``silent_kills`` crashes victims without notifying the manager
        (detection via heartbeats only).
        """
        report = ChaosReport()
        for i in range(requests):
            if kill_every and i > 0 and i % kill_every == 0:
                victim = self.kill_one(silent=silent_kills)
                if victim is not None:
                    report.kills.append(victim)
                    report.kill_times.append(time.monotonic())
                    if not silent_kills:
                        await self.app.manager.sweep()
                        await asyncio.sleep(settle_s)
            report.requests_attempted += 1
            try:
                await workload()
                ok = True
                report.requests_succeeded += 1
            except WeaverError as exc:
                ok = False
                report.record_error(exc)
            except Exception as exc:  # application-level failure
                ok = False
                report.record_error(exc)
            report.outcomes.append((time.monotonic(), ok))
        if min_success_rate is not None:
            report.require_success_rate(min_success_rate)
        return report
