"""Automated testing of distributed applications (§5.3).

* :func:`~repro.testing.harness.weavertest` — deploy a whole app inside a
  unit test (single / multi / subprocess modes).
* :mod:`repro.testing.faults` — deterministic per-call fault injection.
* :mod:`repro.testing.chaos` — kill replicas under load, measure survival.
"""

from repro.testing.chaos import ChaosMonkey, ChaosReport
from repro.testing.faults import FaultInjectingInvoker, FaultPlan, FaultRule
from repro.testing.harness import weavertest

__all__ = [
    "ChaosMonkey",
    "ChaosReport",
    "FaultInjectingInvoker",
    "FaultPlan",
    "FaultRule",
    "weavertest",
]
