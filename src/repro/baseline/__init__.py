"""The status-quo microservice stack (the paper's comparison baseline).

Name-addressed HTTP services with versioned, self-describing payloads —
the world of §1's challenges C1–C5.  The same component implementations
run unchanged behind it (see :mod:`repro.baseline.service`), so every
measured difference against :mod:`repro.runtime` is the deployment model,
never the business logic.
"""

from repro.baseline.service import (
    BaselineApp,
    HttpInvoker,
    MicroserviceHost,
    ServiceMesh,
    deploy_baseline,
)

__all__ = [
    "BaselineApp",
    "HttpInvoker",
    "MicroserviceHost",
    "ServiceMesh",
    "deploy_baseline",
]
