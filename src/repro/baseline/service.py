"""The status-quo microservice framework the paper compares against.

This package is the "before" picture: the same business logic deployed the
conventional way — one HTTP service per component, discovered by *name*
(the DNS/service-mesh idiom), carrying self-describing versioned payloads
(tagged binary, i.e. protobuf-style, or JSON).

It deliberately reuses the component *implementations* unchanged: a
:class:`MicroserviceHost` hosts an impl behind
:class:`~repro.transport.http_rpc.HttpRpcServer`, and an
:class:`HttpInvoker` gives the impl's ``ctx.get(...)`` dependencies the
same interface-shaped stubs, but backed by name-addressed HTTP calls.
Business logic cannot tell which world it is in — which is precisely the
paper's argument that the *deployment model*, not the code, is what
microservices get wrong.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from typing import Any, Optional, TypeVar

from repro.codegen.compiler import MethodSpec
from repro.core.call_graph import CallGraph, ROOT
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import ComponentNotFound, DeadlineExceeded, RPCError, Unavailable
from repro.core.options import (
    CallOptions,
    budget_to_wire_ms,
    decorrelated_jitter,
    effective_budget_s,
)
from repro.core.registry import FrozenRegistry, Registration, Registry, global_registry
from repro.core.stub import LocalInvoker, make_stub
from repro.observability.tracing import Tracer, current_context
from repro.serde import codec_by_name
from repro.transport.http_rpc import HttpRpcClient, HttpRpcServer, incoming_trace

log = logging.getLogger("repro.baseline")

T = TypeVar("T", bound=Component)


class ServiceMesh:
    """Name -> addresses service discovery (the DNS/kube-proxy stand-in)."""

    def __init__(self) -> None:
        self._services: dict[str, list[str]] = {}
        self._rr = itertools.count()

    def register(self, service: str, address: str) -> None:
        self._services.setdefault(service, []).append(address)

    def deregister(self, service: str, address: str) -> None:
        addresses = self._services.get(service, [])
        if address in addresses:
            addresses.remove(address)

    def resolve(self, service: str) -> str:
        addresses = self._services.get(service)
        if not addresses:
            raise Unavailable(
                f"service {service!r} has no registered endpoints", executed=False
            )
        return addresses[next(self._rr) % len(addresses)]

    def services(self) -> dict[str, list[str]]:
        return {k: list(v) for k, v in self._services.items()}


class HttpInvoker:
    """Stub invoker that turns component calls into name-addressed HTTP RPCs."""

    def __init__(
        self,
        mesh: ServiceMesh,
        *,
        codec_name: str = "tagged",
        call_graph: Optional[CallGraph] = None,
        tracer: Optional[Tracer] = None,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.02,
        retry_backoff_max_s: float = 1.0,
    ) -> None:
        self._mesh = mesh
        self._codec = codec_by_name(codec_name)
        self._client = HttpRpcClient()
        self._call_graph = call_graph
        self._tracer = tracer
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._retry_backoff_max_s = retry_backoff_max_s

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Optional[CallOptions] = None,
    ) -> Any:
        if self._tracer is not None:
            short = reg.name.rsplit(".", 1)[-1]
            with self._tracer.start_span(
                f"http {short}.{method.name}", component=reg.name, caller=caller
            ):
                return await self._invoke(reg, method, args, caller, options)
        return await self._invoke(reg, method, args, caller, options)

    async def _invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        options: Optional[CallOptions],
    ) -> Any:
        import time

        payload = self._codec.encode(method.arg_schema, args)
        start = time.perf_counter()
        error = False
        reply = b""
        try:
            reply = await self._call(
                reg.name, method, payload, options or CallOptions()
            )
            return self._codec.decode(method.result_schema, reply)
        except Exception:
            error = True
            raise
        finally:
            if self._call_graph is not None:
                self._call_graph.record(
                    caller,
                    reg.name,
                    method.name,
                    latency_s=time.perf_counter() - start,
                    bytes_sent=len(payload),
                    bytes_received=len(reply),
                    local=False,
                    error=error,
                )

    async def _call(
        self, service: str, method: MethodSpec, payload: bytes, opts: CallOptions
    ) -> bytes:
        import time

        budget_s = effective_budget_s(opts.deadline_s, self._timeout_s)
        if budget_s <= 0:
            raise DeadlineExceeded(
                f"no budget left calling {service}.{method.name}", executed=False
            )
        deadline = time.monotonic() + budget_s
        max_retries = self._max_retries if opts.retries is None else opts.retries
        attempt = 0
        backoff = self._retry_backoff_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"deadline exhausted calling {service}.{method.name}",
                    executed=False,
                )
            address = self._mesh.resolve(service)
            try:
                return await self._client.call(
                    address,
                    service,
                    method.name,
                    payload,
                    timeout=remaining,
                    deadline_ms=budget_to_wire_ms(remaining),
                    trace=current_context(),
                )
            except RPCError as exc:
                if not exc.retryable or attempt >= max_retries:
                    raise
                if exc.executed and not method.idempotent:
                    raise  # may have run server-side; don't double-execute
                attempt += 1
                self._client.drop(address)
                backoff = decorrelated_jitter(
                    backoff,
                    base_s=self._retry_backoff_s,
                    cap_s=self._retry_backoff_max_s,
                )
                if time.monotonic() + backoff >= deadline:
                    raise DeadlineExceeded(
                        f"budget exhausted retrying {service}.{method.name} "
                        f"(after {attempt} attempts)",
                        executed=exc.executed,
                    ) from exc
                await asyncio.sleep(backoff)

    async def close(self) -> None:
        await self._client.close()


class MicroserviceHost:
    """One microservice: a component impl behind an HTTP server."""

    def __init__(
        self,
        reg: Registration,
        build: FrozenRegistry,
        mesh: ServiceMesh,
        *,
        codec_name: str = "tagged",
        settings: Optional[dict[str, Any]] = None,
        address: str = "tcp://127.0.0.1:0",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.reg = reg
        self.build = build
        self.mesh = mesh
        self.tracer = tracer
        self._codec = codec_by_name(codec_name)
        self._remote = HttpInvoker(mesh, codec_name=codec_name, tracer=tracer)
        # The hosted impl's ctx.get(...) resolves through the mesh: every
        # dependency is a remote microservice, exactly like production.
        self._local = LocalInvoker(
            version=build.version,
            resolver=self,
            settings=settings or {},
        )
        self._server = HttpRpcServer(self._handle, address=address)
        self.address: Optional[str] = None

    def get_for(self, iface: type, caller: str) -> Any:
        dep = self.build.by_iface(iface)
        if dep.name == self.reg.name:
            return make_stub(dep, self._local, caller)
        return make_stub(dep, self._remote, caller)

    async def start(self) -> str:
        self.address = await self._server.start()
        self.mesh.register(self.reg.name, self.address)
        return self.address

    async def stop(self) -> None:
        if self.address is not None:
            self.mesh.deregister(self.reg.name, self.address)
        await self._server.stop()
        await self._remote.close()

    async def _handle(self, component: str, method: str, body: bytes) -> bytes:
        if component != self.reg.name:
            raise RPCError(
                f"this service hosts {self.reg.name}, not {component}", retryable=False
            )
        spec = self.reg.spec.by_name.get(method)
        if spec is None:
            raise RPCError(f"{component} has no method {method!r}", retryable=False)
        args = self._codec.decode(spec.arg_schema, body)
        if self.tracer is not None:
            # Join the caller's trace via the x-repro-trace header — the
            # propagation microservice stacks must hand-roll.
            with self.tracer.start_span(
                f"serve {self.reg.name.rsplit('.', 1)[-1]}.{method}",
                remote_parent=incoming_trace(),
                component=self.reg.name,
            ):
                result = await self._local.invoke(
                    self.reg, spec, tuple(args), caller="<http>"
                )
        else:
            result = await self._local.invoke(
                self.reg, spec, tuple(args), caller="<http>"
            )
        return self._codec.encode(spec.result_schema, result)


class BaselineApp:
    """A full microservices deployment of an application.

    The Application-shaped handle for the status quo: ``get()`` returns
    interface stubs backed by HTTP + the mesh, so callers (tests, load
    generators) are identical across worlds.
    """

    def __init__(
        self,
        build: FrozenRegistry,
        config: AppConfig,
        *,
        codec_name: str = "tagged",
    ) -> None:
        self.build = build
        self.config = config
        self.codec_name = codec_name
        self.mesh = ServiceMesh()
        self.call_graph = CallGraph()
        self.tracer = Tracer()
        self.hosts: dict[str, MicroserviceHost] = {}
        self._client = HttpInvoker(
            self.mesh,
            codec_name=codec_name,
            call_graph=self.call_graph,
            tracer=self.tracer,
        )

    @property
    def version(self) -> str:
        return self.build.version

    async def start(self) -> "BaselineApp":
        for reg in self.build:
            host = MicroserviceHost(
                reg,
                self.build,
                self.mesh,
                codec_name=self.codec_name,
                settings=self.config.settings,
                tracer=self.tracer,
            )
            self.hosts[reg.name] = host
            await host.start()
        return self

    def get(self, iface: type[T]) -> T:
        reg = self.build.by_iface(iface)
        return make_stub(reg, self._client, ROOT)

    async def shutdown(self) -> None:
        for host in self.hosts.values():
            await host.stop()
        self.hosts.clear()
        await self._client.close()

    async def __aenter__(self) -> "BaselineApp":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.shutdown()


async def deploy_baseline(
    config: Optional[AppConfig] = None,
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
    codec_name: str = "tagged",
) -> BaselineApp:
    """Deploy every component as its own HTTP microservice."""
    config = config or AppConfig()
    reg = registry or global_registry()
    build = reg.freeze(components=components)
    app = BaselineApp(build, config, codec_name=codec_name)
    return await app.start()
