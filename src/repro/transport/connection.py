"""Bidirectional RPC connections with version handshake and pipelining.

A connection starts with a handshake: the client sends ``HELLO(codec,
version)``; the server replies ``WELCOME(version)`` only if the deployment
versions (and codec) match, otherwise it closes.  This is where the atomic
rollout guarantee reaches the data plane — a proclet from version A can
never exchange a single application byte with a proclet from version B
(§4.4), which in turn is what makes the tag-free compact format safe (§6).

After the handshake, requests are pipelined: many may be in flight, matched
to responses by request id.  The read loop runs as a background task; a
broken connection fails all in-flight calls with a retryable error.

Writes are *coalesced adaptively*: senders append wire-ready chunks to an
outbox (a synchronous append — no lock, no await) and a single flusher
task gathers everything pending into one ``writelines`` + one ``drain``.
When the connection is idle a lone frame flushes immediately; under load,
frames that arrive while a previous ``drain`` is in flight ride out
together in the next batch — batching scales with pressure instead of a
timer.  A batch is bounded by ``max_batch_bytes``; an optional bounded
hold (``coalesce_hold_s``) can trade a hair of latency for wider batches.
Senders that get more than ``SEND_HIGH_WATER`` bytes ahead of the socket
wait for the flusher (backpressure), so a slow peer cannot balloon the
outbox.

A connection with *no batching opportunity* — a lone caller ping-ponging
request/response — bypasses the outbox entirely: when recent flush rounds
all carried a single frame and the transport buffer is empty, frames are
written straight through (``writelines``, no flusher hop, no drain).  The
first send that finds bytes already queued in the same loop tick flips
back to the flusher — concurrency *is* the batching opportunity — so the
direct path costs nothing under load and wins back the lone-stream latency
the flusher hop used to tax (the c=1 regression in BENCH_3.json).

Payloads above ``stream_threshold`` travel as a *streaming RPC*: an OPEN
frame followed by credit-gated chunks of ``stream_chunk`` bytes, so a huge
argument or result never monopolizes a flush batch (small RPCs interleave
between chunks) and may exceed ``MAX_FRAME``.  The receiver grants credits
as it consumes; either side can cancel mid-stream; a deadline that expires
between chunks fails the call without the rest of the payload ever being
sent.

``coalesce=False`` selects the pre-coalescing data plane — one
``write_frame`` + ``drain`` per message under a write lock — kept as a
measurable baseline for the dataplane benchmark gate.
"""

from __future__ import annotations

import asyncio
import collections
import contextvars
import itertools
import logging
from heapq import heapify, heappop, heappush
from typing import Awaitable, Callable, Optional

from repro.core.errors import (
    DeadlineExceeded,
    ErrorCode,
    RemoteApplicationError,
    RPCError,
    TransportError,
    Unavailable,
    VersionMismatch,
    error_from_code,
)
from repro.transport import message as msg
from repro.transport.framing import (
    HEADER,
    FrameParser,
    frame_chunks,
    new_frame,
    read_frame,
    write_frame,
)

log = logging.getLogger("repro.transport")

#: Server-side handler: (component_id, method_index, args, (trace_id,
#: parent_span_id), deadline_ms) -> result bytes.  ``deadline_ms`` is the
#: caller's remaining budget (0 = no deadline).  ``args`` may be a
#: zero-copy view into the request frame; the returned buffer may be any
#: bytes-like object and is owned by the connection once returned.
Handler = Callable[[int, int, bytes, tuple[int, int], int], Awaitable[bytes]]

#: Max bytes gathered into a single writelines+drain round.
MAX_BATCH_BYTES = 256 * 1024

#: Outbox bytes beyond which senders wait for the flusher (backpressure).
SEND_HIGH_WATER = 1 << 20

#: Read-side batch size: one read() await can deliver this many bytes'
#: worth of frames a coalescing peer flushed together.
READ_CHUNK = 256 * 1024

#: Payloads at or above this size travel as a streaming RPC (0 disables).
STREAM_THRESHOLD = 1 << 20

#: Payload bytes per STREAM_CHUNK frame.  64 KiB is the sweet spot on
#: loopback: larger chunks gain no throughput but each queued chunk is
#: head-of-line latency for small RPCs sharing the connection (once a
#: chunk reaches the kernel socket buffer, TCP's FIFO order is final —
#: the userspace priority lane can no longer help).
STREAM_CHUNK_BYTES = 64 * 1024

#: Credit window per stream: bytes the sender may have un-acknowledged.
#: Both peers must agree on this value — the transmitter seeds its pump
#: with *its own* window while the receiver re-grants after consuming
#: *its* window/2, so a transmitter window below the receiver's grant
#: threshold would park the pump forever.  The window is therefore a
#: protocol constant, not a per-connection tunable.
STREAM_WINDOW = 256 * 1024

#: Hard cap on one streamed payload (a corrupt total_len cannot OOM us).
MAX_STREAM = 1 << 32

#: Consecutive lone-frame flush rounds before direct write-through re-engages.
DIRECT_REENGAGE = 8


class _OutStream:
    """Sender side of one chunked payload (request upload or response
    download).  The pump task owns ``pos``; credit arrives from the peer's
    CREDIT frames and wakes the pump through ``event``."""

    __slots__ = ("req_id", "flags", "data", "credit", "event", "cancelled")

    def __init__(self, req_id: int, flags: int, data, credit: int) -> None:
        self.req_id = req_id
        self.flags = flags  # 0 = request direction, STREAM_RESP_DIR = response
        self.data = data
        self.credit = credit
        self.event = asyncio.Event()
        self.cancelled = False


class _InStream:
    """Receiver side of one chunked payload: accumulates chunks (copied out
    of the read buffer — a stream outlives its frames) and grants credit
    back as it consumes."""

    __slots__ = (
        "req_id", "dirflag", "parts", "received", "total", "to_grant",
        "component_id", "method_index", "trace_id", "parent_span_id",
        "deadline_ms", "deadline",
    )

    def __init__(self, req_id: int, dirflag: int, total: int) -> None:
        self.req_id = req_id
        self.dirflag = dirflag
        self.parts: list[bytes] = []
        self.received = 0
        self.total = total
        self.to_grant = 0
        self.component_id = 0
        self.method_index = 0
        self.trace_id = 0
        self.parent_span_id = 0
        self.deadline_ms = 0
        self.deadline = 0.0  # loop-clock absolute deadline; 0 = none


class Connection:
    """One established, handshaken connection (either side)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        handler: Optional[Handler] = None,
        name: str = "conn",
        compress: bool = False,
        coalesce: bool = True,
        coalesce_hold_s: float = 0.0,
        max_batch_bytes: int = MAX_BATCH_BYTES,
        stream_threshold: int = STREAM_THRESHOLD,
        stream_chunk: int = STREAM_CHUNK_BYTES,
        stream_window: int = STREAM_WINDOW,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self._name = name
        self._compress = compress
        self._coalesce = coalesce
        self._hold_s = coalesce_hold_s
        self._max_batch = max_batch_bytes
        self._req_ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._loop_task: Optional[asyncio.Task] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()  # legacy (coalesce=False) path only
        self._server_tasks: set[asyncio.Task] = set()
        # Two-lane outbox: stream chunks ride the bulk lane, which the
        # flusher drains only after the normal lane — a small RPC frame
        # never queues behind a megabyte of stream chunks.  Overtaking is
        # protocol-legal (req_ids are multiplexed, and within one stream
        # the chunks stay FIFO in their lane).
        self._outbox: collections.deque = collections.deque()
        self._outbox_bulk: collections.deque = collections.deque()
        self._outbox_bytes = 0
        self._bulk_bytes = 0
        self._wakeup = asyncio.Event()
        self._can_send = asyncio.Event()
        self._can_send.set()
        # Call timeouts: a heap of (deadline, req_id, ...) tuples behind ONE
        # armed TimerHandle, instead of a loop timer per call.  Entries for
        # completed calls are dropped lazily at sweep/compact time.
        self._timeouts: list = []
        self._timeout_timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Streaming: four registries because the two peers' req_id spaces
        # are independent — an id alone cannot say which stream is meant.
        self._stream_threshold = stream_threshold
        self._stream_chunk = stream_chunk
        self._stream_window = stream_window
        self._up_streams: dict[int, _OutStream] = {}    # our request uploads
        self._in_streams: dict[int, _InStream] = {}     # peer request uploads
        self._down_streams: dict[int, _OutStream] = {}  # our response downloads
        self._resp_streams: dict[int, _InStream] = {}   # peer response downloads
        # Direct write-through: on until concurrency is observed, re-armed
        # by the flusher after a streak of lone-frame rounds.
        self._direct = True
        self._lone_flushes = 0
        self._frames_enqueued = 0
        self._frames_flushed = 0
        #: Flush rounds and frames flushed (observability: frames/flush is
        #: the achieved coalescing factor).
        self.flushes = 0
        self.frames_sent = 0
        self.direct_writes = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the background read loop (after a successful handshake)."""
        # Record the home loop: all of this connection's state is owned by
        # the loop that started it, and a multi-worker pool must schedule
        # close() here rather than touch it from a foreign thread.
        self._loop = asyncio.get_running_loop()
        self._loop_task = asyncio.ensure_future(self._read_loop())
        if self._coalesce:
            self._flush_task = asyncio.ensure_future(self._flush_loop())

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def home_loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The event loop this connection's state lives on (set by start())."""
        return self._loop

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop_task is not None:
            self._loop_task.cancel()
        if self._flush_task is not None:
            self._flush_task.cancel()
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None
        self._timeouts.clear()
        for task in list(self._server_tasks):
            task.cancel()
        self._fail_pending(Unavailable("connection closed"))
        self._can_send.set()  # wake any sender stuck in backpressure
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        # Abort streams too: wake any pump parked on credit so it observes
        # the teardown instead of waiting forever.
        for out in list(self._up_streams.values()) + list(self._down_streams.values()):
            out.cancelled = True
            out.event.set()
        self._up_streams.clear()
        self._down_streams.clear()
        self._in_streams.clear()
        self._resp_streams.clear()

    # -- write path ----------------------------------------------------------

    def _try_send(self, head: bytearray, payload: bytes = b"", bulk: bool = False) -> bool:
        """Synchronous enqueue fast path; False means take ``_send``.

        Avoids a coroutine per frame on the hot path — enqueueing is pure
        bookkeeping unless the outbox is over the high-water mark (or the
        connection is closed, or coalescing is off), in which case the
        caller falls back to the awaitable slow path.

        When the connection is *lone* — no other call in flight, nothing
        queued anywhere — the frame skips the outbox and goes straight to
        the transport (no flusher hop, no drain round-trip).  The first
        send that observes company flips ``_direct`` off so the flusher
        can batch; a streak of lone-frame flushes flips it back on.

        ``bulk`` routes the frame to the low-priority lane.  Backpressure
        differs by lane: bulk yields when *total* queued bytes cross the
        high-water mark, while normal frames only yield when the normal
        lane alone is saturated — queued stream chunks must not be able to
        park a small RPC behind the flusher.
        """
        if not self._coalesce or self._closed:
            return False
        if self._direct and not self._outbox and not self._outbox_bulk:
            if (
                len(self._pending) <= 1
                and not self._server_tasks
                and self._writer.transport.get_write_buffer_size() == 0
            ):
                self._writer.writelines(
                    frame_chunks(head, payload, compress=self._compress)
                )
                self.frames_sent += 1
                self.direct_writes += 1
                return True
            self._direct = False  # company observed: batching will pay now
        pressure = self._outbox_bytes if bulk else self._outbox_bytes - self._bulk_bytes
        if pressure >= SEND_HIGH_WATER:
            return False
        lane = self._outbox_bulk if bulk else self._outbox
        for chunk in frame_chunks(head, payload, compress=self._compress):
            lane.append(chunk)
            self._outbox_bytes += len(chunk)
            if bulk:
                self._bulk_bytes += len(chunk)
        self.frames_sent += 1
        self._frames_enqueued += 1
        self._wakeup.set()
        return True

    async def _send(
        self, head: bytearray, payload: bytes = b"", bulk: bool = False
    ) -> None:
        """Ship one frame: ``head`` from ``new_frame()`` plus a body chunk.

        Coalescing path: append to the outbox (synchronous, order is
        enqueue order) and wake the flusher; waits first if the outbox is
        over the high-water mark.  Legacy path: write + drain per frame
        under the write lock, as the data plane did before coalescing.
        """
        if self._coalesce:
            while not self._closed and (
                self._outbox_bytes if bulk else self._outbox_bytes - self._bulk_bytes
            ) >= SEND_HIGH_WATER:
                self._can_send.clear()
                await self._can_send.wait()
            if self._closed:
                raise TransportError("connection closed")
            lane = self._outbox_bulk if bulk else self._outbox
            for chunk in frame_chunks(head, payload, compress=self._compress):
                lane.append(chunk)
                self._outbox_bytes += len(chunk)
                if bulk:
                    self._bulk_bytes += len(chunk)
            self.frames_sent += 1
            self._frames_enqueued += 1
            self._wakeup.set()
        else:
            body = b"".join((memoryview(head)[HEADER:], payload))
            async with self._write_lock:
                await write_frame(self._writer, body, compress=self._compress)
            self.frames_sent += 1

    async def _flush_loop(self) -> None:
        """The one task that touches the socket's write side.

        Everything pending at flush time leaves in a single ``writelines``
        followed by a single ``drain`` — under concurrency, dozens of
        frames share one syscall and one buffer-flush round instead of
        serializing behind per-frame drains.
        """
        try:
            while True:
                if not self._outbox and not self._outbox_bulk:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                if self._hold_s > 0.0:
                    # Bounded hold: gather a wider batch at a latency cost.
                    await asyncio.sleep(self._hold_s)
                batch = []
                size = 0
                outbox = self._outbox
                bulk_lane = self._outbox_bulk
                # Normal lane first; stream chunks only top up the batch.
                while outbox and size < self._max_batch:
                    chunk = outbox.popleft()
                    batch.append(chunk)
                    size += len(chunk)
                # At most one stream chunk per round: every drain round is
                # a slot where queued small frames overtake the bulk flow,
                # so the kernel never holds more than ~one chunk of bulk
                # ahead of them.
                bulk_size = 0
                while (
                    bulk_lane
                    and size < self._max_batch
                    and bulk_size <= self._stream_chunk
                ):
                    chunk = bulk_lane.popleft()
                    batch.append(chunk)
                    size += len(chunk)
                    bulk_size += len(chunk)
                    self._bulk_bytes -= len(chunk)
                self._outbox_bytes -= size
                if not self._can_send.is_set():
                    # Waiters re-check their own lane's pressure; just wake.
                    self._can_send.set()
                self.flushes += 1
                self._writer.writelines(batch)
                if outbox or bulk_lane:
                    self._lone_flushes = 0  # partial batch: real load
                else:
                    frames = self._frames_enqueued - self._frames_flushed
                    self._frames_flushed = self._frames_enqueued
                    if frames <= 1:
                        self._lone_flushes += 1
                        if self._lone_flushes >= DIRECT_REENGAGE:
                            # Traffic has turned lone: skip the flusher hop
                            # until concurrency shows up again.
                            self._direct = True
                            self._lone_flushes = 0
                    else:
                        self._lone_flushes = 0
                await self._writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError) as exc:
            if not self._closed:
                log.debug("%s: flush loop ended: %s", self._name, exc)
            self._closed = True
            self._fail_pending(Unavailable("connection lost"))
            self._can_send.set()
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass

    # -- client side ----------------------------------------------------------

    async def call(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        *,
        timeout: Optional[float] = None,
        trace: tuple[int, int] = (0, 0),
        deadline_ms: int = 0,
    ) -> bytes:
        """Issue one request and await its response bytes.

        ``args`` may be any bytes-like object; ownership transfers to the
        connection (do not mutate after the call).  ``deadline_ms`` is the
        remaining end-to-end budget shipped to the server (0 = unlimited);
        ``timeout`` is the local wait bound.
        """
        if self._closed:
            raise Unavailable("connection closed", executed=False)
        req_id = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        if self._stream_threshold and len(args) >= self._stream_threshold:
            return await self._stream_request(
                req_id, future, component_id, method_index, args,
                timeout=timeout, trace=trace, deadline_ms=deadline_ms,
            )
        head = new_frame()
        msg.encode_request_prefix(
            head,
            req_id,
            component_id,
            method_index,
            trace[0],
            trace[1],
            deadline_ms,
        )
        try:
            if not self._try_send(head, args):
                await self._send(head, args)
        except (ConnectionError, OSError, TransportError) as exc:
            self._pending.pop(req_id, None)
            await self.close()
            raise Unavailable(f"send failed: {exc}", executed=False) from exc
        if timeout is None:
            return await future
        self._arm_timeout(req_id, component_id, method_index, timeout)
        return await future

    def _arm_timeout(
        self, req_id: int, component_id: int, method_index: int, timeout: float
    ) -> None:
        # One shared timer per connection beats wait_for (a wrapper task
        # per call) and call_later (a TimerHandle per call): registering a
        # timeout is a tuple push onto a heap, and the single armed timer
        # sweeps everything due when it fires.
        loop = self._loop
        if loop is None:
            loop = self._loop = asyncio.get_running_loop()
        when = loop.time() + timeout
        heappush(self._timeouts, (when, req_id, component_id, method_index, timeout))
        timer = self._timeout_timer
        if timer is None:
            self._timeout_timer = loop.call_at(when, self._sweep_timeouts)
        elif when < timer.when():
            timer.cancel()
            self._timeout_timer = loop.call_at(when, self._sweep_timeouts)
        if len(self._timeouts) > 64 and len(self._timeouts) > 4 * len(self._pending):
            self._compact_timeouts()

    # -- streaming -------------------------------------------------------------

    async def _stream_request(
        self,
        req_id: int,
        future: asyncio.Future,
        component_id: int,
        method_index: int,
        args,
        *,
        timeout: Optional[float],
        trace: tuple[int, int],
        deadline_ms: int,
    ) -> bytes:
        """Upload ``args`` as OPEN + credit-gated chunks, then await the
        response.  The timeout is armed *before* the upload so a deadline
        that expires mid-stream (or between chunks) stops the pump."""
        if timeout is not None:
            self._arm_timeout(req_id, component_id, method_index, timeout)
        out = _OutStream(req_id, 0, args, self._stream_window)
        self._up_streams[req_id] = out
        head = new_frame()
        msg.encode_into(
            head,
            msg.StreamOpen(
                req_id, component_id, method_index,
                trace[0], trace[1], deadline_ms, len(args),
            ),
        )
        try:
            if not self._try_send(head):
                await self._send(head)
            await self._pump_stream(out, future)
        except (ConnectionError, OSError, TransportError) as exc:
            self._pending.pop(req_id, None)
            await self.close()
            raise Unavailable(f"send failed: {exc}", executed=False) from exc
        finally:
            self._up_streams.pop(req_id, None)
        return await future

    async def _pump_stream(
        self, out: _OutStream, future: Optional[asyncio.Future]
    ) -> None:
        """Transmit an outgoing stream's payload, chunk by chunk, as credit
        allows.  Stops early if the call already failed (``future`` done —
        timeout sweep wakes ``out.event``) or the peer cancelled."""
        data = memoryview(out.data)
        size = len(data)
        pos = 0
        while True:
            if out.cancelled:
                return  # peer said stop (or connection tore down)
            if future is not None and future.done():
                # The call failed locally (timeout / teardown) mid-upload:
                # tell the receiver to discard its partial accumulation.
                self._post(msg.StreamCancel(out.req_id, 0))
                return
            if out.credit <= 0:
                out.event.clear()
                await out.event.wait()
                continue
            n = min(self._stream_chunk, size - pos, out.credit)
            end = pos + n
            flags = out.flags | (msg.STREAM_END if end >= size else 0)
            head = new_frame()
            msg.encode_stream_chunk_prefix(head, out.req_id, flags)
            # Chunks ride the bulk lane: small frames flush ahead of them.
            chunk = data[pos:end]
            out.credit -= n
            pos = end
            if not self._try_send(head, chunk, bulk=True):
                await self._send(head, chunk, bulk=True)
            if end >= size:
                return

    def _post(self, m) -> None:
        """Best-effort synchronous control-frame send (credits, cancels).

        Falls back to a fire-and-forget task when the outbox is saturated
        or coalescing is off; failures are swallowed — control frames are
        advisory and the read loop owns teardown.
        """
        if self._closed:
            return
        head = new_frame()
        msg.encode_into(head, m)
        try:
            if not self._try_send(head):
                task = asyncio.ensure_future(self._post_slow(head))
                self._server_tasks.add(task)
                task.add_done_callback(self._server_tasks.discard)
        except (ConnectionError, OSError, TransportError):
            pass

    async def _post_slow(self, head: bytearray) -> None:
        try:
            await self._send(head)
        except (ConnectionError, OSError, TransportError):
            pass

    def _sweep_timeouts(self) -> None:
        """Fail every pending call whose deadline has passed; rearm."""
        self._timeout_timer = None
        heap = self._timeouts
        now = self._loop.time()
        while heap and heap[0][0] <= now:
            _, req_id, component_id, method_index, timeout = heappop(heap)
            future = self._pending.get(req_id)
            if future is None or future.done():
                continue  # completed long ago; entry was lazily retained
            del self._pending[req_id]
            future.set_exception(
                DeadlineExceeded(
                    f"call to component {component_id} method {method_index} "
                    f"timed out after {timeout}s"
                )
            )
            # Streaming calls need more than a failed future: wake an
            # upload pump parked on credit (it will observe the done future
            # and cancel toward the receiver), and tell the peer to stop
            # transmitting a response stream we will never consume.
            up = self._up_streams.get(req_id)
            if up is not None:
                up.event.set()
            if self._resp_streams.pop(req_id, None) is not None:
                self._post(
                    msg.StreamCancel(
                        req_id, msg.STREAM_RESP_DIR | msg.STREAM_TO_SENDER
                    )
                )
        if heap:
            self._timeout_timer = self._loop.call_at(heap[0][0], self._sweep_timeouts)

    def _compact_timeouts(self) -> None:
        """Drop heap entries for calls that already completed."""
        pending = self._pending
        self._timeouts = [e for e in self._timeouts if e[1] in pending]
        heapify(self._timeouts)

    async def ping(self, timeout: float = 5.0) -> bool:
        """Health probe: true if the peer answers a PING in time."""
        nonce = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[-nonce] = future  # negative keys: ping namespace
        try:
            head = new_frame()
            msg.encode_into(head, msg.Ping(nonce))
            await self._send(head)
            await asyncio.wait_for(future, timeout)
            return True
        except (asyncio.TimeoutError, RPCError, TransportError, ConnectionError, OSError):
            return False
        finally:
            self._pending.pop(-nonce, None)

    # -- read loop -------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            parser = FrameParser()
            reader = self._reader
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    raise TransportError(
                        "connection closed mid-frame"
                        if parser.mid_frame
                        else "connection closed"
                    )
                frames = parser.feed(chunk)
                if len(frames) > 1 and self._direct:
                    # The peer is coalescing — our replies will have
                    # company too; stop skipping the flusher.
                    self._direct = False
                    self._lone_flushes = 0
                for frame in frames:
                    await self._dispatch(msg.decode(frame))
        except (TransportError, ConnectionError, OSError) as exc:
            if not self._closed:
                log.debug("%s: read loop ended: %s", self._name, exc)
        except asyncio.CancelledError:
            pass
        finally:
            self._closed = True
            self._fail_pending(Unavailable("connection lost"))
            self._can_send.set()
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, m: object) -> None:
        if isinstance(m, msg.Response):
            self._resolve(m.req_id, m.result, None)
        elif isinstance(m, msg.StreamChunk):
            if m.flags & msg.STREAM_RESP_DIR:
                self._on_resp_chunk(m)
            else:
                self._on_req_chunk(m)
        elif isinstance(m, msg.AppError):
            self._resolve(
                m.req_id, None, RemoteApplicationError(m.exc_type, m.message)
            )
        elif isinstance(m, msg.RpcError):
            self._resolve(
                m.req_id,
                None,
                error_from_code(m.code, m.message, executed=m.executed),
            )
        elif isinstance(m, msg.Request):
            self._spawn_server_task(m)
        elif isinstance(m, msg.StreamOpen):
            self._on_stream_open(m)
        elif isinstance(m, msg.StreamResp):
            self._on_stream_resp(m)
        elif isinstance(m, msg.StreamCredit):
            self._on_stream_credit(m)
        elif isinstance(m, msg.StreamCancel):
            self._on_stream_cancel(m)
        elif isinstance(m, msg.Ping):
            head = new_frame()
            msg.encode_into(head, msg.Pong(m.nonce))
            await self._send(head)
        elif isinstance(m, msg.Pong):
            self._resolve(-m.nonce, b"", None)
        else:
            log.warning("%s: unexpected message %r", self._name, m)

    def _resolve(self, req_id: int, result: Optional[bytes], exc: Optional[Exception]) -> None:
        future = self._pending.pop(req_id, None)
        if future is None or future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    # -- streaming receive -------------------------------------------------------

    def _on_stream_open(self, m: msg.StreamOpen) -> None:
        if self._handler is None:
            self._post(
                msg.RpcError(
                    m.req_id,
                    int(ErrorCode.INTERNAL),
                    "peer does not serve requests",
                    False,
                )
            )
            self._post(msg.StreamCancel(m.req_id, msg.STREAM_TO_SENDER))
            return
        if m.total_len > MAX_STREAM:
            self._post(
                msg.RpcError(
                    m.req_id,
                    int(ErrorCode.RESOURCE_EXHAUSTED),
                    f"stream of {m.total_len} bytes exceeds cap {MAX_STREAM}",
                    False,
                )
            )
            self._post(msg.StreamCancel(m.req_id, msg.STREAM_TO_SENDER))
            return
        st = _InStream(m.req_id, 0, m.total_len)
        st.component_id = m.component_id
        st.method_index = m.method_index
        st.trace_id = m.trace_id
        st.parent_span_id = m.parent_span_id
        st.deadline_ms = m.deadline_ms
        if m.deadline_ms:
            st.deadline = asyncio.get_running_loop().time() + m.deadline_ms / 1000.0
        self._in_streams[m.req_id] = st

    def _on_req_chunk(self, m: msg.StreamChunk) -> None:
        st = self._in_streams.get(m.req_id)
        if st is None:
            return  # stream already cancelled/errored; ignore the straggler
        if st.deadline and asyncio.get_running_loop().time() >= st.deadline:
            # The caller's budget ran out between chunks: fail the call
            # without receiving (or serving) the rest of the payload.
            del self._in_streams[m.req_id]
            self._post(
                msg.RpcError(
                    m.req_id,
                    int(ErrorCode.DEADLINE_EXCEEDED),
                    "deadline expired mid-upload",
                    False,
                )
            )
            self._post(msg.StreamCancel(m.req_id, msg.STREAM_TO_SENDER))
            return
        # Copy out of the read buffer: the stream outlives this frame.
        st.parts.append(bytes(m.data))
        st.received += len(m.data)
        if st.received > MAX_STREAM:
            del self._in_streams[m.req_id]
            self._post(
                msg.RpcError(
                    m.req_id,
                    int(ErrorCode.RESOURCE_EXHAUSTED),
                    f"stream exceeded cap {MAX_STREAM}",
                    False,
                )
            )
            self._post(msg.StreamCancel(m.req_id, msg.STREAM_TO_SENDER))
            return
        if m.flags & msg.STREAM_END:
            del self._in_streams[m.req_id]
            remaining = 0
            if st.deadline:
                remaining = max(
                    1,
                    int((st.deadline - asyncio.get_running_loop().time()) * 1000),
                )
            self._spawn_server_task(
                msg.Request(
                    st.req_id,
                    st.component_id,
                    st.method_index,
                    b"".join(st.parts),
                    st.trace_id,
                    st.parent_span_id,
                    remaining,
                )
            )
        else:
            self._grant_credit(st, len(m.data))

    def _on_stream_resp(self, m: msg.StreamResp) -> None:
        if m.req_id not in self._pending:
            # Timed out before the response started: stop the transmitter.
            self._post(
                msg.StreamCancel(
                    m.req_id, msg.STREAM_RESP_DIR | msg.STREAM_TO_SENDER
                )
            )
            return
        self._resp_streams[m.req_id] = _InStream(
            m.req_id, msg.STREAM_RESP_DIR, m.total_len
        )

    def _on_resp_chunk(self, m: msg.StreamChunk) -> None:
        st = self._resp_streams.get(m.req_id)
        if st is None:
            return
        if m.req_id not in self._pending:
            # Timed out mid-download: discard and stop the transmitter.
            del self._resp_streams[m.req_id]
            self._post(
                msg.StreamCancel(
                    m.req_id, msg.STREAM_RESP_DIR | msg.STREAM_TO_SENDER
                )
            )
            return
        st.parts.append(bytes(m.data))
        st.received += len(m.data)
        if m.flags & msg.STREAM_END:
            del self._resp_streams[m.req_id]
            self._resolve(m.req_id, b"".join(st.parts), None)
        else:
            self._grant_credit(st, len(m.data))

    def _grant_credit(self, st: _InStream, consumed: int) -> None:
        """Receiver-paced flow control: top the sender up once half the
        window has been consumed (batched — not a CREDIT per chunk)."""
        st.to_grant += consumed
        if st.to_grant >= self._stream_window // 2:
            self._post(msg.StreamCredit(st.req_id, st.dirflag, st.to_grant))
            st.to_grant = 0

    def _on_stream_credit(self, m: msg.StreamCredit) -> None:
        registry = (
            self._down_streams
            if m.flags & msg.STREAM_RESP_DIR
            else self._up_streams
        )
        out = registry.get(m.req_id)
        if out is not None:
            out.credit += m.bytes_
            out.event.set()

    def _on_stream_cancel(self, m: msg.StreamCancel) -> None:
        resp_dir = bool(m.flags & msg.STREAM_RESP_DIR)
        if m.flags & msg.STREAM_TO_SENDER:
            # We are the transmitter: stop the pump, release its credit wait.
            registry = self._down_streams if resp_dir else self._up_streams
            out = registry.get(m.req_id)
            if out is not None:
                out.cancelled = True
                out.event.set()
        else:
            # We are the receiver: discard the partial accumulation.
            if resp_dir:
                if self._resp_streams.pop(m.req_id, None) is not None:
                    self._resolve(
                        m.req_id,
                        None,
                        error_from_code(
                            int(ErrorCode.UNAVAILABLE),
                            "peer cancelled response stream",
                            executed=True,
                        ),
                    )
            else:
                self._in_streams.pop(m.req_id, None)

    # -- server side -------------------------------------------------------------

    def _spawn_server_task(self, request: msg.Request) -> None:
        if self._handler is None:
            task = asyncio.ensure_future(
                self._send_error(
                    request.req_id,
                    code=ErrorCode.INTERNAL,
                    text="peer does not serve requests",
                    executed=False,
                )
            )
            self._server_tasks.add(task)
            task.add_done_callback(self._server_tasks.discard)
            return
        # Eager dispatch: step the serve coroutine once, in its own
        # contextvars Context (handlers set ambient deadline/span vars, and
        # their reset tokens must stay context-local).  A handler that
        # finishes without suspending — common for cheap methods — never
        # pays for a Task; one that suspends is handed, mid-await, to a
        # trampoline task created in the same Context.
        coro = self._serve_one(request)
        ctx = contextvars.copy_context()
        try:
            pending = ctx.run(coro.send, None)
        except StopIteration:
            return
        except BaseException:
            log.exception("%s: server handler failed in eager step", self._name)
            return
        task = asyncio.get_running_loop().create_task(
            _finish_eager(coro, pending), context=ctx
        )
        self._server_tasks.add(task)
        task.add_done_callback(self._server_tasks.discard)

    async def _serve_one(self, request: msg.Request) -> None:
        payload: bytes = b""
        try:
            result = await self._handler(
                request.component_id,
                request.method_index,
                request.args,
                (request.trace_id, request.parent_span_id),
                request.deadline_ms,
            )
            if self._stream_threshold and len(result) >= self._stream_threshold:
                try:
                    await self._stream_response(request.req_id, result)
                except (ConnectionError, OSError, TransportError):
                    pass  # peer is gone; read loop will tear down
                return
            head = new_frame()
            msg.encode_response_prefix(head, request.req_id)
            payload = result
        except RPCError as exc:
            head = new_frame()
            msg.encode_into(
                head, msg.RpcError(request.req_id, int(exc.code), str(exc), exc.executed)
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # application exception: ship type + message
            head = new_frame()
            msg.encode_into(
                head, msg.AppError(request.req_id, type(exc).__name__, str(exc))
            )
        try:
            if not self._try_send(head, payload):
                await self._send(head, payload)
        except (ConnectionError, OSError, TransportError):
            pass  # peer is gone; read loop will tear down

    async def _stream_response(self, req_id: int, result) -> None:
        """Ship a large result as STREAM_RESP + credit-gated chunks, so it
        never monopolizes a flush batch and may exceed ``MAX_FRAME``."""
        out = _OutStream(req_id, msg.STREAM_RESP_DIR, result, self._stream_window)
        self._down_streams[req_id] = out
        head = new_frame()
        msg.encode_into(head, msg.StreamResp(req_id, len(result)))
        try:
            if not self._try_send(head):
                await self._send(head)
            await self._pump_stream(out, None)
        finally:
            self._down_streams.pop(req_id, None)

    async def _send_error(
        self, req_id: int, *, code: ErrorCode, text: str, executed: bool = True
    ) -> None:
        try:
            head = new_frame()
            msg.encode_into(head, msg.RpcError(req_id, int(code), text, executed))
            await self._send(head)
        except (ConnectionError, OSError, TransportError):
            pass


def _unblock(pending) -> None:
    """Clear a yielded future's blocking marker, as ``Task.__step`` would.

    ``Future.__await__`` sets ``_asyncio_future_blocking`` when it yields
    and relies on the consumer to clear it; a still-set flag makes the
    future's next ``__await__`` believe it is a botched resume and raise
    "await wasn't used with future".
    """
    if pending is not None and getattr(pending, "_asyncio_future_blocking", None):
        pending._asyncio_future_blocking = False


async def _finish_eager(coro, pending) -> None:
    """Drive a coroutine whose first step already ran eagerly.

    A minimal Task trampoline: wait for whatever the coroutine yielded
    (the future it is parked on), then resume it — the future's result or
    exception is delivered when the coroutine itself calls ``result()`` on
    resume, exactly as under a real Task.  Cancelling this task cancels
    the awaited future (normal Task semantics); cancellation aimed at the
    trampoline while the future stands is thrown into the coroutine so
    its cleanup runs.
    """
    while True:
        _unblock(pending)
        try:
            if pending is None:
                await asyncio.sleep(0)  # bare yield: give the loop one turn
            else:
                await pending
        except asyncio.CancelledError:
            if pending is not None and pending.cancelled():
                pass  # delivered via pending.result() inside the coroutine
            else:
                try:
                    pending = coro.throw(asyncio.CancelledError())
                    continue  # the coroutine absorbed it and awaits anew
                except StopIteration:
                    return
        except BaseException:
            pass  # delivered via pending.result() inside the coroutine
        try:
            pending = coro.send(None)
        except StopIteration:
            return


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Send HELLO, await WELCOME, verify versions match."""
    await write_frame(writer, msg.encode(msg.Hello(codec, version)))
    reply = msg.decode(await read_frame(reader))
    if not isinstance(reply, msg.Welcome):
        raise TransportError(f"handshake failed: expected WELCOME, got {reply!r}")
    if reply.version != version or reply.codec != codec:
        raise VersionMismatch(
            f"peer runs deployment version {reply.version} codec "
            f"{reply.codec!r}, we run {version} codec {codec!r}; "
            "cross-version communication is forbidden (atomic rollouts)"
        )


async def server_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Await HELLO, verify codec+version, reply WELCOME (or close)."""
    hello = msg.decode(await read_frame(reader))
    if not isinstance(hello, msg.Hello):
        raise TransportError(f"handshake failed: expected HELLO, got {hello!r}")
    if hello.version != version or hello.codec != codec:
        # Announce our version so the client can raise a precise error,
        # then close: no application data crosses the version boundary.
        await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
        writer.close()
        raise VersionMismatch(
            f"client at version {hello.version} codec {hello.codec!r}, "
            f"we are {version} codec {codec!r}"
        )
    await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
