"""Bidirectional RPC connections with version handshake and pipelining.

A connection starts with a handshake: the client sends ``HELLO(codec,
version)``; the server replies ``WELCOME(version)`` only if the deployment
versions (and codec) match, otherwise it closes.  This is where the atomic
rollout guarantee reaches the data plane — a proclet from version A can
never exchange a single application byte with a proclet from version B
(§4.4), which in turn is what makes the tag-free compact format safe (§6).

After the handshake, requests are pipelined: many may be in flight, matched
to responses by request id.  The read loop runs as a background task; a
broken connection fails all in-flight calls with a retryable error.

Writes are *coalesced adaptively*: senders append wire-ready chunks to an
outbox (a synchronous append — no lock, no await) and a single flusher
task gathers everything pending into one ``writelines`` + one ``drain``.
When the connection is idle a lone frame flushes immediately; under load,
frames that arrive while a previous ``drain`` is in flight ride out
together in the next batch — batching scales with pressure instead of a
timer.  A batch is bounded by ``max_batch_bytes``; an optional bounded
hold (``coalesce_hold_s``) can trade a hair of latency for wider batches.
Senders that get more than ``SEND_HIGH_WATER`` bytes ahead of the socket
wait for the flusher (backpressure), so a slow peer cannot balloon the
outbox.

``coalesce=False`` selects the pre-coalescing data plane — one
``write_frame`` + ``drain`` per message under a write lock — kept as a
measurable baseline for the dataplane benchmark gate.
"""

from __future__ import annotations

import asyncio
import collections
import contextvars
import itertools
import logging
from heapq import heapify, heappop, heappush
from typing import Awaitable, Callable, Optional

from repro.core.errors import (
    DeadlineExceeded,
    ErrorCode,
    RemoteApplicationError,
    RPCError,
    TransportError,
    Unavailable,
    VersionMismatch,
    error_from_code,
)
from repro.transport import message as msg
from repro.transport.framing import (
    HEADER,
    FrameParser,
    frame_chunks,
    new_frame,
    read_frame,
    write_frame,
)

log = logging.getLogger("repro.transport")

#: Server-side handler: (component_id, method_index, args, (trace_id,
#: parent_span_id), deadline_ms) -> result bytes.  ``deadline_ms`` is the
#: caller's remaining budget (0 = no deadline).  ``args`` may be a
#: zero-copy view into the request frame; the returned buffer may be any
#: bytes-like object and is owned by the connection once returned.
Handler = Callable[[int, int, bytes, tuple[int, int], int], Awaitable[bytes]]

#: Max bytes gathered into a single writelines+drain round.
MAX_BATCH_BYTES = 256 * 1024

#: Outbox bytes beyond which senders wait for the flusher (backpressure).
SEND_HIGH_WATER = 1 << 20

#: Read-side batch size: one read() await can deliver this many bytes'
#: worth of frames a coalescing peer flushed together.
READ_CHUNK = 256 * 1024


class Connection:
    """One established, handshaken connection (either side)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        handler: Optional[Handler] = None,
        name: str = "conn",
        compress: bool = False,
        coalesce: bool = True,
        coalesce_hold_s: float = 0.0,
        max_batch_bytes: int = MAX_BATCH_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self._name = name
        self._compress = compress
        self._coalesce = coalesce
        self._hold_s = coalesce_hold_s
        self._max_batch = max_batch_bytes
        self._req_ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._loop_task: Optional[asyncio.Task] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()  # legacy (coalesce=False) path only
        self._server_tasks: set[asyncio.Task] = set()
        self._outbox: collections.deque = collections.deque()
        self._outbox_bytes = 0
        self._wakeup = asyncio.Event()
        self._can_send = asyncio.Event()
        self._can_send.set()
        # Call timeouts: a heap of (deadline, req_id, ...) tuples behind ONE
        # armed TimerHandle, instead of a loop timer per call.  Entries for
        # completed calls are dropped lazily at sweep/compact time.
        self._timeouts: list = []
        self._timeout_timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Flush rounds and frames flushed (observability: frames/flush is
        #: the achieved coalescing factor).
        self.flushes = 0
        self.frames_sent = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the background read loop (after a successful handshake)."""
        self._loop_task = asyncio.ensure_future(self._read_loop())
        if self._coalesce:
            self._flush_task = asyncio.ensure_future(self._flush_loop())

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop_task is not None:
            self._loop_task.cancel()
        if self._flush_task is not None:
            self._flush_task.cancel()
        if self._timeout_timer is not None:
            self._timeout_timer.cancel()
            self._timeout_timer = None
        self._timeouts.clear()
        for task in list(self._server_tasks):
            task.cancel()
        self._fail_pending(Unavailable("connection closed"))
        self._can_send.set()  # wake any sender stuck in backpressure
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    # -- write path ----------------------------------------------------------

    def _try_send(self, head: bytearray, payload: bytes = b"") -> bool:
        """Synchronous enqueue fast path; False means take ``_send``.

        Avoids a coroutine per frame on the hot path — enqueueing is pure
        bookkeeping unless the outbox is over the high-water mark (or the
        connection is closed, or coalescing is off), in which case the
        caller falls back to the awaitable slow path.
        """
        if (
            not self._coalesce
            or self._closed
            or self._outbox_bytes >= SEND_HIGH_WATER
        ):
            return False
        for chunk in frame_chunks(head, payload, compress=self._compress):
            self._outbox.append(chunk)
            self._outbox_bytes += len(chunk)
        self.frames_sent += 1
        self._wakeup.set()
        return True

    async def _send(self, head: bytearray, payload: bytes = b"") -> None:
        """Ship one frame: ``head`` from ``new_frame()`` plus a body chunk.

        Coalescing path: append to the outbox (synchronous, order is
        enqueue order) and wake the flusher; waits first if the outbox is
        over the high-water mark.  Legacy path: write + drain per frame
        under the write lock, as the data plane did before coalescing.
        """
        if self._coalesce:
            while not self._closed and self._outbox_bytes >= SEND_HIGH_WATER:
                self._can_send.clear()
                await self._can_send.wait()
            if self._closed:
                raise TransportError("connection closed")
            for chunk in frame_chunks(head, payload, compress=self._compress):
                self._outbox.append(chunk)
                self._outbox_bytes += len(chunk)
            self.frames_sent += 1
            self._wakeup.set()
        else:
            body = b"".join((memoryview(head)[HEADER:], payload))
            async with self._write_lock:
                await write_frame(self._writer, body, compress=self._compress)
            self.frames_sent += 1

    async def _flush_loop(self) -> None:
        """The one task that touches the socket's write side.

        Everything pending at flush time leaves in a single ``writelines``
        followed by a single ``drain`` — under concurrency, dozens of
        frames share one syscall and one buffer-flush round instead of
        serializing behind per-frame drains.
        """
        try:
            while True:
                if not self._outbox:
                    self._wakeup.clear()
                    await self._wakeup.wait()
                if self._hold_s > 0.0:
                    # Bounded hold: gather a wider batch at a latency cost.
                    await asyncio.sleep(self._hold_s)
                batch = []
                size = 0
                outbox = self._outbox
                while outbox and size < self._max_batch:
                    chunk = outbox.popleft()
                    batch.append(chunk)
                    size += len(chunk)
                self._outbox_bytes -= size
                if self._outbox_bytes < SEND_HIGH_WATER and not self._can_send.is_set():
                    self._can_send.set()
                self.flushes += 1
                self._writer.writelines(batch)
                await self._writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError) as exc:
            if not self._closed:
                log.debug("%s: flush loop ended: %s", self._name, exc)
            self._closed = True
            self._fail_pending(Unavailable("connection lost"))
            self._can_send.set()
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass

    # -- client side ----------------------------------------------------------

    async def call(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        *,
        timeout: Optional[float] = None,
        trace: tuple[int, int] = (0, 0),
        deadline_ms: int = 0,
    ) -> bytes:
        """Issue one request and await its response bytes.

        ``args`` may be any bytes-like object; ownership transfers to the
        connection (do not mutate after the call).  ``deadline_ms`` is the
        remaining end-to-end budget shipped to the server (0 = unlimited);
        ``timeout`` is the local wait bound.
        """
        if self._closed:
            raise Unavailable("connection closed", executed=False)
        req_id = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        head = new_frame()
        msg.encode_request_prefix(
            head,
            req_id,
            component_id,
            method_index,
            trace[0],
            trace[1],
            deadline_ms,
        )
        try:
            if not self._try_send(head, args):
                await self._send(head, args)
        except (ConnectionError, OSError, TransportError) as exc:
            self._pending.pop(req_id, None)
            await self.close()
            raise Unavailable(f"send failed: {exc}", executed=False) from exc
        if timeout is None:
            return await future
        # One shared timer per connection beats wait_for (a wrapper task
        # per call) and call_later (a TimerHandle per call): registering a
        # timeout is a tuple push onto a heap, and the single armed timer
        # sweeps everything due when it fires.
        loop = self._loop
        if loop is None:
            loop = self._loop = future.get_loop()
        when = loop.time() + timeout
        heappush(self._timeouts, (when, req_id, component_id, method_index, timeout))
        timer = self._timeout_timer
        if timer is None:
            self._timeout_timer = loop.call_at(when, self._sweep_timeouts)
        elif when < timer.when():
            timer.cancel()
            self._timeout_timer = loop.call_at(when, self._sweep_timeouts)
        if len(self._timeouts) > 64 and len(self._timeouts) > 4 * len(self._pending):
            self._compact_timeouts()
        return await future

    def _sweep_timeouts(self) -> None:
        """Fail every pending call whose deadline has passed; rearm."""
        self._timeout_timer = None
        heap = self._timeouts
        now = self._loop.time()
        while heap and heap[0][0] <= now:
            _, req_id, component_id, method_index, timeout = heappop(heap)
            future = self._pending.get(req_id)
            if future is None or future.done():
                continue  # completed long ago; entry was lazily retained
            del self._pending[req_id]
            future.set_exception(
                DeadlineExceeded(
                    f"call to component {component_id} method {method_index} "
                    f"timed out after {timeout}s"
                )
            )
        if heap:
            self._timeout_timer = self._loop.call_at(heap[0][0], self._sweep_timeouts)

    def _compact_timeouts(self) -> None:
        """Drop heap entries for calls that already completed."""
        pending = self._pending
        self._timeouts = [e for e in self._timeouts if e[1] in pending]
        heapify(self._timeouts)

    async def ping(self, timeout: float = 5.0) -> bool:
        """Health probe: true if the peer answers a PING in time."""
        nonce = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[-nonce] = future  # negative keys: ping namespace
        try:
            head = new_frame()
            msg.encode_into(head, msg.Ping(nonce))
            await self._send(head)
            await asyncio.wait_for(future, timeout)
            return True
        except (asyncio.TimeoutError, RPCError, TransportError, ConnectionError, OSError):
            return False
        finally:
            self._pending.pop(-nonce, None)

    # -- read loop -------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            parser = FrameParser()
            reader = self._reader
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    raise TransportError(
                        "connection closed mid-frame"
                        if parser.mid_frame
                        else "connection closed"
                    )
                for frame in parser.feed(chunk):
                    await self._dispatch(msg.decode(frame))
        except (TransportError, ConnectionError, OSError) as exc:
            if not self._closed:
                log.debug("%s: read loop ended: %s", self._name, exc)
        except asyncio.CancelledError:
            pass
        finally:
            self._closed = True
            self._fail_pending(Unavailable("connection lost"))
            self._can_send.set()
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, m: object) -> None:
        if isinstance(m, msg.Response):
            self._resolve(m.req_id, m.result, None)
        elif isinstance(m, msg.AppError):
            self._resolve(
                m.req_id, None, RemoteApplicationError(m.exc_type, m.message)
            )
        elif isinstance(m, msg.RpcError):
            self._resolve(
                m.req_id,
                None,
                error_from_code(m.code, m.message, executed=m.executed),
            )
        elif isinstance(m, msg.Request):
            self._spawn_server_task(m)
        elif isinstance(m, msg.Ping):
            head = new_frame()
            msg.encode_into(head, msg.Pong(m.nonce))
            await self._send(head)
        elif isinstance(m, msg.Pong):
            self._resolve(-m.nonce, b"", None)
        else:
            log.warning("%s: unexpected message %r", self._name, m)

    def _resolve(self, req_id: int, result: Optional[bytes], exc: Optional[Exception]) -> None:
        future = self._pending.pop(req_id, None)
        if future is None or future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    # -- server side -------------------------------------------------------------

    def _spawn_server_task(self, request: msg.Request) -> None:
        if self._handler is None:
            task = asyncio.ensure_future(
                self._send_error(
                    request.req_id,
                    code=ErrorCode.INTERNAL,
                    text="peer does not serve requests",
                    executed=False,
                )
            )
            self._server_tasks.add(task)
            task.add_done_callback(self._server_tasks.discard)
            return
        # Eager dispatch: step the serve coroutine once, in its own
        # contextvars Context (handlers set ambient deadline/span vars, and
        # their reset tokens must stay context-local).  A handler that
        # finishes without suspending — common for cheap methods — never
        # pays for a Task; one that suspends is handed, mid-await, to a
        # trampoline task created in the same Context.
        coro = self._serve_one(request)
        ctx = contextvars.copy_context()
        try:
            pending = ctx.run(coro.send, None)
        except StopIteration:
            return
        except BaseException:
            log.exception("%s: server handler failed in eager step", self._name)
            return
        task = asyncio.get_running_loop().create_task(
            _finish_eager(coro, pending), context=ctx
        )
        self._server_tasks.add(task)
        task.add_done_callback(self._server_tasks.discard)

    async def _serve_one(self, request: msg.Request) -> None:
        payload: bytes = b""
        try:
            result = await self._handler(
                request.component_id,
                request.method_index,
                request.args,
                (request.trace_id, request.parent_span_id),
                request.deadline_ms,
            )
            head = new_frame()
            msg.encode_response_prefix(head, request.req_id)
            payload = result
        except RPCError as exc:
            head = new_frame()
            msg.encode_into(
                head, msg.RpcError(request.req_id, int(exc.code), str(exc), exc.executed)
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # application exception: ship type + message
            head = new_frame()
            msg.encode_into(
                head, msg.AppError(request.req_id, type(exc).__name__, str(exc))
            )
        try:
            if not self._try_send(head, payload):
                await self._send(head, payload)
        except (ConnectionError, OSError, TransportError):
            pass  # peer is gone; read loop will tear down

    async def _send_error(
        self, req_id: int, *, code: ErrorCode, text: str, executed: bool = True
    ) -> None:
        try:
            head = new_frame()
            msg.encode_into(head, msg.RpcError(req_id, int(code), text, executed))
            await self._send(head)
        except (ConnectionError, OSError, TransportError):
            pass


def _unblock(pending) -> None:
    """Clear a yielded future's blocking marker, as ``Task.__step`` would.

    ``Future.__await__`` sets ``_asyncio_future_blocking`` when it yields
    and relies on the consumer to clear it; a still-set flag makes the
    future's next ``__await__`` believe it is a botched resume and raise
    "await wasn't used with future".
    """
    if pending is not None and getattr(pending, "_asyncio_future_blocking", None):
        pending._asyncio_future_blocking = False


async def _finish_eager(coro, pending) -> None:
    """Drive a coroutine whose first step already ran eagerly.

    A minimal Task trampoline: wait for whatever the coroutine yielded
    (the future it is parked on), then resume it — the future's result or
    exception is delivered when the coroutine itself calls ``result()`` on
    resume, exactly as under a real Task.  Cancelling this task cancels
    the awaited future (normal Task semantics); cancellation aimed at the
    trampoline while the future stands is thrown into the coroutine so
    its cleanup runs.
    """
    while True:
        _unblock(pending)
        try:
            if pending is None:
                await asyncio.sleep(0)  # bare yield: give the loop one turn
            else:
                await pending
        except asyncio.CancelledError:
            if pending is not None and pending.cancelled():
                pass  # delivered via pending.result() inside the coroutine
            else:
                try:
                    pending = coro.throw(asyncio.CancelledError())
                    continue  # the coroutine absorbed it and awaits anew
                except StopIteration:
                    return
        except BaseException:
            pass  # delivered via pending.result() inside the coroutine
        try:
            pending = coro.send(None)
        except StopIteration:
            return


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Send HELLO, await WELCOME, verify versions match."""
    await write_frame(writer, msg.encode(msg.Hello(codec, version)))
    reply = msg.decode(await read_frame(reader))
    if not isinstance(reply, msg.Welcome):
        raise TransportError(f"handshake failed: expected WELCOME, got {reply!r}")
    if reply.version != version or reply.codec != codec:
        raise VersionMismatch(
            f"peer runs deployment version {reply.version} codec "
            f"{reply.codec!r}, we run {version} codec {codec!r}; "
            "cross-version communication is forbidden (atomic rollouts)"
        )


async def server_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Await HELLO, verify codec+version, reply WELCOME (or close)."""
    hello = msg.decode(await read_frame(reader))
    if not isinstance(hello, msg.Hello):
        raise TransportError(f"handshake failed: expected HELLO, got {hello!r}")
    if hello.version != version or hello.codec != codec:
        # Announce our version so the client can raise a precise error,
        # then close: no application data crosses the version boundary.
        await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
        writer.close()
        raise VersionMismatch(
            f"client at version {hello.version} codec {hello.codec!r}, "
            f"we are {version} codec {codec!r}"
        )
    await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
