"""Bidirectional RPC connections with version handshake and pipelining.

A connection starts with a handshake: the client sends ``HELLO(codec,
version)``; the server replies ``WELCOME(version)`` only if the deployment
versions (and codec) match, otherwise it closes.  This is where the atomic
rollout guarantee reaches the data plane — a proclet from version A can
never exchange a single application byte with a proclet from version B
(§4.4), which in turn is what makes the tag-free compact format safe (§6).

After the handshake, requests are pipelined: many may be in flight, matched
to responses by request id.  The read loop runs as a background task; a
broken connection fails all in-flight calls with a retryable error.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from typing import Awaitable, Callable, Optional

from repro.core.errors import (
    ErrorCode,
    RemoteApplicationError,
    RPCError,
    TransportError,
    Unavailable,
    VersionMismatch,
    error_from_code,
)
from repro.transport import message as msg
from repro.transport.framing import read_frame, write_frame

log = logging.getLogger("repro.transport")

#: Server-side handler: (component_id, method_index, args, (trace_id,
#: parent_span_id), deadline_ms) -> result bytes.  ``deadline_ms`` is the
#: caller's remaining budget (0 = no deadline).
Handler = Callable[[int, int, bytes, tuple[int, int], int], Awaitable[bytes]]


class Connection:
    """One established, handshaken connection (either side)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        handler: Optional[Handler] = None,
        name: str = "conn",
        compress: bool = False,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self._name = name
        self._compress = compress
        self._req_ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._loop_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._server_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin the background read loop (after a successful handshake)."""
        self._loop_task = asyncio.ensure_future(self._read_loop())

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop_task is not None:
            self._loop_task.cancel()
        for task in list(self._server_tasks):
            task.cancel()
        self._fail_pending(Unavailable("connection closed"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    # -- client side ----------------------------------------------------------

    async def call(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        *,
        timeout: Optional[float] = None,
        trace: tuple[int, int] = (0, 0),
        deadline_ms: int = 0,
    ) -> bytes:
        """Issue one request and await its response bytes.

        ``deadline_ms`` is the remaining end-to-end budget shipped to the
        server (0 = unlimited); ``timeout`` is the local wait bound.
        """
        if self._closed:
            raise Unavailable("connection closed", executed=False)
        req_id = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        request = msg.encode(
            msg.Request(
                req_id,
                component_id,
                method_index,
                args,
                trace[0],
                trace[1],
                deadline_ms,
            )
        )
        try:
            async with self._write_lock:
                await write_frame(self._writer, request, compress=self._compress)
        except (ConnectionError, OSError, TransportError) as exc:
            self._pending.pop(req_id, None)
            await self.close()
            raise Unavailable(f"send failed: {exc}", executed=False) from exc
        try:
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        except asyncio.TimeoutError:
            self._pending.pop(req_id, None)
            from repro.core.errors import DeadlineExceeded

            raise DeadlineExceeded(
                f"call to component {component_id} method {method_index} "
                f"timed out after {timeout}s"
            ) from None

    async def ping(self, timeout: float = 5.0) -> bool:
        """Health probe: true if the peer answers a PING in time."""
        nonce = next(self._req_ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[-nonce] = future  # negative keys: ping namespace
        try:
            async with self._write_lock:
                await write_frame(self._writer, msg.encode(msg.Ping(nonce)))
            await asyncio.wait_for(future, timeout)
            return True
        except (asyncio.TimeoutError, RPCError, TransportError, ConnectionError, OSError):
            return False
        finally:
            self._pending.pop(-nonce, None)

    # -- read loop -------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                m = msg.decode(frame)
                if isinstance(m, msg.Response):
                    self._resolve(m.req_id, m.result, None)
                elif isinstance(m, msg.AppError):
                    self._resolve(
                        m.req_id, None, RemoteApplicationError(m.exc_type, m.message)
                    )
                elif isinstance(m, msg.RpcError):
                    self._resolve(
                        m.req_id,
                        None,
                        error_from_code(m.code, m.message, executed=m.executed),
                    )
                elif isinstance(m, msg.Request):
                    self._spawn_server_task(m)
                elif isinstance(m, msg.Ping):
                    async with self._write_lock:
                        await write_frame(self._writer, msg.encode(msg.Pong(m.nonce)))
                elif isinstance(m, msg.Pong):
                    self._resolve(-m.nonce, b"", None)
                else:
                    log.warning("%s: unexpected message %r", self._name, m)
        except (TransportError, ConnectionError, OSError) as exc:
            if not self._closed:
                log.debug("%s: read loop ended: %s", self._name, exc)
        except asyncio.CancelledError:
            pass
        finally:
            self._closed = True
            self._fail_pending(Unavailable("connection lost"))
            try:
                self._writer.close()
            except (ConnectionError, OSError):
                pass

    def _resolve(self, req_id: int, result: Optional[bytes], exc: Optional[Exception]) -> None:
        future = self._pending.pop(req_id, None)
        if future is None or future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    # -- server side -------------------------------------------------------------

    def _spawn_server_task(self, request: msg.Request) -> None:
        if self._handler is None:
            task = asyncio.ensure_future(
                self._send_error(
                    request.req_id,
                    code=ErrorCode.INTERNAL,
                    text="peer does not serve requests",
                    executed=False,
                )
            )
        else:
            task = asyncio.ensure_future(self._serve_one(request))
        self._server_tasks.add(task)
        task.add_done_callback(self._server_tasks.discard)

    async def _serve_one(self, request: msg.Request) -> None:
        try:
            result = await self._handler(
                request.component_id,
                request.method_index,
                request.args,
                (request.trace_id, request.parent_span_id),
                request.deadline_ms,
            )
            reply = msg.encode(msg.Response(request.req_id, result))
        except RPCError as exc:
            reply = msg.encode(
                msg.RpcError(request.req_id, int(exc.code), str(exc), exc.executed)
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # application exception: ship type + message
            reply = msg.encode(
                msg.AppError(request.req_id, type(exc).__name__, str(exc))
            )
        try:
            async with self._write_lock:
                await write_frame(self._writer, reply, compress=self._compress)
        except (ConnectionError, OSError, TransportError):
            pass  # peer is gone; read loop will tear down

    async def _send_error(
        self, req_id: int, *, code: ErrorCode, text: str, executed: bool = True
    ) -> None:
        try:
            async with self._write_lock:
                await write_frame(
                    self._writer,
                    msg.encode(msg.RpcError(req_id, int(code), text, executed)),
                )
        except (ConnectionError, OSError, TransportError):
            pass


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Send HELLO, await WELCOME, verify versions match."""
    await write_frame(writer, msg.encode(msg.Hello(codec, version)))
    reply = msg.decode(await read_frame(reader))
    if not isinstance(reply, msg.Welcome):
        raise TransportError(f"handshake failed: expected WELCOME, got {reply!r}")
    if reply.version != version or reply.codec != codec:
        raise VersionMismatch(
            f"peer runs deployment version {reply.version} codec "
            f"{reply.codec!r}, we run {version} codec {codec!r}; "
            "cross-version communication is forbidden (atomic rollouts)"
        )


async def server_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    codec: str,
    version: str,
) -> None:
    """Await HELLO, verify codec+version, reply WELCOME (or close)."""
    hello = msg.decode(await read_frame(reader))
    if not isinstance(hello, msg.Hello):
        raise TransportError(f"handshake failed: expected HELLO, got {hello!r}")
    if hello.version != version or hello.codec != codec:
        # Announce our version so the client can raise a precise error,
        # then close: no application data crosses the version boundary.
        await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
        writer.close()
        raise VersionMismatch(
            f"client at version {hello.version} codec {hello.codec!r}, "
            f"we are {version} codec {codec!r}"
        )
    await write_frame(writer, msg.encode(msg.Welcome(codec, version)))
