"""The RPC server a proclet runs to serve its hosted components.

The runtime is control plane only; proclets communicate directly with one
another (§4.3).  Each proclet therefore runs one :class:`RPCServer`, serving
every component replica it hosts.  The server enforces the version handshake
on every accepted connection before any request is dispatched.

Addresses are strings: ``tcp://127.0.0.1:9000`` or ``unix:///tmp/p.sock``.
``tcp://127.0.0.1:0`` binds an ephemeral port; the bound address is
available as ``server.address`` after ``start()`` — proclets report it to
the manager via ``RegisterReplica``.
"""

from __future__ import annotations

import asyncio
import collections
import logging
import os
from typing import Optional

from repro.core.errors import (
    ConfigError,
    ResourceExhausted,
    TransportError,
    VersionMismatch,
)
from repro.transport.connection import Connection, Handler, server_handshake

log = logging.getLogger("repro.transport")


class AdmissionController:
    """Server-door overload protection: bounded concurrency + bounded queue.

    At most ``max_inflight`` requests execute concurrently; up to
    ``max_queue`` more wait in FIFO order; anything beyond that is *shed*
    with a retryable :class:`ResourceExhausted` — the request never reaches
    user code, so even non-idempotent methods can safely retry elsewhere.
    Shedding early keeps latency bounded for the requests that are
    admitted, instead of letting every request slowly time out under
    overload.  ``max_inflight=0`` disables the limiter.

    Used as an async context manager around each request::

        async with admission:
            ... execute ...
    """

    def __init__(self, max_inflight: int = 0, max_queue: int = 64) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.shed_count = 0
        self._waiters: collections.deque[asyncio.Future] = collections.deque()

    @property
    def enabled(self) -> bool:
        return self.max_inflight > 0

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    async def __aenter__(self) -> "AdmissionController":
        if not self.enabled:
            return self
        if self.inflight < self.max_inflight:
            self.inflight += 1
            return self
        if len(self._waiters) >= self.max_queue:
            self.shed_count += 1
            raise ResourceExhausted(
                f"server at capacity ({self.inflight} inflight, "
                f"{len(self._waiters)} queued); retry another replica"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            # The releasing request hands its slot directly to the future,
            # so `inflight` is already accounted when we wake.
            await future
        except asyncio.CancelledError:
            if future in self._waiters:
                self._waiters.remove(future)
            elif future.done() and not future.cancelled():
                self._release()  # slot was handed over after cancellation
            raise
        return self

    async def __aexit__(self, *exc: object) -> None:
        if self.enabled:
            self._release()

    def _release(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)  # slot transfers; inflight unchanged
                return
        self.inflight -= 1


def parse_address(address: str) -> tuple[str, str, Optional[int]]:
    """Split an address string into (scheme, host_or_path, port)."""
    if address.startswith("tcp://"):
        rest = address[len("tcp://") :]
        host, sep, port = rest.rpartition(":")
        if not sep:
            raise ConfigError(f"tcp address {address!r} needs host:port")
        return "tcp", host, int(port)
    if address.startswith("unix://"):
        return "unix", address[len("unix://") :], None
    raise ConfigError(f"unsupported address {address!r} (want tcp:// or unix://)")


class RPCServer:
    """Serves the custom RPC protocol for one proclet."""

    def __init__(
        self,
        handler: Handler,
        *,
        codec: str,
        version: str,
        address: str = "tcp://127.0.0.1:0",
        compress: bool = False,
        coalesce: bool = True,
    ) -> None:
        self._handler = handler
        self._codec = codec
        self._version = version
        self._compress = compress
        self._coalesce = coalesce
        self._requested = address
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[Connection] = set()
        self.address: str = address
        #: Set by :meth:`drain`; the proclet's request handler checks it to
        #: reject new RPCs at the door while in-flight ones finish.
        self.draining = False

    async def start(self) -> str:
        scheme, host, port = parse_address(self._requested)
        if scheme == "tcp":
            self._server = await asyncio.start_server(self._accept, host, port)
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp://{bound[0]}:{bound[1]}"
        else:
            if os.path.exists(host):
                os.unlink(host)
            self._server = await asyncio.start_unix_server(self._accept, host)
            self.address = f"unix://{host}"
        log.debug("rpc server listening on %s", self.address)
        return self.address

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await server_handshake(
                reader, writer, codec=self._codec, version=self._version
            )
        except VersionMismatch as exc:
            log.warning("rejected cross-version connection: %s", exc)
            return
        except (TransportError, ConnectionError, OSError) as exc:
            log.debug("handshake failed: %s", exc)
            writer.close()
            return
        conn = Connection(
            reader,
            writer,
            handler=self._handler,
            name="server",
            compress=self._compress,
            coalesce=self._coalesce,
        )
        self._connections.add(conn)
        conn.start()

    async def drain(self) -> None:
        """Stop accepting new connections; existing ones stay open.

        First step of graceful shutdown: the listener closes (new dials
        fail fast and go elsewhere) but connected peers keep their streams
        so responses to in-flight requests can still be delivered.  The
        request-level door closing (rejecting new RPCs on the surviving
        connections) is the proclet's job — it knows about in-flight
        counts; the transport only knows about sockets.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        scheme, path, _ = parse_address(self.address) if self.address else ("", "", None)
        if scheme == "unix" and os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:
                pass

    @property
    def connection_count(self) -> int:
        return len([c for c in self._connections if not c.closed])
