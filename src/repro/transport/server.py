"""The RPC server a proclet runs to serve its hosted components.

The runtime is control plane only; proclets communicate directly with one
another (§4.3).  Each proclet therefore runs one :class:`RPCServer`, serving
every component replica it hosts.  The server enforces the version handshake
on every accepted connection before any request is dispatched.

Addresses are strings: ``tcp://127.0.0.1:9000`` or ``unix:///tmp/p.sock``.
``tcp://127.0.0.1:0`` binds an ephemeral port; the bound address is
available as ``server.address`` after ``start()`` — proclets report it to
the manager via ``RegisterReplica``.
"""

from __future__ import annotations

import asyncio
import collections
import functools
import logging
import os
import socket
from typing import Optional

from repro.core.errors import (
    ConfigError,
    ResourceExhausted,
    TransportError,
    VersionMismatch,
)
from repro.transport.connection import (
    STREAM_CHUNK_BYTES,
    STREAM_THRESHOLD,
    Connection,
    Handler,
    server_handshake,
)
from repro.transport.worker import (
    Acceptor,
    WorkerLoop,
    WorkerPool,
    reuse_port_supported,
)

log = logging.getLogger("repro.transport")


class AdmissionController:
    """Server-door overload protection: bounded concurrency + bounded queue.

    At most ``max_inflight`` requests execute concurrently; up to
    ``max_queue`` more wait in FIFO order; anything beyond that is *shed*
    with a retryable :class:`ResourceExhausted` — the request never reaches
    user code, so even non-idempotent methods can safely retry elsewhere.
    Shedding early keeps latency bounded for the requests that are
    admitted, instead of letting every request slowly time out under
    overload.  ``max_inflight=0`` disables the limiter.

    Used as an async context manager around each request::

        async with admission:
            ... execute ...
    """

    def __init__(self, max_inflight: int = 0, max_queue: int = 64) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.shed_count = 0
        self._waiters: collections.deque[asyncio.Future] = collections.deque()

    @property
    def enabled(self) -> bool:
        return self.max_inflight > 0

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    async def __aenter__(self) -> "AdmissionController":
        if not self.enabled:
            return self
        if self.inflight < self.max_inflight:
            self.inflight += 1
            return self
        if len(self._waiters) >= self.max_queue:
            self.shed_count += 1
            raise ResourceExhausted(
                f"server at capacity ({self.inflight} inflight, "
                f"{len(self._waiters)} queued); retry another replica"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            # The releasing request hands its slot directly to the future,
            # so `inflight` is already accounted when we wake.
            await future
        except asyncio.CancelledError:
            if future in self._waiters:
                self._waiters.remove(future)
            elif future.done() and not future.cancelled():
                self._release()  # slot was handed over after cancellation
            raise
        return self

    async def __aexit__(self, *exc: object) -> None:
        if self.enabled:
            self._release()

    def _release(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)  # slot transfers; inflight unchanged
                return
        self.inflight -= 1


def parse_address(address: str) -> tuple[str, str, Optional[int]]:
    """Split an address string into (scheme, host_or_path, port)."""
    if address.startswith("tcp://"):
        rest = address[len("tcp://") :]
        host, sep, port = rest.rpartition(":")
        if not sep:
            raise ConfigError(f"tcp address {address!r} needs host:port")
        return "tcp", host, int(port)
    if address.startswith("unix://"):
        return "unix", address[len("unix://") :], None
    raise ConfigError(f"unsupported address {address!r} (want tcp:// or unix://)")


class RPCServer:
    """Serves the custom RPC protocol for one proclet.

    With ``workers > 1`` the server becomes a multi-core data plane: N
    shared-nothing worker event loops behind one listening endpoint.  On
    TCP with SO_REUSEPORT each worker binds its own listening socket to
    the same port and the kernel spreads connections; otherwise a
    dup-and-distribute acceptor thread hands each accepted socket to the
    least-loaded worker.  Either way a connection lives its whole life on
    one worker loop (connection-affine), so no per-connection state ever
    crosses threads.  The handler is invoked on the worker's loop and must
    be thread-safe across loops.
    """

    def __init__(
        self,
        handler: Handler,
        *,
        codec: str,
        version: str,
        address: str = "tcp://127.0.0.1:0",
        compress: bool = False,
        coalesce: bool = True,
        workers: int = 1,
        uvloop_mode: str = "auto",
        stream_threshold: int = STREAM_THRESHOLD,
        stream_chunk: int = STREAM_CHUNK_BYTES,
        reuse_port: bool = True,
    ) -> None:
        self._handler = handler
        self._codec = codec
        self._version = version
        self._compress = compress
        self._coalesce = coalesce
        self._workers = max(1, int(workers))
        self._uvloop = uvloop_mode
        self._stream_threshold = stream_threshold
        self._stream_chunk = stream_chunk
        self._reuse_port = reuse_port
        self._requested = address
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[Connection] = set()
        self._pool: Optional[WorkerPool] = None
        self._acceptor: Optional[Acceptor] = None
        self._worker_servers: list = []  # per-worker asyncio servers (reuseport)
        self.accept_mode = "inline"  # inline | reuseport | acceptor
        self.address: str = address
        #: Set by :meth:`drain`; the proclet's request handler checks it to
        #: reject new RPCs at the door while in-flight ones finish.
        self.draining = False

    async def start(self) -> str:
        scheme, host, port = parse_address(self._requested)
        if self._workers > 1:
            return await self._start_workers(scheme, host, port)
        if scheme == "tcp":
            self._server = await asyncio.start_server(self._accept, host, port)
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp://{bound[0]}:{bound[1]}"
        else:
            if os.path.exists(host):
                os.unlink(host)
            self._server = await asyncio.start_unix_server(self._accept, host)
            self.address = f"unix://{host}"
        log.debug("rpc server listening on %s", self.address)
        return self.address

    # -- multi-worker start --------------------------------------------------

    async def _start_workers(self, scheme: str, host: str, port: int) -> str:
        self._pool = WorkerPool(self._workers, self._uvloop)
        self._pool.start()
        if scheme == "tcp" and self._reuse_port and reuse_port_supported():
            # Kernel-spread accept: one SO_REUSEPORT listener per worker.
            first = _reuseport_socket(host, port)
            bound = first.getsockname()
            socks = [first] + [
                _reuseport_socket(host, bound[1])
                for _ in range(1, self._workers)
            ]
            self.address = f"tcp://{bound[0]}:{bound[1]}"
            for worker, sock in zip(self._pool.workers, socks):
                server = await asyncio.wrap_future(
                    worker.submit(self._listen_on_worker(worker, sock))
                )
                self._worker_servers.append(server)
            self.accept_mode = "reuseport"
        else:
            # Dup-and-distribute: one blocking acceptor thread feeds the
            # least-loaded worker, which adopts the socket on its loop.
            if scheme == "tcp":
                lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                lsock.bind((host, port))
                bound = lsock.getsockname()
                self.address = f"tcp://{bound[0]}:{bound[1]}"
            else:
                if os.path.exists(host):
                    os.unlink(host)
                lsock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                lsock.bind(host)
                self.address = f"unix://{host}"
            lsock.listen(128)
            self._acceptor = Acceptor(lsock, self._distribute)
            self._acceptor.start()
            self.accept_mode = "acceptor"
        log.debug(
            "rpc server listening on %s (%d workers, %s)",
            self.address, self._workers, self.accept_mode,
        )
        return self.address

    async def _listen_on_worker(self, worker: WorkerLoop, sock: socket.socket):
        return await asyncio.start_server(
            functools.partial(self._accept_on, worker), sock=sock
        )

    def _distribute(self, sock: socket.socket) -> None:
        """Acceptor-thread side of the fallback: pick a worker, hand off."""
        worker = self._pool.least_loaded()
        worker.pending_adopts += 1
        try:
            worker.submit(self._adopt(worker, sock))
        except RuntimeError:  # worker loop already shut down
            worker.pending_adopts -= 1
            sock.close()

    async def _adopt(self, worker: WorkerLoop, sock: socket.socket) -> None:
        # pending_adopts stays elevated until the connection is registered
        # in worker.conns, so least_loaded() sees in-progress handoffs.
        try:
            reader, writer = await asyncio.open_connection(sock=sock)
        except OSError:
            sock.close()
            worker.pending_adopts -= 1
            return
        try:
            await self._accept_on(worker, reader, writer)
        finally:
            worker.pending_adopts -= 1

    async def _accept_on(
        self,
        worker: WorkerLoop,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Accept path on a worker loop: handshake + adopt, all local."""
        try:
            await server_handshake(
                reader, writer, codec=self._codec, version=self._version
            )
        except VersionMismatch as exc:
            log.warning("rejected cross-version connection: %s", exc)
            return
        except (TransportError, ConnectionError, OSError) as exc:
            log.debug("handshake failed: %s", exc)
            writer.close()
            return
        worker.accepted += 1
        conn = Connection(
            reader,
            writer,
            handler=self._counted_handler(worker),
            name=f"server/w{worker.index}",
            compress=self._compress,
            coalesce=self._coalesce,
            stream_threshold=self._stream_threshold,
            stream_chunk=self._stream_chunk,
        )
        worker.conns = {c for c in worker.conns if not c.closed}
        worker.conns.add(conn)
        conn.start()

    def _counted_handler(self, worker: WorkerLoop) -> Handler:
        inner = self._handler

        async def counted(component_id, method_index, args, trace, deadline_ms):
            worker.requests += 1
            return await inner(component_id, method_index, args, trace, deadline_ms)

        return counted

    # -- single-loop accept --------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await server_handshake(
                reader, writer, codec=self._codec, version=self._version
            )
        except VersionMismatch as exc:
            log.warning("rejected cross-version connection: %s", exc)
            return
        except (TransportError, ConnectionError, OSError) as exc:
            log.debug("handshake failed: %s", exc)
            writer.close()
            return
        conn = Connection(
            reader,
            writer,
            handler=self._handler,
            name="server",
            compress=self._compress,
            coalesce=self._coalesce,
            stream_threshold=self._stream_threshold,
            stream_chunk=self._stream_chunk,
        )
        self._connections.add(conn)
        conn.start()

    async def drain(self) -> None:
        """Stop accepting new connections; existing ones stay open.

        First step of graceful shutdown: the listener closes (new dials
        fail fast and go elsewhere) but connected peers keep their streams
        so responses to in-flight requests can still be delivered.  The
        request-level door closing (rejecting new RPCs on the surviving
        connections) is the proclet's job — it knows about in-flight
        counts; the transport only knows about sockets.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._acceptor is not None:
            self._acceptor.stop()
            self._acceptor = None
        if self._worker_servers and self._pool is not None:
            servers, self._worker_servers = self._worker_servers, []
            for worker, server in zip(self._pool.workers, servers):
                try:
                    await asyncio.wrap_future(worker.submit(_close_server(server)))
                except Exception:  # worker already stopping
                    pass

    async def stop(self) -> None:
        await self.drain()
        self.draining = False
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()
        if self._pool is not None:
            for worker in self._pool.workers:
                conns = list(worker.conns)
                worker.conns.clear()
                if conns:
                    try:
                        await asyncio.wrap_future(worker.submit(_close_all(conns)))
                    except Exception:
                        pass
            self._pool.stop()
            self._pool = None
        scheme, path, _ = parse_address(self.address) if self.address else ("", "", None)
        if scheme == "unix" and os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:
                pass

    @property
    def connection_count(self) -> int:
        count = len([c for c in self._connections if not c.closed])
        if self._pool is not None:
            count += sum(w.connection_count for w in self._pool.workers)
        return count

    @property
    def workers(self) -> int:
        return self._workers

    def worker_stats(self) -> list[dict]:
        """Per-worker data-plane stats (empty in single-loop mode)."""
        if self._pool is None:
            return []
        return self._pool.stats()


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


async def _close_server(server) -> None:
    server.close()
    await server.wait_closed()


async def _close_all(conns) -> None:
    for conn in conns:
        try:
            await conn.close()
        except Exception:
            pass

