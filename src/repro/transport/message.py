"""Wire messages of the custom RPC protocol.

Because all peers run the same deployment version (enforced by the
handshake), the protocol needs almost nothing per message: a type byte,
a varint request id, varint component/method ids, and the argument bytes.
Compare with the HTTP baseline (:mod:`repro.transport.http_rpc`), which
spells out component and method *names* in text headers on every request —
the per-message cost the paper's design deletes.

Message layouts (after the frame length prefix)::

    HELLO     0x01 | u8 codec_len | codec | u8 version_len | version
    WELCOME   0x02 | u8 codec_len | codec | u8 version_len | version
    REQUEST   0x03 | uvarint req_id | uvarint component_id
                   | uvarint method_index | uvarint trace_id
                   | uvarint parent_span_id | uvarint deadline_ms
                   | args bytes

Trace ids propagate the caller's span context (zero = untraced); they cost
one byte each when tracing is off — the single-version luxury of changing
the protocol without a migration plan.  ``deadline_ms`` is the caller's
*remaining* budget for the call (zero = no deadline); each hop re-derives
it from its own clock, so no clock synchronization is needed.
    RESPONSE  0x04 | uvarint req_id | result bytes
    APP_ERROR 0x05 | uvarint req_id | u16 type_len | type | message utf-8
    RPC_ERROR 0x06 | uvarint req_id | u8 code | u8 flags | message utf-8
    PING      0x07 | uvarint nonce
    PONG      0x08 | uvarint nonce

RPC_ERROR ``code`` is :class:`repro.core.errors.ErrorCode` (retryability is
derived from it on the receiving side); flags bit 0 is ``executed`` — did
the method body possibly run before the failure?

Streaming (§5.1's "runtime owns the transport" applied to large payloads):
a request or response bigger than the stream threshold travels as a
sequence of bounded chunks instead of one giant frame, so it never
monopolizes the write coalescer and can exceed ``MAX_FRAME``::

    STREAM_OPEN   0x09 | uvarint req_id | uvarint component_id
                       | uvarint method_index | uvarint trace_id
                       | uvarint parent_span_id | uvarint deadline_ms
                       | uvarint total_len
    STREAM_RESP   0x0A | uvarint req_id | uvarint total_len
    STREAM_CHUNK  0x0B | uvarint req_id | u8 flags | chunk bytes
    STREAM_CREDIT 0x0C | uvarint req_id | u8 flags | uvarint bytes
    STREAM_CANCEL 0x0D | uvarint req_id | u8 flags

Stream flags: bit 0 (``STREAM_END``) marks the final chunk; bit 1
(``STREAM_RESP_DIR``) says the message concerns the *response* stream of
``req_id`` rather than the request upload (both directions may be active
for the same id at once — the id spaces of the two peers are independent);
bit 2 (``STREAM_TO_SENDER``, CANCEL only) addresses the cancel at the
stream's sender ("stop transmitting") instead of its receiver ("discard
what I sent").  CREDIT grants the sender permission to transmit that many
more payload bytes — receiver-paced flow control, so a slow consumer
bounds the producer's memory instead of the other way round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import DecodeError, TransportError
from repro.serde.base import Reader, read_uvarint, write_uvarint

HELLO = 0x01
WELCOME = 0x02
REQUEST = 0x03
RESPONSE = 0x04
APP_ERROR = 0x05
RPC_ERROR = 0x06
PING = 0x07
PONG = 0x08
STREAM_OPEN = 0x09
STREAM_RESP = 0x0A
STREAM_CHUNK = 0x0B
STREAM_CREDIT = 0x0C
STREAM_CANCEL = 0x0D

#: Stream flag bits (shared by CHUNK / CREDIT / CANCEL).
STREAM_END = 0x01
STREAM_RESP_DIR = 0x02
STREAM_TO_SENDER = 0x04


@dataclass(frozen=True)
class Hello:
    codec: str
    version: str


@dataclass(frozen=True)
class Welcome:
    codec: str
    version: str


class Request:
    """Hand-rolled (not a dataclass): this is allocated once per RPC on the
    server's hot path, and slots + plain ``__init__`` construct ~5x faster
    than a frozen dataclass."""

    __slots__ = (
        "req_id", "component_id", "method_index", "args",
        "trace_id", "parent_span_id", "deadline_ms",
    )

    def __init__(
        self,
        req_id: int,
        component_id: int,
        method_index: int,
        args: "bytes | memoryview",  # decode() hands out a view into the frame
        trace_id: int = 0,
        parent_span_id: int = 0,
        deadline_ms: int = 0,  # remaining budget; 0 = no deadline
    ) -> None:
        self.req_id = req_id
        self.component_id = component_id
        self.method_index = method_index
        self.args = args
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.deadline_ms = deadline_ms

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Request
            and self.req_id == other.req_id
            and self.component_id == other.component_id
            and self.method_index == other.method_index
            and self.args == other.args
            and self.trace_id == other.trace_id
            and self.parent_span_id == other.parent_span_id
            and self.deadline_ms == other.deadline_ms
        )

    def __repr__(self) -> str:
        return (
            f"Request(req_id={self.req_id}, component_id={self.component_id}, "
            f"method_index={self.method_index}, args={self.args!r}, "
            f"trace_id={self.trace_id}, parent_span_id={self.parent_span_id}, "
            f"deadline_ms={self.deadline_ms})"
        )


class Response:
    """Hand-rolled for the same reason as :class:`Request` (client hot path)."""

    __slots__ = ("req_id", "result")

    def __init__(self, req_id: int, result: "bytes | memoryview") -> None:
        self.req_id = req_id
        self.result = result

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Response
            and self.req_id == other.req_id
            and self.result == other.result
        )

    def __repr__(self) -> str:
        return f"Response(req_id={self.req_id}, result={self.result!r})"


@dataclass(frozen=True)
class AppError:
    req_id: int
    exc_type: str
    message: str


@dataclass(frozen=True)
class RpcError:
    req_id: int
    code: int  # repro.core.errors.ErrorCode value
    message: str
    executed: bool = True  # may the method body have run?


@dataclass(frozen=True)
class Ping:
    nonce: int


@dataclass(frozen=True)
class Pong:
    nonce: int


@dataclass(frozen=True)
class StreamOpen:
    """Opens a chunked *request* upload for ``req_id``."""

    req_id: int
    component_id: int
    method_index: int
    trace_id: int = 0
    parent_span_id: int = 0
    deadline_ms: int = 0
    total_len: int = 0


@dataclass(frozen=True)
class StreamResp:
    """Opens a chunked *response* download for ``req_id``."""

    req_id: int
    total_len: int = 0


class StreamChunk:
    """One bounded slice of a streamed payload (hot path: slots, no dataclass)."""

    __slots__ = ("req_id", "flags", "data")

    def __init__(self, req_id: int, flags: int, data: "bytes | memoryview") -> None:
        self.req_id = req_id
        self.flags = flags
        self.data = data

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is StreamChunk
            and self.req_id == other.req_id
            and self.flags == other.flags
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"StreamChunk(req_id={self.req_id}, flags={self.flags:#x}, "
            f"data=<{len(self.data)} bytes>)"
        )


@dataclass(frozen=True)
class StreamCredit:
    """Receiver grants the sender ``bytes_`` more payload bytes in flight."""

    req_id: int
    flags: int
    bytes_: int


@dataclass(frozen=True)
class StreamCancel:
    """Abort a stream mid-flight (direction per ``flags``)."""

    req_id: int
    flags: int


Message = Union[
    Hello, Welcome, Request, Response, AppError, RpcError, Ping, Pong,
    StreamOpen, StreamResp, StreamChunk, StreamCredit, StreamCancel,
]


def encode(msg: Message) -> bytes:
    out = bytearray()
    encode_into(out, msg)
    return bytes(out)


def encode_request_prefix(
    out: bytearray,
    req_id: int,
    component_id: int,
    method_index: int,
    trace_id: int = 0,
    parent_span_id: int = 0,
    deadline_ms: int = 0,
) -> None:
    """Append a REQUEST header; the argument bytes follow as the frame body.

    The hot path calls this with the frame buffer itself (started by
    :func:`repro.transport.framing.new_frame`) so a request costs zero
    intermediate copies: args ride as a separate gather chunk.  The varint
    loop is inlined — six ``write_uvarint`` calls per request are
    measurable at data-plane rates.
    """
    out.append(REQUEST)
    for v in (req_id, component_id, method_index, trace_id, parent_span_id,
              deadline_ms):
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)


def encode_response_prefix(out: bytearray, req_id: int) -> None:
    """Append a RESPONSE header; the result bytes follow as the frame body."""
    out.append(RESPONSE)
    v = req_id
    while v > 0x7F:
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    out.append(v)


def encode_stream_chunk_prefix(out: bytearray, req_id: int, flags: int) -> None:
    """Append a STREAM_CHUNK header; the chunk bytes follow as the frame body.

    The hot streaming path calls this with the frame buffer itself so each
    chunk rides zero-copy as a separate gather chunk, exactly like REQUEST
    args do.
    """
    out.append(STREAM_CHUNK)
    v = req_id
    while v > 0x7F:
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    out.append(v)
    out.append(flags & 0xFF)


def encode_into(out: bytearray, msg: Message) -> None:
    """Append the full encoding of ``msg`` (header and body) to ``out``."""
    if isinstance(msg, Hello):
        out.append(HELLO)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Welcome):
        out.append(WELCOME)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Request):
        encode_request_prefix(
            out,
            msg.req_id,
            msg.component_id,
            msg.method_index,
            msg.trace_id,
            msg.parent_span_id,
            msg.deadline_ms,
        )
        out += msg.args
    elif isinstance(msg, Response):
        encode_response_prefix(out, msg.req_id)
        out += msg.result
    elif isinstance(msg, AppError):
        out.append(APP_ERROR)
        write_uvarint(out, msg.req_id)
        t = msg.exc_type.encode("utf-8")[:65535]
        out += len(t).to_bytes(2, "big")
        out += t
        out += msg.message.encode("utf-8")
    elif isinstance(msg, RpcError):
        out.append(RPC_ERROR)
        write_uvarint(out, msg.req_id)
        out.append(msg.code & 0xFF)
        out.append(0x01 if msg.executed else 0x00)
        out += msg.message.encode("utf-8")
    elif isinstance(msg, Ping):
        out.append(PING)
        write_uvarint(out, msg.nonce)
    elif isinstance(msg, Pong):
        out.append(PONG)
        write_uvarint(out, msg.nonce)
    elif isinstance(msg, StreamOpen):
        out.append(STREAM_OPEN)
        for v in (msg.req_id, msg.component_id, msg.method_index, msg.trace_id,
                  msg.parent_span_id, msg.deadline_ms, msg.total_len):
            write_uvarint(out, v)
    elif isinstance(msg, StreamResp):
        out.append(STREAM_RESP)
        write_uvarint(out, msg.req_id)
        write_uvarint(out, msg.total_len)
    elif isinstance(msg, StreamChunk):
        encode_stream_chunk_prefix(out, msg.req_id, msg.flags)
        out += msg.data
    elif isinstance(msg, StreamCredit):
        out.append(STREAM_CREDIT)
        write_uvarint(out, msg.req_id)
        out.append(msg.flags & 0xFF)
        write_uvarint(out, msg.bytes_)
    elif isinstance(msg, StreamCancel):
        out.append(STREAM_CANCEL)
        write_uvarint(out, msg.req_id)
        out.append(msg.flags & 0xFF)
    else:
        raise TransportError(f"cannot encode message {msg!r}")


def decode(frame: "bytes | bytearray | memoryview") -> Message:
    """Decode one frame.

    Zero-copy: REQUEST args and RESPONSE results are returned as
    :class:`memoryview` windows into ``frame`` (the schema-directed decoder
    chains read straight from them), valid as long as the frame buffer
    lives — which the dispatching task guarantees.
    """
    if not len(frame):
        raise TransportError("empty frame")
    buf = frame if isinstance(frame, memoryview) else memoryview(frame)
    kind = buf[0]
    if kind == STREAM_CHUNK:
        # The streaming data plane: hand-inlined like REQUEST/RESPONSE, and
        # the chunk bytes are a zero-copy view into the frame.
        try:
            pos = 1
            b = buf[pos]
            pos += 1
            if b < 0x80:
                req_id = b
            else:
                req_id = b & 0x7F
                shift = 7
                while True:
                    b = buf[pos]
                    pos += 1
                    req_id |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
            flags = buf[pos]
            return StreamChunk(req_id, flags, buf[pos + 1 :])
        except IndexError as exc:
            raise TransportError(
                f"malformed message of kind {kind}: truncated header"
            ) from exc
    # REQUEST and RESPONSE are the data plane: parse them with hand-inlined
    # varint loops over the raw buffer (no Reader, no per-field calls).
    if kind == RESPONSE or kind == REQUEST:
        try:
            pos = 1
            fields = [0, 0, 0, 0, 0, 0]
            for i in range(1 if kind == RESPONSE else 6):
                b = buf[pos]
                pos += 1
                if b < 0x80:
                    fields[i] = b
                    continue
                value = b & 0x7F
                shift = 7
                while True:
                    b = buf[pos]
                    pos += 1
                    value |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
                fields[i] = value
            if kind == RESPONSE:
                return Response(fields[0], buf[pos:])
            return Request(
                fields[0],
                fields[1],
                fields[2],
                buf[pos:],
                fields[3],
                fields[4],
                fields[5],
            )
        except IndexError as exc:
            raise TransportError(
                f"malformed message of kind {kind}: truncated varint"
            ) from exc
    r = Reader(buf, 1)
    try:
        if kind == HELLO:
            return Hello(_read_short_str(r), _read_short_str(r))
        if kind == WELCOME:
            return Welcome(_read_short_str(r), _read_short_str(r))
        if kind == APP_ERROR:
            req_id = read_uvarint(r)
            tlen = int.from_bytes(r.take(2), "big")
            exc_type = str(r.view(tlen), "utf-8")
            return AppError(req_id, exc_type, str(r.rest(), "utf-8"))
        if kind == RPC_ERROR:
            req_id = read_uvarint(r)
            code = r.byte()
            executed = r.byte() & 0x01 != 0
            return RpcError(req_id, code, str(r.rest(), "utf-8"), executed)
        if kind == PING:
            return Ping(read_uvarint(r))
        if kind == PONG:
            return Pong(read_uvarint(r))
        if kind == STREAM_OPEN:
            return StreamOpen(*(read_uvarint(r) for _ in range(7)))
        if kind == STREAM_RESP:
            return StreamResp(read_uvarint(r), read_uvarint(r))
        if kind == STREAM_CREDIT:
            return StreamCredit(read_uvarint(r), r.byte(), read_uvarint(r))
        if kind == STREAM_CANCEL:
            return StreamCancel(read_uvarint(r), r.byte())
    except (DecodeError, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed message of kind {kind}: {exc}") from exc
    raise TransportError(f"unknown message kind {kind}")


def _short_str(out: bytearray, s: str) -> None:
    data = s.encode("utf-8")
    if len(data) > 255:
        raise TransportError(f"string too long for short encoding: {len(data)}")
    out.append(len(data))
    out += data


def _read_short_str(r: Reader) -> str:
    return str(r.view(r.byte()), "utf-8")
