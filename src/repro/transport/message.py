"""Wire messages of the custom RPC protocol.

Because all peers run the same deployment version (enforced by the
handshake), the protocol needs almost nothing per message: a type byte,
a varint request id, varint component/method ids, and the argument bytes.
Compare with the HTTP baseline (:mod:`repro.transport.http_rpc`), which
spells out component and method *names* in text headers on every request —
the per-message cost the paper's design deletes.

Message layouts (after the frame length prefix)::

    HELLO     0x01 | u8 codec_len | codec | u8 version_len | version
    WELCOME   0x02 | u8 codec_len | codec | u8 version_len | version
    REQUEST   0x03 | uvarint req_id | uvarint component_id
                   | uvarint method_index | uvarint trace_id
                   | uvarint parent_span_id | uvarint deadline_ms
                   | args bytes

Trace ids propagate the caller's span context (zero = untraced); they cost
one byte each when tracing is off — the single-version luxury of changing
the protocol without a migration plan.  ``deadline_ms`` is the caller's
*remaining* budget for the call (zero = no deadline); each hop re-derives
it from its own clock, so no clock synchronization is needed.
    RESPONSE  0x04 | uvarint req_id | result bytes
    APP_ERROR 0x05 | uvarint req_id | u16 type_len | type | message utf-8
    RPC_ERROR 0x06 | uvarint req_id | u8 code | u8 flags | message utf-8
    PING      0x07 | uvarint nonce
    PONG      0x08 | uvarint nonce

RPC_ERROR ``code`` is :class:`repro.core.errors.ErrorCode` (retryability is
derived from it on the receiving side); flags bit 0 is ``executed`` — did
the method body possibly run before the failure?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import DecodeError, TransportError
from repro.serde.base import Reader, read_uvarint, write_uvarint

HELLO = 0x01
WELCOME = 0x02
REQUEST = 0x03
RESPONSE = 0x04
APP_ERROR = 0x05
RPC_ERROR = 0x06
PING = 0x07
PONG = 0x08


@dataclass(frozen=True)
class Hello:
    codec: str
    version: str


@dataclass(frozen=True)
class Welcome:
    codec: str
    version: str


class Request:
    """Hand-rolled (not a dataclass): this is allocated once per RPC on the
    server's hot path, and slots + plain ``__init__`` construct ~5x faster
    than a frozen dataclass."""

    __slots__ = (
        "req_id", "component_id", "method_index", "args",
        "trace_id", "parent_span_id", "deadline_ms",
    )

    def __init__(
        self,
        req_id: int,
        component_id: int,
        method_index: int,
        args: "bytes | memoryview",  # decode() hands out a view into the frame
        trace_id: int = 0,
        parent_span_id: int = 0,
        deadline_ms: int = 0,  # remaining budget; 0 = no deadline
    ) -> None:
        self.req_id = req_id
        self.component_id = component_id
        self.method_index = method_index
        self.args = args
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.deadline_ms = deadline_ms

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Request
            and self.req_id == other.req_id
            and self.component_id == other.component_id
            and self.method_index == other.method_index
            and self.args == other.args
            and self.trace_id == other.trace_id
            and self.parent_span_id == other.parent_span_id
            and self.deadline_ms == other.deadline_ms
        )

    def __repr__(self) -> str:
        return (
            f"Request(req_id={self.req_id}, component_id={self.component_id}, "
            f"method_index={self.method_index}, args={self.args!r}, "
            f"trace_id={self.trace_id}, parent_span_id={self.parent_span_id}, "
            f"deadline_ms={self.deadline_ms})"
        )


class Response:
    """Hand-rolled for the same reason as :class:`Request` (client hot path)."""

    __slots__ = ("req_id", "result")

    def __init__(self, req_id: int, result: "bytes | memoryview") -> None:
        self.req_id = req_id
        self.result = result

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Response
            and self.req_id == other.req_id
            and self.result == other.result
        )

    def __repr__(self) -> str:
        return f"Response(req_id={self.req_id}, result={self.result!r})"


@dataclass(frozen=True)
class AppError:
    req_id: int
    exc_type: str
    message: str


@dataclass(frozen=True)
class RpcError:
    req_id: int
    code: int  # repro.core.errors.ErrorCode value
    message: str
    executed: bool = True  # may the method body have run?


@dataclass(frozen=True)
class Ping:
    nonce: int


@dataclass(frozen=True)
class Pong:
    nonce: int


Message = Union[Hello, Welcome, Request, Response, AppError, RpcError, Ping, Pong]


def encode(msg: Message) -> bytes:
    out = bytearray()
    encode_into(out, msg)
    return bytes(out)


def encode_request_prefix(
    out: bytearray,
    req_id: int,
    component_id: int,
    method_index: int,
    trace_id: int = 0,
    parent_span_id: int = 0,
    deadline_ms: int = 0,
) -> None:
    """Append a REQUEST header; the argument bytes follow as the frame body.

    The hot path calls this with the frame buffer itself (started by
    :func:`repro.transport.framing.new_frame`) so a request costs zero
    intermediate copies: args ride as a separate gather chunk.  The varint
    loop is inlined — six ``write_uvarint`` calls per request are
    measurable at data-plane rates.
    """
    out.append(REQUEST)
    for v in (req_id, component_id, method_index, trace_id, parent_span_id,
              deadline_ms):
        while v > 0x7F:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)


def encode_response_prefix(out: bytearray, req_id: int) -> None:
    """Append a RESPONSE header; the result bytes follow as the frame body."""
    out.append(RESPONSE)
    v = req_id
    while v > 0x7F:
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    out.append(v)


def encode_into(out: bytearray, msg: Message) -> None:
    """Append the full encoding of ``msg`` (header and body) to ``out``."""
    if isinstance(msg, Hello):
        out.append(HELLO)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Welcome):
        out.append(WELCOME)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Request):
        encode_request_prefix(
            out,
            msg.req_id,
            msg.component_id,
            msg.method_index,
            msg.trace_id,
            msg.parent_span_id,
            msg.deadline_ms,
        )
        out += msg.args
    elif isinstance(msg, Response):
        encode_response_prefix(out, msg.req_id)
        out += msg.result
    elif isinstance(msg, AppError):
        out.append(APP_ERROR)
        write_uvarint(out, msg.req_id)
        t = msg.exc_type.encode("utf-8")[:65535]
        out += len(t).to_bytes(2, "big")
        out += t
        out += msg.message.encode("utf-8")
    elif isinstance(msg, RpcError):
        out.append(RPC_ERROR)
        write_uvarint(out, msg.req_id)
        out.append(msg.code & 0xFF)
        out.append(0x01 if msg.executed else 0x00)
        out += msg.message.encode("utf-8")
    elif isinstance(msg, Ping):
        out.append(PING)
        write_uvarint(out, msg.nonce)
    elif isinstance(msg, Pong):
        out.append(PONG)
        write_uvarint(out, msg.nonce)
    else:
        raise TransportError(f"cannot encode message {msg!r}")


def decode(frame: "bytes | bytearray | memoryview") -> Message:
    """Decode one frame.

    Zero-copy: REQUEST args and RESPONSE results are returned as
    :class:`memoryview` windows into ``frame`` (the schema-directed decoder
    chains read straight from them), valid as long as the frame buffer
    lives — which the dispatching task guarantees.
    """
    if not len(frame):
        raise TransportError("empty frame")
    buf = frame if isinstance(frame, memoryview) else memoryview(frame)
    kind = buf[0]
    # REQUEST and RESPONSE are the data plane: parse them with hand-inlined
    # varint loops over the raw buffer (no Reader, no per-field calls).
    if kind == RESPONSE or kind == REQUEST:
        try:
            pos = 1
            fields = [0, 0, 0, 0, 0, 0]
            for i in range(1 if kind == RESPONSE else 6):
                b = buf[pos]
                pos += 1
                if b < 0x80:
                    fields[i] = b
                    continue
                value = b & 0x7F
                shift = 7
                while True:
                    b = buf[pos]
                    pos += 1
                    value |= (b & 0x7F) << shift
                    if b < 0x80:
                        break
                    shift += 7
                fields[i] = value
            if kind == RESPONSE:
                return Response(fields[0], buf[pos:])
            return Request(
                fields[0],
                fields[1],
                fields[2],
                buf[pos:],
                fields[3],
                fields[4],
                fields[5],
            )
        except IndexError as exc:
            raise TransportError(
                f"malformed message of kind {kind}: truncated varint"
            ) from exc
    r = Reader(buf, 1)
    try:
        if kind == HELLO:
            return Hello(_read_short_str(r), _read_short_str(r))
        if kind == WELCOME:
            return Welcome(_read_short_str(r), _read_short_str(r))
        if kind == APP_ERROR:
            req_id = read_uvarint(r)
            tlen = int.from_bytes(r.take(2), "big")
            exc_type = str(r.view(tlen), "utf-8")
            return AppError(req_id, exc_type, str(r.rest(), "utf-8"))
        if kind == RPC_ERROR:
            req_id = read_uvarint(r)
            code = r.byte()
            executed = r.byte() & 0x01 != 0
            return RpcError(req_id, code, str(r.rest(), "utf-8"), executed)
        if kind == PING:
            return Ping(read_uvarint(r))
        if kind == PONG:
            return Pong(read_uvarint(r))
    except (DecodeError, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed message of kind {kind}: {exc}") from exc
    raise TransportError(f"unknown message kind {kind}")


def _short_str(out: bytearray, s: str) -> None:
    data = s.encode("utf-8")
    if len(data) > 255:
        raise TransportError(f"string too long for short encoding: {len(data)}")
    out.append(len(data))
    out += data


def _read_short_str(r: Reader) -> str:
    return str(r.view(r.byte()), "utf-8")
