"""Wire messages of the custom RPC protocol.

Because all peers run the same deployment version (enforced by the
handshake), the protocol needs almost nothing per message: a type byte,
a varint request id, varint component/method ids, and the argument bytes.
Compare with the HTTP baseline (:mod:`repro.transport.http_rpc`), which
spells out component and method *names* in text headers on every request —
the per-message cost the paper's design deletes.

Message layouts (after the frame length prefix)::

    HELLO     0x01 | u8 codec_len | codec | u8 version_len | version
    WELCOME   0x02 | u8 codec_len | codec | u8 version_len | version
    REQUEST   0x03 | uvarint req_id | uvarint component_id
                   | uvarint method_index | uvarint trace_id
                   | uvarint parent_span_id | uvarint deadline_ms
                   | args bytes

Trace ids propagate the caller's span context (zero = untraced); they cost
one byte each when tracing is off — the single-version luxury of changing
the protocol without a migration plan.  ``deadline_ms`` is the caller's
*remaining* budget for the call (zero = no deadline); each hop re-derives
it from its own clock, so no clock synchronization is needed.
    RESPONSE  0x04 | uvarint req_id | result bytes
    APP_ERROR 0x05 | uvarint req_id | u16 type_len | type | message utf-8
    RPC_ERROR 0x06 | uvarint req_id | u8 code | u8 flags | message utf-8
    PING      0x07 | uvarint nonce
    PONG      0x08 | uvarint nonce

RPC_ERROR ``code`` is :class:`repro.core.errors.ErrorCode` (retryability is
derived from it on the receiving side); flags bit 0 is ``executed`` — did
the method body possibly run before the failure?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import DecodeError, TransportError
from repro.serde.base import Reader, read_uvarint, write_uvarint

HELLO = 0x01
WELCOME = 0x02
REQUEST = 0x03
RESPONSE = 0x04
APP_ERROR = 0x05
RPC_ERROR = 0x06
PING = 0x07
PONG = 0x08


@dataclass(frozen=True)
class Hello:
    codec: str
    version: str


@dataclass(frozen=True)
class Welcome:
    codec: str
    version: str


@dataclass(frozen=True)
class Request:
    req_id: int
    component_id: int
    method_index: int
    args: bytes
    trace_id: int = 0
    parent_span_id: int = 0
    deadline_ms: int = 0  # remaining budget; 0 = no deadline


@dataclass(frozen=True)
class Response:
    req_id: int
    result: bytes


@dataclass(frozen=True)
class AppError:
    req_id: int
    exc_type: str
    message: str


@dataclass(frozen=True)
class RpcError:
    req_id: int
    code: int  # repro.core.errors.ErrorCode value
    message: str
    executed: bool = True  # may the method body have run?


@dataclass(frozen=True)
class Ping:
    nonce: int


@dataclass(frozen=True)
class Pong:
    nonce: int


Message = Union[Hello, Welcome, Request, Response, AppError, RpcError, Ping, Pong]


def encode(msg: Message) -> bytes:
    out = bytearray()
    if isinstance(msg, Hello):
        out.append(HELLO)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Welcome):
        out.append(WELCOME)
        _short_str(out, msg.codec)
        _short_str(out, msg.version)
    elif isinstance(msg, Request):
        out.append(REQUEST)
        write_uvarint(out, msg.req_id)
        write_uvarint(out, msg.component_id)
        write_uvarint(out, msg.method_index)
        write_uvarint(out, msg.trace_id)
        write_uvarint(out, msg.parent_span_id)
        write_uvarint(out, msg.deadline_ms)
        out += msg.args
    elif isinstance(msg, Response):
        out.append(RESPONSE)
        write_uvarint(out, msg.req_id)
        out += msg.result
    elif isinstance(msg, AppError):
        out.append(APP_ERROR)
        write_uvarint(out, msg.req_id)
        t = msg.exc_type.encode("utf-8")[:65535]
        out += len(t).to_bytes(2, "big")
        out += t
        out += msg.message.encode("utf-8")
    elif isinstance(msg, RpcError):
        out.append(RPC_ERROR)
        write_uvarint(out, msg.req_id)
        out.append(msg.code & 0xFF)
        out.append(0x01 if msg.executed else 0x00)
        out += msg.message.encode("utf-8")
    elif isinstance(msg, Ping):
        out.append(PING)
        write_uvarint(out, msg.nonce)
    elif isinstance(msg, Pong):
        out.append(PONG)
        write_uvarint(out, msg.nonce)
    else:
        raise TransportError(f"cannot encode message {msg!r}")
    return bytes(out)


def decode(frame: bytes) -> Message:
    if not frame:
        raise TransportError("empty frame")
    r = Reader(frame, 1)
    kind = frame[0]
    try:
        if kind == HELLO:
            return Hello(_read_short_str(r), _read_short_str(r))
        if kind == WELCOME:
            return Welcome(_read_short_str(r), _read_short_str(r))
        if kind == REQUEST:
            req_id = read_uvarint(r)
            component_id = read_uvarint(r)
            method_index = read_uvarint(r)
            trace_id = read_uvarint(r)
            parent_span_id = read_uvarint(r)
            deadline_ms = read_uvarint(r)
            return Request(
                req_id,
                component_id,
                method_index,
                frame[r.pos :],
                trace_id,
                parent_span_id,
                deadline_ms,
            )
        if kind == RESPONSE:
            return Response(read_uvarint(r), frame[r.pos :])
        if kind == APP_ERROR:
            req_id = read_uvarint(r)
            tlen = int.from_bytes(r.take(2), "big")
            exc_type = r.take(tlen).decode("utf-8")
            return AppError(req_id, exc_type, frame[r.pos :].decode("utf-8"))
        if kind == RPC_ERROR:
            req_id = read_uvarint(r)
            code = r.byte()
            executed = r.byte() & 0x01 != 0
            return RpcError(req_id, code, frame[r.pos :].decode("utf-8"), executed)
        if kind == PING:
            return Ping(read_uvarint(r))
        if kind == PONG:
            return Pong(read_uvarint(r))
    except (DecodeError, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed message of kind {kind}: {exc}") from exc
    raise TransportError(f"unknown message kind {kind}")


def _short_str(out: bytearray, s: str) -> None:
    data = s.encode("utf-8")
    if len(data) > 255:
        raise TransportError(f"string too long for short encoding: {len(data)}")
    out.append(len(data))
    out += data


def _read_short_str(r: Reader) -> str:
    return r.take(r.byte()).decode("utf-8")
