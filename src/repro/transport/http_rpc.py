"""The status-quo transport baseline: RPC over HTTP/1.1.

The paper's baseline deployment talks gRPC (HTTP/2) with protobuf payloads.
We reproduce its *cost structure* with a from-scratch HTTP/1.1 RPC stack:

* component and method are spelled out as text in the request line
  (``POST /rpc/<component>/<method>``),
* every request and response carries text headers (host, content type,
  lengths, request ids, user agent), re-parsed on each message,
* payloads use a versioned, self-describing codec (tagged or JSON),
* connections are keep-alive but requests on one connection are strictly
  sequential (HTTP/1.1 has no multiplexing), so callers needing concurrency
  pay for more sockets.

None of this is a strawman: it is what every microservice RPC framework
does, because independently released binaries cannot assume anything about
each other.  The benchmarks in ``benchmarks/test_transport.py`` measure the
difference against :mod:`repro.transport.connection`.
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import logging
import os
import time
from typing import Awaitable, Callable, Optional

from repro.core.errors import (
    DeadlineExceeded,
    RemoteApplicationError,
    ResourceExhausted,
    RPCError,
    TransportError,
    Unavailable,
)
from repro.core.options import deadline_scope
from repro.transport.server import parse_address

log = logging.getLogger("repro.transport.http")

#: Server handler: (component_name, method_name, body) -> response body.
NamedHandler = Callable[[str, str, bytes], Awaitable[bytes]]

_MAX_HEADER = 64 * 1024
_MAX_BODY = 64 * 1024 * 1024
_USER_AGENT = "repro-baseline/0.1"

#: Incoming trace context, set by the server around each handler call —
#: the HTTP analogue of the framed transport's message trace fields.  The
#: microservice world has to reinvent header propagation (W3C traceparent
#: et al.); this is our minimal version: ``x-repro-trace: <trace>-<span>``.
_trace_parent: contextvars.ContextVar[tuple[int, int]] = contextvars.ContextVar(
    "repro_http_trace_parent", default=(0, 0)
)


def incoming_trace() -> tuple[int, int]:
    """(trace_id, parent_span_id) of the request being served, or (0, 0)."""
    return _trace_parent.get()


def _parse_trace_header(value: str) -> tuple[int, int]:
    trace_part, sep, span_part = value.partition("-")
    if not sep:
        return (0, 0)
    try:
        return int(trace_part), int(span_part)
    except ValueError:
        return (0, 0)


class HttpRpcServer:
    """Minimal HTTP/1.1 server dispatching POST /rpc/<component>/<method>."""

    def __init__(self, handler: NamedHandler, *, address: str = "tcp://127.0.0.1:0") -> None:
        self._handler = handler
        self._requested = address
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: str = address

    async def start(self) -> str:
        scheme, host, port = parse_address(self._requested)
        if scheme == "tcp":
            self._server = await asyncio.start_server(self._serve, host, port)
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp://{bound[0]}:{bound[1]}"
        else:
            if os.path.exists(host):
                os.unlink(host)
            self._server = await asyncio.start_unix_server(self._serve, host)
            self.address = f"unix://{host}"
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_http_message(reader, request_side=True)
                if request is None:
                    break
                method, path, headers, body = request
                status, reply_headers, reply_body = await self._respond(
                    method, path, headers, body
                )
                _write_response(writer, status, reply_headers, reply_body)
                await writer.drain()
        except (TransportError, ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown while idle on a keep-alive connection
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        if method != "POST" or not path.startswith("/rpc/"):
            return 404, {}, b"not found"
        parts = path[len("/rpc/") :].split("/")
        if len(parts) != 2:
            return 400, {}, b"want /rpc/<component>/<method>"
        component, method_name = parts
        try:
            budget_ms = int(headers.get("x-repro-deadline", "0"))
        except ValueError:
            budget_ms = 0
        trace_token = None
        trace_header = headers.get("x-repro-trace")
        if trace_header:
            trace_token = _trace_parent.set(_parse_trace_header(trace_header))
        try:
            if budget_ms > 0:
                # Same budget semantics as the framed transport: pin the
                # caller's remaining budget to our clock, make it ambient
                # for nested calls, and refuse to outlive it.
                budget_s = budget_ms / 1000.0
                with deadline_scope(time.monotonic() + budget_s):
                    try:
                        result = await asyncio.wait_for(
                            self._handler(component, method_name, body), budget_s
                        )
                    except asyncio.TimeoutError:
                        raise DeadlineExceeded(
                            f"{component}.{method_name} exceeded its caller's "
                            f"{budget_ms}ms budget"
                        ) from None
            else:
                result = await self._handler(component, method_name, body)
            return 200, {"x-rpc-status": "ok"}, result
        except DeadlineExceeded as exc:
            return (
                504,
                {"x-rpc-status": "deadline", "x-rpc-executed": _executed(exc)},
                str(exc).encode(),
            )
        except ResourceExhausted as exc:
            return (
                429,
                {"x-rpc-status": "resource-exhausted", "x-rpc-executed": _executed(exc)},
                str(exc).encode(),
            )
        except Unavailable as exc:
            return (
                503,
                {"x-rpc-status": "unavailable", "x-rpc-executed": _executed(exc)},
                str(exc).encode(),
            )
        except RPCError as exc:
            return (
                500,
                {"x-rpc-status": "rpc-error", "x-rpc-executed": _executed(exc)},
                str(exc).encode(),
            )
        except Exception as exc:
            return (
                500,
                {"x-rpc-status": "app-error", "x-exc-type": type(exc).__name__},
                str(exc).encode(),
            )
        finally:
            if trace_token is not None:
                _trace_parent.reset(trace_token)


class HttpRpcClient:
    """Keep-alive HTTP/1.1 client; one in-flight request per connection."""

    def __init__(self, *, connect_timeout: float = 5.0) -> None:
        self._connect_timeout = connect_timeout
        # Idle connection stack per address; HTTP/1.1 cannot multiplex, so
        # concurrent calls to the same peer open additional sockets.
        self._idle: dict[str, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = {}
        self._req_ids = itertools.count(1)

    async def call(
        self,
        address: str,
        component: str,
        method: str,
        body: bytes,
        *,
        timeout: Optional[float] = None,
        deadline_ms: int = 0,
        trace: Optional[tuple[int, int]] = None,
    ) -> bytes:
        reader, writer = await self._checkout(address)
        try:
            request = _format_request(
                address,
                component,
                method,
                body,
                next(self._req_ids),
                deadline_ms=deadline_ms,
                trace=trace,
            )
            writer.write(request)
            await writer.drain()
            response = await asyncio.wait_for(
                _read_http_message(reader, request_side=False), timeout
            )
        except asyncio.TimeoutError:
            writer.close()
            raise DeadlineExceeded(f"HTTP call to {component}.{method} timed out") from None
        except (ConnectionError, OSError, TransportError) as exc:
            writer.close()
            raise Unavailable(f"HTTP call to {address} failed: {exc}") from exc
        if response is None:
            writer.close()
            raise Unavailable(f"{address} closed the connection")
        status_line, _, headers, reply_body = response
        self._checkin(address, reader, writer, headers)
        status = int(status_line)
        if status == 200:
            return reply_body
        rpc_status = headers.get("x-rpc-status", "")
        text = reply_body.decode("utf-8", "replace")
        executed = headers.get("x-rpc-executed", "1") != "0"
        if status == 504 or rpc_status == "deadline":
            raise DeadlineExceeded(text, executed=executed)
        if status == 429 or rpc_status == "resource-exhausted":
            err = ResourceExhausted(text)
            err.executed = executed
            raise err
        if status == 503 or rpc_status == "unavailable":
            raise Unavailable(text, executed=executed)
        if rpc_status == "app-error":
            raise RemoteApplicationError(headers.get("x-exc-type", "Exception"), text)
        raise RPCError(f"HTTP {status}: {text}", retryable=False)

    async def _checkout(self, address: str) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        stack = self._idle.get(address)
        while stack:
            reader, writer = stack.pop()
            if not writer.is_closing():
                return reader, writer
        scheme, host, port = parse_address(address)
        try:
            if scheme == "tcp":
                return await asyncio.wait_for(
                    asyncio.open_connection(host, port), self._connect_timeout
                )
            return await asyncio.wait_for(
                asyncio.open_unix_connection(host), self._connect_timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise Unavailable(
                f"cannot connect to {address}: {exc}", executed=False
            ) from exc

    def _checkin(
        self,
        address: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
    ) -> None:
        if headers.get("connection", "keep-alive").lower() == "close" or writer.is_closing():
            writer.close()
            return
        self._idle.setdefault(address, []).append((reader, writer))

    async def close(self) -> None:
        for stack in self._idle.values():
            for _, writer in stack:
                writer.close()
        self._idle.clear()

    def drop(self, address: str) -> None:
        for _, writer in self._idle.pop(address, []):
            writer.close()


def _executed(exc: RPCError) -> str:
    return "1" if exc.executed else "0"


def _format_request(
    address: str,
    component: str,
    method: str,
    body: bytes,
    req_id: int,
    *,
    deadline_ms: int = 0,
    trace: Optional[tuple[int, int]] = None,
) -> bytes:
    # The text header block every microservice request pays for.
    deadline = f"x-repro-deadline: {deadline_ms}\r\n" if deadline_ms > 0 else ""
    trace_header = (
        f"x-repro-trace: {trace[0]}-{trace[1]}\r\n" if trace and trace[0] else ""
    )
    head = (
        f"POST /rpc/{component}/{method} HTTP/1.1\r\n"
        f"host: {address}\r\n"
        f"user-agent: {_USER_AGENT}\r\n"
        f"content-type: application/x-rpc\r\n"
        f"x-request-id: {req_id}\r\n"
        f"{deadline}"
        f"{trace_header}"
        f"content-length: {len(body)}\r\n"
        f"connection: keep-alive\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


def _write_response(
    writer: asyncio.StreamWriter, status: int, headers: dict[str, str], body: bytes
) -> None:
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        429: "Too Many Requests",
        500: "Error",
        503: "Unavailable",
        504: "Gateway Timeout",
    }
    lines = [f"HTTP/1.1 {status} {reason.get(status, 'Status')}"]
    lines.append(f"content-length: {len(body)}")
    lines.append("content-type: application/x-rpc")
    lines.append("connection: keep-alive")
    for k, v in headers.items():
        lines.append(f"{k}: {v}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    writer.write(head + body)


async def _read_http_message(
    reader: asyncio.StreamReader, *, request_side: bool
) -> Optional[tuple[str, str, dict[str, str], bytes]]:
    """Parse one HTTP/1.1 message.

    Returns (method, path, headers, body) on the server side and
    (status_code, reason, headers, body) on the client side, or None on a
    clean EOF between messages.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise TransportError(f"HTTP header block too large: {exc}") from exc
    if len(head) > _MAX_HEADER:
        raise TransportError("HTTP header block too large")
    lines = head.decode("latin-1").split("\r\n")
    first = lines[0].split(" ", 2)
    if len(first) < 2:
        raise TransportError(f"malformed start line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise TransportError(f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length > _MAX_BODY:
        raise TransportError(f"HTTP body of {length} bytes too large")
    body = await reader.readexactly(length) if length else b""
    if request_side:
        return first[0], first[1], headers, body
    return first[1], first[2] if len(first) > 2 else "", headers, body
