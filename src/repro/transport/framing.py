"""Length-prefixed framing over a byte stream, with optional compression.

The paper's prototype uses "a streamlined transport protocol built directly
on top of TCP" (§6).  Ours frames every message as a 4-byte big-endian
length followed by the payload — no headers, no text, no per-message
metadata beyond what :mod:`repro.transport.message` packs inside.

§5.1 notes that because transport is abstracted from the developer, "for
network bottlenecked applications ... the runtime may decide to compress
messages on the wire."  That decision lives here: the top bit of the
length word marks a zlib-compressed frame, so each frame self-describes
and compression can be enabled per sender (a runtime policy), not
negotiated.  Senders compress only when a frame exceeds
``COMPRESS_THRESHOLD`` *and* compression actually shrank it.

A maximum frame size bounds memory per connection; a peer announcing a
larger frame is cut off rather than allowed to balloon the process.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

from repro.core.errors import TransportError

#: 64 MiB: far above any boutique payload, far below anything sane to buffer.
MAX_FRAME = 64 * 1024 * 1024

#: Frames below this size are never compressed (zlib overhead dominates).
COMPRESS_THRESHOLD = 512

_LEN = struct.Struct(">I")
_COMPRESSED_BIT = 0x8000_0000


async def write_frame(
    writer: asyncio.StreamWriter, payload: bytes, *, compress: bool = False
) -> None:
    """Write one frame and drain the socket buffer.

    With ``compress=True`` the payload is zlib-compressed when it is large
    enough to plausibly benefit and compression actually helps.
    """
    if len(payload) > MAX_FRAME:
        raise TransportError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    flag = 0
    if compress and len(payload) >= COMPRESS_THRESHOLD:
        squeezed = zlib.compress(payload, level=1)
        if len(squeezed) < len(payload):
            payload = squeezed
            flag = _COMPRESSED_BIT
    writer.write(_LEN.pack(len(payload) | flag) + payload)
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame; raises TransportError on EOF or oversized frames."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise TransportError("connection closed") from exc
        raise TransportError("connection closed mid-frame") from exc
    (word,) = _LEN.unpack(header)
    compressed = bool(word & _COMPRESSED_BIT)
    length = word & ~_COMPRESSED_BIT
    if length > MAX_FRAME:
        raise TransportError(f"peer announced frame of {length} bytes (> MAX_FRAME)")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    if compressed:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise TransportError(f"corrupt compressed frame: {exc}") from exc
        if len(payload) > MAX_FRAME:
            raise TransportError("decompressed frame exceeds MAX_FRAME")
    return payload
