"""Length-prefixed framing over a byte stream, with optional compression.

The paper's prototype uses "a streamlined transport protocol built directly
on top of TCP" (§6).  Ours frames every message as a 4-byte big-endian
length followed by the payload — no headers, no text, no per-message
metadata beyond what :mod:`repro.transport.message` packs inside.

§5.1 notes that because transport is abstracted from the developer, "for
network bottlenecked applications ... the runtime may decide to compress
messages on the wire."  That decision lives here: the top bit of the
length word marks a zlib-compressed frame, so each frame self-describes
and compression can be enabled per sender (a runtime policy), not
negotiated.  Senders compress only when a frame exceeds
``COMPRESS_THRESHOLD`` *and* compression actually shrank it.

A maximum frame size bounds memory per connection; a peer announcing a
larger frame is cut off rather than allowed to balloon the process.

Two write paths share the encoding logic:

* :func:`write_frame` — write one frame and drain.  Used for handshakes
  and other cold paths where per-frame latency does not matter.
* :func:`new_frame` + :func:`frame_chunks` — the hot path.  A frame is
  built directly in one ``bytearray`` whose first ``HEADER`` bytes are
  reserved for the length word (patched in place by ``frame_chunks``), and
  a large payload travels as a *separate* chunk so it is never copied into
  the frame buffer.  :class:`repro.transport.connection.Connection` queues
  the chunks and a single flusher task writes many frames with one
  ``writelines`` + one ``drain`` (adaptive write coalescing).
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Union

from repro.core.errors import TransportError

#: 64 MiB: far above any boutique payload, far below anything sane to buffer.
MAX_FRAME = 64 * 1024 * 1024

#: Frames below this size are never compressed (zlib overhead dominates).
COMPRESS_THRESHOLD = 512

_LEN = struct.Struct(">I")
_COMPRESSED_BIT = 0x8000_0000

#: Bytes reserved at the front of a frame buffer for the length word.
HEADER = _LEN.size

Buffer = Union[bytes, bytearray, memoryview]


def new_frame() -> bytearray:
    """Start a frame: ``HEADER`` reserved bytes, message body appended after."""
    return bytearray(HEADER)


def frame_chunks(
    head: bytearray, payload: Buffer = b"", *, compress: bool = False
) -> tuple:
    """Seal a frame started with :func:`new_frame` into wire-ready chunks.

    ``head`` is the frame buffer (reserved length word plus any message
    prefix already appended); ``payload`` rides as a separate chunk so big
    argument/result buffers are never copied (writev-style gather output).
    Ownership of both buffers transfers to the transport: the caller must
    not mutate them after this call.

    Compression — when enabled, the body is big enough, and zlib actually
    shrinks it — is the one path that materializes a contiguous copy.
    """
    body_len = len(head) - HEADER + len(payload)
    if body_len > MAX_FRAME:
        raise TransportError(f"frame of {body_len} bytes exceeds MAX_FRAME")
    if compress and body_len >= COMPRESS_THRESHOLD:
        body = b"".join((memoryview(head)[HEADER:], payload))
        squeezed = zlib.compress(body, level=1)
        if len(squeezed) < body_len:
            return (_LEN.pack(len(squeezed) | _COMPRESSED_BIT), squeezed)
    _LEN.pack_into(head, 0, body_len)
    return (head, payload) if len(payload) else (head,)


async def write_frame(
    writer: asyncio.StreamWriter, payload: Buffer, *, compress: bool = False
) -> None:
    """Write one frame and drain the socket buffer (the unbatched path).

    With ``compress=True`` the payload is zlib-compressed when it is large
    enough to plausibly benefit and compression actually helps.
    """
    writer.writelines(frame_chunks(new_frame(), payload, compress=compress))
    await writer.drain()


class FrameParser:
    """Incremental frame parser for batched reads (read-side coalescing).

    The hot read loop pulls large chunks off the socket (one ``read()``
    await may carry dozens of frames a coalescing peer flushed together)
    and feeds them here; :meth:`feed` hands back every complete payload.
    Each payload is materialized as owned ``bytes`` — the frame buffer is
    compacted between feeds, so borrowed views would not survive — and
    decompressed when the frame flags it.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def mid_frame(self) -> bool:
        """True if EOF now would cut a frame short."""
        return len(self._buf) > 0

    def feed(self, chunk: Buffer) -> list:
        """Absorb ``chunk``; return the payloads of all completed frames."""
        buf = self._buf
        buf += chunk
        frames: list = []
        pos = 0
        have = len(buf)
        while have - pos >= HEADER:
            (word,) = _LEN.unpack_from(buf, pos)
            length = word & ~_COMPRESSED_BIT
            if length > MAX_FRAME:
                raise TransportError(
                    f"peer announced frame of {length} bytes (> MAX_FRAME)"
                )
            end = pos + HEADER + length
            if end > have:
                break
            payload = bytes(memoryview(buf)[pos + HEADER : end])
            if word & _COMPRESSED_BIT:
                try:
                    payload = zlib.decompress(payload)
                except zlib.error as exc:
                    raise TransportError(f"corrupt compressed frame: {exc}") from exc
                if len(payload) > MAX_FRAME:
                    raise TransportError("decompressed frame exceeds MAX_FRAME")
            frames.append(payload)
            pos = end
        if pos:
            del buf[:pos]
        return frames


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame; raises TransportError on EOF or oversized frames."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise TransportError("connection closed") from exc
        raise TransportError("connection closed mid-frame") from exc
    (word,) = _LEN.unpack(header)
    compressed = bool(word & _COMPRESSED_BIT)
    length = word & ~_COMPRESSED_BIT
    if length > MAX_FRAME:
        raise TransportError(f"peer announced frame of {length} bytes (> MAX_FRAME)")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    if compressed:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise TransportError(f"corrupt compressed frame: {exc}") from exc
        if len(payload) > MAX_FRAME:
            raise TransportError("decompressed frame exceeds MAX_FRAME")
    return payload
