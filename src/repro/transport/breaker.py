"""Per-replica circuit breakers — the client side of failure handling.

The manager's heartbeat sweep (:mod:`repro.runtime.health`) is *slow and
authoritative*: it takes seconds to declare a replica dead, repairs
routing, and restarts the process.  Between the failure and that verdict,
every caller keeps dialing the corpse and burning its retry budget.  This
module is the *fast and local* half: each proclet tracks the recent
outcome history of every (component, replica-address) pair it talks to and
stops picking addresses that are failing — gRPC/Envoy-style outlier
ejection, embedded in the runtime exactly like the paper's routing (§5.2).

State machine per breaker::

    CLOSED ──trip (N consecutive failures, or error rate over the
       │          rolling window with enough volume)──▶ OPEN
       ▲                                                  │ cooldown
       │  probe successes                                 ▼ elapsed
       └───────────────────────── HALF_OPEN ◀─────────────┘
                 probe failure: back to OPEN, cooldown doubled

Time is injected (``clock``) so the simulator, unit tests, and the real
runtime share the logic; nothing here touches asyncio.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery thresholds shared by every breaker in a set."""

    #: Rolling outcome window; outcomes older than this stop counting.
    window_s: float = 10.0
    #: Trip after this many consecutive failures (connect errors are
    #: cheap and unambiguous, so the default is low).
    consecutive_failures: int = 3
    #: ... or when the windowed failure rate reaches this, with at least
    #: ``min_volume`` outcomes observed (catches sick-but-alive replicas).
    error_rate: float = 0.5
    min_volume: int = 10
    #: Cooldown before an OPEN breaker admits a probe; doubles on every
    #: re-trip without an intervening close, capped at ``open_for_max_s``.
    open_for_s: float = 1.0
    open_for_max_s: float = 30.0
    #: Concurrent probes admitted while HALF_OPEN.
    half_open_probes: int = 1
    #: Probe successes required to close again.
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.consecutive_failures < 1:
            raise ValueError("consecutive_failures must be >= 1")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")
        if self.open_for_s <= 0:
            raise ValueError("open_for_s must be positive")


class CircuitBreaker:
    """Outcome history and trip state for one (component, address) pair."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BreakerState, BreakerState], None]] = None,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._window: deque[tuple[float, bool]] = deque()
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Re-trips without an intervening close (drives cooldown backoff).
        self._trip_streak = 0
        self._probes_inflight = 0
        self._probe_admitted_at = 0.0
        self._probe_successes = 0
        #: When this breaker last tripped; never-tripped sorts first in
        #: least-recently-tripped degradation.
        self.last_tripped_at = float("-inf")
        self.trips = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        return self._state

    def _set_state(self, new: BreakerState) -> None:
        old = self._state
        if old is new:
            return
        self._state = new
        if self._on_transition is not None:
            self._on_transition(old, new)

    def _cooldown_s(self) -> float:
        backoff = self.policy.open_for_s * (2 ** max(0, self._trip_streak - 1))
        return min(backoff, self.policy.open_for_max_s)

    def _cooldown_elapsed(self, now: float) -> bool:
        return now - self._opened_at >= self._cooldown_s()

    def _probe_slot_free(self, now: float) -> bool:
        if self._probes_inflight < self.policy.half_open_probes:
            return True
        # A probe whose outcome never came back (cancelled hedge, crashed
        # caller) must not wedge the breaker half-open forever.
        return now - self._probe_admitted_at > self._cooldown_s()

    # -- admission -----------------------------------------------------------

    def peek(self) -> bool:
        """Would a call be admitted right now?  Non-mutating (for filtering)."""
        now = self._clock()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            return self._cooldown_elapsed(now)
        return self._probe_slot_free(now)

    def admit(self) -> bool:
        """Admit one call; OPEN breakers move to HALF_OPEN after cooldown
        and the admitted call becomes the probe."""
        now = self._clock()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if not self._cooldown_elapsed(now):
                return False
            self._set_state(BreakerState.HALF_OPEN)
            self._probes_inflight = 0
            self._probe_successes = 0
        if not self._probe_slot_free(now):
            return False
        self._probes_inflight += 1
        self._probe_admitted_at = now
        return True

    # -- outcome reporting -----------------------------------------------------

    def record_success(self) -> None:
        now = self._clock()
        self._append(now, True)
        self._consecutive_failures = 0
        if self._state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_successes:
                self._close()

    def record_failure(self) -> bool:
        """Record one failed attempt; True if this record tripped OPEN."""
        now = self._clock()
        self._append(now, False)
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip(now)
            return True
        if self._state is BreakerState.CLOSED and self._should_trip(now):
            self._trip(now)
            return True
        return False

    def _should_trip(self, now: float) -> bool:
        if self._consecutive_failures >= self.policy.consecutive_failures:
            return True
        self._prune(now)
        total = len(self._window)
        if total < self.policy.min_volume:
            return False
        failures = sum(1 for _, ok in self._window if not ok)
        return failures / total >= self.policy.error_rate

    def _trip(self, now: float) -> None:
        self._opened_at = now
        self.last_tripped_at = now
        self._trip_streak += 1
        self.trips += 1
        self._window.clear()
        self._consecutive_failures = 0
        self._set_state(BreakerState.OPEN)

    def _close(self) -> None:
        self._trip_streak = 0
        self._window.clear()
        self._consecutive_failures = 0
        self._probes_inflight = 0
        self._probe_successes = 0
        self._set_state(BreakerState.CLOSED)

    # -- window bookkeeping -----------------------------------------------------

    def _append(self, now: float, ok: bool) -> None:
        self._window.append((now, ok))
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.window_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()


class BreakerSet:
    """Every breaker one proclet holds, keyed by (component, address).

    The single integration point for routing (:mod:`repro.runtime.routing`
    filters picks through it), the RPC layer (attempt outcomes land here
    via ``ReplicaResolver.report_outcome``), and observability (state
    transitions and skipped picks are counted into a
    :class:`~repro.observability.metrics.MetricsRegistry`).
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self._transitions = metrics.counter("breaker_transitions") if metrics else None
        self._open_gauge = metrics.gauge("breaker_open_replicas") if metrics else None
        self._skips = metrics.counter("breaker_skipped_picks") if metrics else None

    def breaker(self, component: str, address: str) -> CircuitBreaker:
        key = (component, address)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy,
                clock=self._clock,
                on_transition=lambda old, new, c=component: self._transition(c, old, new),
            )
            self._breakers[key] = breaker
        return breaker

    def _transition(self, component: str, old: BreakerState, new: BreakerState) -> None:
        if self._transitions is not None:
            self._transitions.inc(component=component, to=new.value)
        if self._open_gauge is not None:
            self._open_gauge.set(float(self.open_count(component)), component=component)

    # -- reporting ----------------------------------------------------------

    def record(self, component: str, address: str, *, ok: bool) -> bool:
        """Record one attempt outcome; True if the breaker tripped OPEN."""
        breaker = self.breaker(component, address)
        if ok:
            breaker.record_success()
            return False
        return breaker.record_failure()

    # -- admission (routing calls these) -------------------------------------

    def peek(self, component: str, address: str) -> bool:
        breaker = self._breakers.get((component, address))
        return breaker.peek() if breaker is not None else True

    def admit(self, component: str, address: str) -> bool:
        return self.breaker(component, address).admit()

    def filter(self, component: str, addresses: Sequence[str]) -> list[str]:
        """The subset of ``addresses`` currently admitting calls.

        An empty result means every replica is ejected — callers should
        degrade (see :meth:`least_recently_tripped`) rather than fail.
        """
        allowed = [a for a in addresses if self.peek(component, a)]
        if len(allowed) < len(addresses) and self._skips is not None:
            self._skips.inc(float(len(addresses) - len(allowed)), component=component)
        return allowed

    def least_recently_tripped(
        self, component: str, addresses: Sequence[str]
    ) -> Optional[str]:
        """Degraded pick when every replica is open: the one whose trip is
        oldest is the most likely to have recovered."""
        if not addresses:
            return None
        return min(
            addresses,
            key=lambda a: getattr(
                self._breakers.get((component, a)), "last_tripped_at", float("-inf")
            ),
        )

    # -- maintenance -----------------------------------------------------------

    def retain(self, component: str, addresses: Iterable[str]) -> None:
        """Drop breakers for replicas that left the routing set."""
        keep = set(addresses)
        stale = [
            key
            for key in self._breakers
            if key[0] == component and key[1] not in keep
        ]
        for key in stale:
            del self._breakers[key]
        if stale and self._open_gauge is not None:
            self._open_gauge.set(float(self.open_count(component)), component=component)

    def open_count(self, component: Optional[str] = None) -> int:
        return sum(
            1
            for (comp, _), b in self._breakers.items()
            if (component is None or comp == component)
            and b.state is not BreakerState.CLOSED
        )

    def states(self, component: str) -> dict[str, BreakerState]:
        return {
            addr: b.state
            for (comp, addr), b in self._breakers.items()
            if comp == component
        }

    def snapshot(self) -> dict[str, dict[str, str]]:
        """Per-component view of breaker states (status page / examples)."""
        out: dict[str, dict[str, str]] = {}
        for (component, address), breaker in self._breakers.items():
            out.setdefault(component, {})[address] = breaker.state.value
        return out
