"""Client-side connection pooling for proclet-to-proclet RPC.

One :class:`ConnectionPool` per proclet caches a single multiplexed
connection per peer address (the protocol pipelines, so one connection
carries arbitrary concurrency).  Dead connections are dropped and
re-established on next use; connecting concurrently to the same address is
coalesced behind a per-address lock.

Both maps are *pruned*: a connection found closed is removed on sight, and
its dial lock goes with it once nobody holds it — a long-lived proclet
that has talked to thousands of ephemeral peers does not keep one lock and
one dead connection entry per address it ever saw.
"""

from __future__ import annotations

import asyncio
import logging

from repro.core.errors import Unavailable, VersionMismatch
from repro.transport.connection import Connection, client_handshake
from repro.transport.server import parse_address

log = logging.getLogger("repro.transport")


class ConnectionPool:
    def __init__(
        self,
        *,
        codec: str,
        version: str,
        connect_timeout: float = 5.0,
        compress: bool = False,
        coalesce: bool = True,
    ) -> None:
        self._codec = codec
        self._version = version
        self._connect_timeout = connect_timeout
        self._compress = compress
        self._coalesce = coalesce
        self._connections: dict[str, Connection] = {}
        self._locks: dict[str, asyncio.Lock] = {}

    async def get(self, address: str) -> Connection:
        """Return a live connection to ``address``, dialing if needed."""
        conn = self._connections.get(address)
        if conn is not None and not conn.closed:
            return conn
        lock = self._locks.setdefault(address, asyncio.Lock())
        try:
            async with lock:
                conn = self._connections.get(address)
                if conn is not None:
                    if not conn.closed:
                        return conn
                    del self._connections[address]  # prune the dead entry
                conn = await self._dial(address)
                existing = self._connections.get(address)
                if existing is not None and not existing.closed:
                    # Rare race after a lock was pruned mid-dial: another
                    # caller connected first.  Keep theirs, fold ours.
                    asyncio.ensure_future(conn.close())
                    return existing
                self._connections[address] = conn
                return conn
        finally:
            # A failed dial must not leave a lock behind for an address we
            # never reached (the long-lived-proclet leak).
            self._prune_lock(address)

    async def _dial(self, address: str) -> Connection:
        scheme, host, port = parse_address(address)
        try:
            if scheme == "tcp":
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self._connect_timeout
                )
            else:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_unix_connection(host), self._connect_timeout
                )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise Unavailable(
                f"cannot connect to {address}: {exc}", executed=False
            ) from exc
        try:
            await asyncio.wait_for(
                client_handshake(
                    reader, writer, codec=self._codec, version=self._version
                ),
                self._connect_timeout,
            )
        except VersionMismatch:
            writer.close()
            raise
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            writer.close()
            raise Unavailable(
                f"handshake with {address} failed: {exc}", executed=False
            ) from exc
        conn = Connection(
            reader,
            writer,
            name=f"client->{address}",
            compress=self._compress,
            coalesce=self._coalesce,
        )
        conn.start()
        return conn

    def drop(self, address: str) -> None:
        """Forget a connection (e.g. after its replica was reported dead)."""
        conn = self._connections.pop(address, None)
        if conn is not None and not conn.closed:
            asyncio.ensure_future(conn.close())
        self._prune_lock(address)

    def _prune_lock(self, address: str) -> None:
        """Drop the per-address dial lock once it has no holder.

        An unlocked asyncio.Lock has no waiters (acquire succeeds
        immediately when free), so removal is safe; the one theoretical
        race — a coroutine that fetched the lock object but has not yet
        acquired it — is absorbed by the keep-theirs check in :meth:`get`.
        """
        lock = self._locks.get(address)
        if lock is not None and not lock.locked() and address not in self._connections:
            del self._locks[address]

    async def close(self) -> None:
        for conn in list(self._connections.values()):
            await conn.close()
        self._connections.clear()
        self._locks.clear()

    @property
    def open_count(self) -> int:
        return len([c for c in self._connections.values() if not c.closed])

    @property
    def tracked_addresses(self) -> int:
        """Map entries currently held (tests assert pruning keeps this flat)."""
        return len(set(self._connections) | set(self._locks))
