"""Client-side connection pooling for proclet-to-proclet RPC.

One :class:`ConnectionPool` per proclet caches a single multiplexed
connection per peer address (the protocol pipelines, so one connection
carries arbitrary concurrency).  Dead connections are dropped and
re-established on next use; connecting concurrently to the same address is
coalesced behind a per-address lock.

The pool is **loop-aware**: with a multi-worker data plane, outbound calls
originate on whichever worker loop is serving the inbound request, and a
:class:`~repro.transport.connection.Connection`'s entire state (futures,
outbox, stream registries) is owned by the loop that started it.  Entries
are therefore keyed by ``(event loop, address)`` — each worker loop dials
and owns its own connection to a peer, which is exactly the shared-nothing
contract: nothing per-connection ever crosses threads.  ``drop`` and
``close`` may be called from any loop; they schedule the close on each
connection's home loop.

Both maps are *pruned*: a connection found closed is removed on sight, and
its dial lock goes with it once nobody holds it — a long-lived proclet
that has talked to thousands of ephemeral peers does not keep one lock and
one dead connection entry per address it ever saw.
"""

from __future__ import annotations

import asyncio
import logging

from repro.core.errors import Unavailable, VersionMismatch
from repro.transport.connection import (
    STREAM_CHUNK_BYTES,
    STREAM_THRESHOLD,
    Connection,
    client_handshake,
)
from repro.transport.server import parse_address

log = logging.getLogger("repro.transport")


class ConnectionPool:
    def __init__(
        self,
        *,
        codec: str,
        version: str,
        connect_timeout: float = 5.0,
        compress: bool = False,
        coalesce: bool = True,
        stream_threshold: int = STREAM_THRESHOLD,
        stream_chunk: int = STREAM_CHUNK_BYTES,
    ) -> None:
        self._codec = codec
        self._version = version
        self._connect_timeout = connect_timeout
        self._compress = compress
        self._coalesce = coalesce
        self._stream_threshold = stream_threshold
        self._stream_chunk = stream_chunk
        self._connections: dict[tuple[int, str], Connection] = {}
        self._locks: dict[tuple[int, str], asyncio.Lock] = {}

    @staticmethod
    def _key(address: str) -> tuple[int, str]:
        return (id(asyncio.get_running_loop()), address)

    async def get(self, address: str) -> Connection:
        """Return a live connection to ``address`` owned by the calling
        loop, dialing if needed."""
        key = self._key(address)
        conn = self._connections.get(key)
        if conn is not None and not conn.closed:
            return conn
        lock = self._locks.setdefault(key, asyncio.Lock())
        try:
            async with lock:
                conn = self._connections.get(key)
                if conn is not None:
                    if not conn.closed:
                        return conn
                    del self._connections[key]  # prune the dead entry
                conn = await self._dial(address)
                existing = self._connections.get(key)
                if existing is not None and not existing.closed:
                    # Rare race after a lock was pruned mid-dial: another
                    # caller connected first.  Keep theirs, fold ours.
                    asyncio.ensure_future(conn.close())
                    return existing
                self._connections[key] = conn
                return conn
        finally:
            # A failed dial must not leave a lock behind for an address we
            # never reached (the long-lived-proclet leak).
            self._prune_lock(key)

    async def _dial(self, address: str) -> Connection:
        scheme, host, port = parse_address(address)
        try:
            if scheme == "tcp":
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self._connect_timeout
                )
            else:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_unix_connection(host), self._connect_timeout
                )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise Unavailable(
                f"cannot connect to {address}: {exc}", executed=False
            ) from exc
        try:
            await asyncio.wait_for(
                client_handshake(
                    reader, writer, codec=self._codec, version=self._version
                ),
                self._connect_timeout,
            )
        except VersionMismatch:
            writer.close()
            raise
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            writer.close()
            raise Unavailable(
                f"handshake with {address} failed: {exc}", executed=False
            ) from exc
        conn = Connection(
            reader,
            writer,
            name=f"client->{address}",
            compress=self._compress,
            coalesce=self._coalesce,
            stream_threshold=self._stream_threshold,
            stream_chunk=self._stream_chunk,
        )
        conn.start()
        return conn

    def drop(self, address: str) -> None:
        """Forget every loop's connection to ``address`` (e.g. after its
        replica was reported dead).  Safe to call from any loop: foreign
        connections are closed on their home loop."""
        for key in [k for k in list(self._connections) if k[1] == address]:
            conn = self._connections.pop(key, None)
            if conn is not None and not conn.closed:
                self._close_on_home_loop(conn)
            self._prune_lock(key)

    @staticmethod
    def _close_on_home_loop(conn: Connection) -> None:
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        home = conn.home_loop
        if home is None or home is running:
            asyncio.ensure_future(conn.close())
        elif not home.is_closed():
            asyncio.run_coroutine_threadsafe(conn.close(), home)

    def _prune_lock(self, key: tuple[int, str]) -> None:
        """Drop the per-address dial lock once it has no holder.

        An unlocked asyncio.Lock has no waiters (acquire succeeds
        immediately when free), so removal is safe; the one theoretical
        race — a coroutine that fetched the lock object but has not yet
        acquired it — is absorbed by the keep-theirs check in :meth:`get`.
        """
        lock = self._locks.get(key)
        if lock is not None and not lock.locked() and key not in self._connections:
            del self._locks[key]

    async def close(self) -> None:
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        for conn in list(self._connections.values()):
            home = conn.home_loop
            if home is None or home is running:
                await conn.close()
            elif not home.is_closed():
                try:
                    await asyncio.wrap_future(
                        asyncio.run_coroutine_threadsafe(conn.close(), home)
                    )
                except Exception:  # home loop died mid-close; nothing to save
                    pass
        self._connections.clear()
        self._locks.clear()

    @property
    def open_count(self) -> int:
        return len([c for c in self._connections.values() if not c.closed])

    @property
    def tracked_addresses(self) -> int:
        """Map entries currently held (tests assert pruning keeps this flat)."""
        return len(set(self._connections) | set(self._locks))
