"""The RPC layer: marshals stub invocations onto the wire and back.

Two halves:

* :class:`Dispatcher` — server side.  Looks up the component by numeric id,
  the method by index, decodes the argument tuple with the deployment
  codec, invokes the local replica, and encodes the result.
* :class:`RemoteInvoker` — client side, plugged into stubs
  (:mod:`repro.core.stub`).  Encodes arguments, asks a
  :class:`ReplicaResolver` which peer should execute the call (this is
  where affinity routing enters, §5.2), performs the call with deadline
  and bounded retries, and records the observation in the call graph.

Numeric component/method ids are deployment-version-scoped (see
:mod:`repro.codegen.versioning`); no names travel with requests.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Optional, Protocol

from repro.codegen.compiler import MethodSpec
from repro.core.call_graph import CallGraph
from repro.core.errors import ComponentNotFound, RPCError, Unavailable
from repro.core.registry import FrozenRegistry, Registration
from repro.core.stub import LocalInvoker
from repro.serde.base import Codec
from repro.transport.client import ConnectionPool

log = logging.getLogger("repro.transport")


class ReplicaResolver(Protocol):
    """Chooses the peer address for one invocation."""

    async def resolve(
        self, reg: Registration, method: MethodSpec, args: tuple
    ) -> str:
        """Return the address of the replica that should execute the call."""
        ...

    def report_failure(self, reg: Registration, address: str) -> None:
        """Tell the resolver an address failed so it can avoid/refresh it."""
        ...


class Dispatcher:
    """Serves decoded RPC requests against local component replicas."""

    def __init__(
        self,
        build: FrozenRegistry,
        codec: Codec,
        local: LocalInvoker,
        *,
        hosted: Optional[set[str]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self._build = build
        self._codec = codec
        self._local = local
        self._hosted = hosted  # None: host everything (single group)
        self._tracer = tracer

    def hosts(self, name: str) -> bool:
        return self._hosted is None or name in self._hosted

    def set_hosted(self, hosted: set[str]) -> None:
        self._hosted = hosted

    async def handle(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        trace: tuple[int, int] = (0, 0),
    ) -> bytes:
        try:
            reg = self._build.by_id(component_id)
        except ComponentNotFound as exc:
            raise RPCError(str(exc), retryable=False) from exc
        if not self.hosts(reg.name):
            # The manager moved this component elsewhere; tell the caller
            # to re-resolve rather than failing the request permanently.
            raise Unavailable(f"{reg.name} is not hosted by this proclet")
        if method_index >= len(reg.spec.methods):
            raise RPCError(
                f"{reg.name} has no method index {method_index}", retryable=False
            )
        spec = reg.spec.methods[method_index]
        arg_values = self._codec.decode(spec.arg_schema, args)
        if self._tracer is not None and trace[0]:
            # Join the caller's trace: the server-side span becomes the
            # ambient parent for everything this invocation does locally.
            with self._tracer.start_span(
                f"{reg.name.rsplit('.', 1)[-1]}.{spec.name}",
                remote_parent=trace,
                side="server",
            ):
                result = await self._local.invoke(
                    reg, spec, tuple(arg_values), caller="<remote>"
                )
        else:
            result = await self._local.invoke(
                reg, spec, tuple(arg_values), caller="<remote>"
            )
        return self._codec.encode(spec.result_schema, result)


class RemoteInvoker:
    """Client-side invoker: stub call -> encode -> dial -> decode."""

    def __init__(
        self,
        *,
        codec: Codec,
        pool: ConnectionPool,
        resolver: ReplicaResolver,
        call_graph: Optional[CallGraph] = None,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        tracer: Optional[Any] = None,
    ) -> None:
        self._codec = codec
        self._pool = pool
        self._resolver = resolver
        self._call_graph = call_graph
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._tracer = tracer
        #: Optional repro.testing.faults.FaultPlan, consulted per call.
        self.fault_plan = None

    async def invoke(
        self, reg: Registration, method: MethodSpec, args: tuple, caller: str
    ) -> Any:
        payload = self._codec.encode(method.arg_schema, args)
        start = time.perf_counter()
        error = False
        reply = b""
        try:
            if self._tracer is not None:
                with self._tracer.start_span(
                    f"rpc {reg.name.rsplit('.', 1)[-1]}.{method.name}",
                    side="client",
                    caller=caller,
                ):
                    reply = await self._call_with_retries(reg, method, args, payload)
            else:
                reply = await self._call_with_retries(reg, method, args, payload)
            return self._codec.decode(method.result_schema, reply)
        except Exception:
            error = True
            raise
        finally:
            if self._call_graph is not None:
                self._call_graph.record(
                    caller,
                    reg.name,
                    method.name,
                    latency_s=time.perf_counter() - start,
                    bytes_sent=len(payload),
                    bytes_received=len(reply),
                    local=False,
                    error=error,
                )

    async def _call_with_retries(
        self, reg: Registration, method: MethodSpec, args: tuple, payload: bytes
    ) -> bytes:
        deadline = time.monotonic() + self._timeout_s
        attempt = 0
        while True:
            address = await self._resolver.resolve(reg, method, args)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                from repro.core.errors import DeadlineExceeded

                raise DeadlineExceeded(f"deadline exhausted calling {reg.name}.{method.name}")
            try:
                # Faults inject per *attempt*, modeling a replica failing
                # mid-call: retryable injections are absorbed by this loop
                # exactly like real replica failures.
                if self.fault_plan is not None:
                    await self.fault_plan.before_call(reg, method)
                from repro.observability.tracing import current_context

                conn = await self._pool.get(address)
                return await conn.call(
                    reg.component_id,
                    method.index,
                    payload,
                    timeout=remaining,
                    trace=current_context(),
                )
            except RPCError as exc:
                if not exc.retryable or attempt >= self._max_retries:
                    raise
                self._resolver.report_failure(reg, address)
                self._pool.drop(address)
                attempt += 1
                log.debug(
                    "retrying %s.%s after %s (attempt %d)",
                    reg.name,
                    method.name,
                    exc,
                    attempt,
                )
                await asyncio.sleep(self._retry_backoff_s * attempt)
