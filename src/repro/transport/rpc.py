"""The RPC layer: marshals stub invocations onto the wire and back.

Two halves:

* :class:`Dispatcher` — server side.  Looks up the component by numeric id,
  the method by index, decodes the argument tuple with the deployment
  codec, invokes the local replica, and encodes the result.
* :class:`RemoteInvoker` — client side, plugged into stubs
  (:mod:`repro.core.stub`).  Encodes arguments, asks a
  :class:`ReplicaResolver` which peer should execute the call (this is
  where affinity routing enters, §5.2), performs the call with deadline
  and bounded retries, and records the observation in the call graph.

Numeric component/method ids are deployment-version-scoped (see
:mod:`repro.codegen.versioning`); no names travel with requests.
"""

from __future__ import annotations

import asyncio
import logging
import time
import warnings
from typing import Any, Optional, Protocol

from repro.codegen.compiler import MethodSpec
from repro.core.call_graph import CallGraph
from repro.core.errors import (
    ComponentNotFound,
    DeadlineExceeded,
    ErrorCode,
    RPCError,
    Unavailable,
)
from repro.core.options import (
    CallOptions,
    budget_to_wire_ms,
    deadline_scope,
    decorrelated_jitter,
    effective_budget_s,
)
from repro.core.registry import FrozenRegistry, Registration
from repro.core.stub import LocalInvoker
from repro.serde.base import Codec, encode_payload
from repro.transport.client import ConnectionPool

log = logging.getLogger("repro.transport")


class ReplicaResolver(Protocol):
    """Chooses the peer address for one invocation."""

    async def resolve(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        route_key: Optional[Any] = None,
    ) -> str:
        """Return the address of the replica that should execute the call.

        ``route_key`` is an explicit affinity key from
        :class:`~repro.core.options.CallOptions`, overriding extraction
        from the ``@routed(by=...)`` argument.
        """
        ...

    def report_outcome(
        self,
        reg: Registration,
        address: str,
        *,
        ok: bool,
        code: Optional[Any] = None,
        draining: bool = False,
        wrong_owner: bool = False,
    ) -> None:
        """Record the outcome of one attempt against ``address``.

        Every attempt — success or failure — lands here; the resolver
        feeds its per-replica circuit breakers from this stream.  ``code``
        is the :class:`~repro.core.errors.ErrorCode` on failure;
        ``draining`` marks rejections from a gracefully draining replica
        (fail over, but don't penalize the replica as broken).

        Resolvers predating breakers may implement only
        :meth:`report_failure`; :class:`RemoteInvoker` falls back to it.
        """
        ...

    def report_failure(self, reg: Registration, address: str) -> None:
        """Legacy failure-only form of :meth:`report_outcome`."""
        ...


class Dispatcher:
    """Serves decoded RPC requests against local component replicas."""

    def __init__(
        self,
        build: FrozenRegistry,
        codec: Codec,
        local: LocalInvoker,
        *,
        hosted: Optional[set[str]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self._build = build
        self._codec = codec
        self._local = local
        self._hosted = hosted  # None: host everything (single group)
        self._tracer = tracer
        self._span_names: dict[tuple[int, int], str] = {}

    def hosts(self, name: str) -> bool:
        return self._hosted is None or name in self._hosted

    def set_hosted(self, hosted: set[str]) -> None:
        self._hosted = hosted

    async def handle(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        trace: tuple[int, int] = (0, 0),
        deadline_ms: int = 0,
    ) -> bytes:
        try:
            reg = self._build.by_id(component_id)
        except ComponentNotFound as exc:
            raise RPCError(str(exc), retryable=False, executed=False) from exc
        if not self.hosts(reg.name):
            # The manager moved this component elsewhere; tell the caller
            # to re-resolve rather than failing the request permanently.
            raise Unavailable(
                f"{reg.name} is not hosted by this proclet", executed=False
            )
        if method_index >= len(reg.spec.methods):
            raise RPCError(
                f"{reg.name} has no method index {method_index}",
                retryable=False,
                executed=False,
            )
        spec = reg.spec.methods[method_index]
        arg_values = self._codec.decode(spec.arg_schema, args)

        async def run() -> Any:
            if self._tracer is not None and trace[0]:
                span_name = self._span_names.get((component_id, method_index))
                if span_name is None:
                    span_name = f"{reg.name.rsplit('.', 1)[-1]}.{spec.name}"
                    self._span_names[(component_id, method_index)] = span_name
                # Join the caller's trace: the server-side span becomes the
                # ambient parent for everything this invocation does locally.
                with self._tracer.start_span(
                    span_name,
                    remote_parent=trace,
                    side="server",
                ):
                    return await self._local.invoke(
                        reg, spec, tuple(arg_values), caller="<remote>"
                    )
            return await self._local.invoke(
                reg, spec, tuple(arg_values), caller="<remote>"
            )

        if deadline_ms <= 0:
            result = await run()
        else:
            # Re-derive an absolute deadline from our own clock and make it
            # ambient, so every outgoing call this handler performs inherits
            # the *remaining* budget (the paper's runtime-owned resilience).
            budget_s = deadline_ms / 1000.0
            with deadline_scope(time.monotonic() + budget_s):
                try:
                    result = await asyncio.wait_for(run(), budget_s)
                except asyncio.TimeoutError:
                    raise DeadlineExceeded(
                        f"{reg.name}.{spec.name} exceeded its caller's "
                        f"{deadline_ms}ms budget"
                    ) from None
        # The returned buffer is enqueued on the wire as-is (no bytes()
        # materialization); the connection owns it from here.
        return encode_payload(self._codec, spec.result_schema, result)


class RemoteInvoker:
    """Client-side invoker: stub call -> encode -> dial -> decode.

    Per-call policy arrives via :class:`~repro.core.options.CallOptions`
    (from ``stub.with_options(...)``); deployment defaults fill the gaps.
    The invoker enforces an end-to-end *budget* (explicit deadline, capped
    by the ambient deadline of the request being served), ships the
    remaining budget on the wire with every attempt, retries retryable
    failures with capped decorrelated-jitter backoff — re-executing a
    method that may already have run only if it is idempotent — and hedges
    idempotent calls that were asked to.
    """

    def __init__(
        self,
        *,
        codec: Codec,
        pool: ConnectionPool,
        resolver: ReplicaResolver,
        call_graph: Optional[CallGraph] = None,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 1.0,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self._codec = codec
        self._pool = pool
        self._resolver = resolver
        self._call_graph = call_graph
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._retry_backoff_max_s = retry_backoff_max_s
        self._tracer = tracer
        # Client-side latency/error view: sees retries, hedges, breaker
        # trips and injected faults that the server-side histogram cannot.
        # Exemplars pivot a latency bucket to the trace that landed there.
        self._client_latency = (
            metrics.histogram("rpc_client_latency_s") if metrics is not None else None
        )
        self._client_errors = (
            metrics.counter("rpc_client_errors") if metrics is not None else None
        )
        # Per-component bound cells and span names, resolved once: the
        # invoke fast path must not pay label sorting or rsplit per call.
        self._lat_cells: dict[str, Any] = {}
        self._err_cells: dict[str, Any] = {}
        self._span_names: dict[tuple[str, str], str] = {}
        #: Optional repro.testing.faults.FaultPlan, consulted per call.
        self.fault_plan = None
        #: Count of hedge attempts issued (observability/tests).
        self.hedges = 0

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Optional[CallOptions] = None,
    ) -> Any:
        opts = options or CallOptions()
        payload = encode_payload(self._codec, method.arg_schema, args)
        start = time.perf_counter()
        error = False
        reply = b""
        trace_id = 0
        try:
            if self._tracer is not None:
                span_name = self._span_names.get((reg.name, method.name))
                if span_name is None:
                    span_name = f"rpc {reg.name.rsplit('.', 1)[-1]}.{method.name}"
                    self._span_names[(reg.name, method.name)] = span_name
                with self._tracer.start_span(
                    span_name,
                    side="client",
                    caller=caller,
                ) as span:
                    trace_id = span.trace_id
                    reply = await self._call_with_retries(
                        reg, method, args, payload, opts
                    )
            else:
                reply = await self._call_with_retries(reg, method, args, payload, opts)
            return self._codec.decode(method.result_schema, reply)
        except Exception:
            error = True
            raise
        finally:
            if self._client_latency is not None:
                cell = self._lat_cells.get(reg.name)
                if cell is None:
                    cell = self._client_latency.bind(component=reg.name)
                    self._lat_cells[reg.name] = cell
                cell.observe(time.perf_counter() - start, exemplar=trace_id)
                if error:
                    err = self._err_cells.get(reg.name)
                    if err is None:
                        err = self._client_errors.bind(component=reg.name)
                        self._err_cells[reg.name] = err
                    err.inc()
            if self._call_graph is not None:
                self._call_graph.record(
                    caller,
                    reg.name,
                    method.name,
                    latency_s=time.perf_counter() - start,
                    bytes_sent=len(payload),
                    bytes_received=len(reply),
                    local=False,
                    error=error,
                )

    async def _call_with_retries(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        payload: bytes,
        opts: CallOptions,
    ) -> bytes:
        budget_s = effective_budget_s(opts.deadline_s, self._timeout_s)
        if budget_s <= 0:
            raise DeadlineExceeded(
                f"no budget left calling {reg.name}.{method.name}", executed=False
            )
        deadline = time.monotonic() + budget_s
        max_retries = self._max_retries if opts.retries is None else opts.retries
        hedge_after_s = opts.hedge_after_s if method.idempotent else None
        attempt = 0
        backoff = self._retry_backoff_s
        while True:
            try:
                if hedge_after_s is not None:
                    return await self._hedged_attempt(
                        reg, method, args, payload, opts, deadline, hedge_after_s
                    )
                return await self._single_attempt(
                    reg, method, args, payload, opts, deadline, attempt=attempt
                )
            except RPCError as exc:
                if not exc.retryable or attempt >= max_retries:
                    raise
                if exc.executed and not method.idempotent:
                    # The method body may already have run; re-executing a
                    # non-idempotent method could double its effect (the
                    # double-charge bug this layer exists to fix).
                    raise
                # Outcome reporting and pool eviction already happened at
                # the failure site (_single_attempt); this loop only
                # decides whether another attempt is worth it.
                attempt += 1
                backoff = decorrelated_jitter(
                    backoff,
                    base_s=self._retry_backoff_s,
                    cap_s=self._retry_backoff_max_s,
                )
                if time.monotonic() + backoff >= deadline:
                    raise DeadlineExceeded(
                        f"budget exhausted retrying {reg.name}.{method.name} "
                        f"(after {attempt} attempts)",
                        executed=exc.executed,
                    ) from exc
                log.debug(
                    "retrying %s.%s after %s (attempt %d, backoff %.3fs)",
                    reg.name,
                    method.name,
                    exc,
                    attempt,
                    backoff,
                )
                await asyncio.sleep(backoff)

    async def _single_attempt(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        payload: bytes,
        opts: CallOptions,
        deadline: float,
        attempt: int = 0,
    ) -> bytes:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"deadline exhausted calling {reg.name}.{method.name}",
                executed=False,
            )
        address = await self._resolver.resolve(
            reg, method, args, route_key=opts.route_key
        )
        wall_start = time.time()
        try:
            # Faults inject per *attempt*, modeling a replica failing
            # mid-call: retryable injections are absorbed by the retry loop
            # exactly like real replica failures.
            if self.fault_plan is not None:
                await self.fault_plan.before_call(reg, method)
            from repro.observability.tracing import current_context

            conn = await self._pool.get(address)
            reply = await conn.call(
                reg.component_id,
                method.index,
                payload,
                timeout=remaining,
                trace=current_context(),
                deadline_ms=budget_to_wire_ms(remaining),
            )
        except RPCError as exc:
            exc.address = address  # lets callers/tests see who failed
            if exc.code is ErrorCode.UNAVAILABLE:
                # Evict the broken connection at the failure site so it is
                # never re-handed to a concurrent caller before the next
                # dial would discover it.
                self._pool.drop(address)
            self._report(reg, address, exc=exc)
            self._attempt_span(
                reg, method, address, attempt, wall_start, status="error", exc=exc
            )
            raise
        self._report(reg, address)
        if attempt > 0:
            # A failover retry that landed: record it as a sibling of the
            # failed attempt(s) so the trace shows the whole story.  The
            # happy first attempt stays span-free — zero hot-path cost.
            self._attempt_span(reg, method, address, attempt, wall_start, status="ok")
        return reply

    def _attempt_span(
        self,
        reg: Registration,
        method: MethodSpec,
        address: str,
        attempt: int,
        wall_start: float,
        *,
        status: str,
        exc: Optional[RPCError] = None,
    ) -> None:
        """Materialize one per-attempt span (failures and failover retries only)."""
        if self._tracer is None:
            return
        from repro.observability.tracing import current_context

        attrs: dict[str, Any] = {"address": address, "attempt": attempt}
        if exc is not None:
            attrs["code"] = exc.code.name.lower()
        self._tracer.record_span(
            f"attempt {reg.name.rsplit('.', 1)[-1]}.{method.name}#{attempt}",
            trace=current_context(),
            start_s=wall_start,
            end_s=time.time(),
            status=status,
            **attrs,
        )

    def _report(
        self,
        reg: Registration,
        address: str,
        exc: Optional[RPCError] = None,
    ) -> None:
        """Feed one attempt outcome to the resolver (breakers live there)."""
        report = getattr(self._resolver, "report_outcome", None)
        if report is not None:
            report(
                reg,
                address,
                ok=exc is None,
                code=None if exc is None else exc.code,
                draining=getattr(exc, "draining", False),
                wrong_owner=getattr(exc, "wrong_owner", False),
            )
        elif exc is not None:
            self._resolver.report_failure(reg, address)

    async def _hedged_attempt(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        payload: bytes,
        opts: CallOptions,
        deadline: float,
        hedge_after_s: float,
    ) -> bytes:
        """Race a second attempt if the first is slow; first result wins.

        Only ever used for idempotent methods — the loser is cancelled, but
        its request may still execute server-side.
        """

        def spawn() -> asyncio.Task:
            return asyncio.ensure_future(
                self._single_attempt(reg, method, args, payload, opts, deadline)
            )

        tasks = [spawn()]
        try:
            wait_s = max(0.0, min(hedge_after_s, deadline - time.monotonic()))
            done, _ = await asyncio.wait(tasks, timeout=wait_s)
            if tasks[0] in done:
                return tasks[0].result()
            self.hedges += 1
            tasks.append(spawn())
            pending = set(tasks)
            last_exc: Optional[BaseException] = None
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    if exc is None:
                        return task.result()
                    last_exc = exc
            assert last_exc is not None
            raise last_exc
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()


class RPCClient(RemoteInvoker):
    """Deprecated alias for :class:`RemoteInvoker`.

    Per-call knobs moved to ``stub.with_options(...)``
    (:class:`~repro.core.options.CallOptions`); construct a
    :class:`RemoteInvoker` with deployment defaults instead.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        warnings.warn(
            "RPCClient is deprecated; use RemoteInvoker for deployment "
            "defaults and stub.with_options(deadline_s=..., retries=...) "
            "for per-call overrides",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
